"""Preset cluster builders."""

import pytest

from repro.cluster.presets import (
    PAPER_SPEEDS,
    homogeneous_network,
    multiprotocol_network,
    paper_network,
    random_network,
    uniform_network,
)


class TestPaperNetwork:
    def test_nine_machines_with_paper_speeds(self):
        c = paper_network()
        assert c.size == 9
        assert tuple(c.speeds()) == PAPER_SPEEDS

    def test_speed_values_from_section_5(self):
        assert PAPER_SPEEDS == (46, 46, 46, 46, 46, 46, 176, 106, 9)

    def test_uniform_tcp_links(self):
        c = paper_network()
        t01 = c.transfer_time(0, 1, 10**6)
        t78 = c.transfer_time(7, 8, 10**6)
        assert t01 == pytest.approx(t78)

    def test_loopback_is_shared_memory(self):
        c = paper_network()
        assert c.link(3, 3).protocols[0].name == "shm"

    def test_mixed_os_tags(self):
        oses = {m.os for m in paper_network().machines}
        assert oses == {"solaris", "linux"}


class TestHomogeneousNetwork:
    def test_identical_speeds(self):
        c = homogeneous_network(5, speed=42.0)
        assert c.speeds() == [42.0] * 5


class TestUniformNetwork:
    def test_given_speeds(self):
        c = uniform_network([1.0, 2.0, 3.0])
        assert c.speeds() == [1.0, 2.0, 3.0]


class TestRandomNetwork:
    def test_deterministic(self):
        a = random_network(4, seed=9)
        b = random_network(4, seed=9)
        assert a.speeds() == b.speeds()
        assert a.transfer_time(0, 1, 1000) == b.transfer_time(0, 1, 1000)

    def test_heterogeneous_links(self):
        c = random_network(4, seed=3)
        times = {round(c.transfer_time(i, j, 10**6), 9)
                 for i in range(4) for j in range(4) if i != j}
        assert len(times) > 1

    def test_speed_range_respected(self):
        c = random_network(6, seed=1, speed_range=(5.0, 6.0))
        assert all(5.0 <= s <= 6.0 for s in c.speeds())


class TestMultiprotocolNetwork:
    def test_fast_pairs_have_two_protocols(self):
        c = multiprotocol_network(fast_pairs=((0, 1),))
        assert len(c.link(0, 1).protocols) == 2
        assert len(c.link(0, 2).protocols) == 1

    def test_fast_pair_is_faster(self):
        c = multiprotocol_network(fast_pairs=((0, 1),))
        assert c.transfer_time(0, 1, 10**6) < c.transfer_time(0, 2, 10**6)

    def test_pinning_recovers_tcp(self):
        c = multiprotocol_network(fast_pairs=((0, 1),))
        c.link(0, 1).pin("tcp-100mbit")
        assert c.transfer_time(0, 1, 10**6) == pytest.approx(
            c.transfer_time(0, 2, 10**6)
        )
