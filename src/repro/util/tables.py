"""Plain-text table rendering for benchmark harnesses.

Every benchmark in ``benchmarks/`` prints the series a paper figure reports.
This module renders them as aligned monospace tables so ``pytest benchmarks/
--benchmark-only -s`` output can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table", "format_series", "Table"]


def _cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any], precision: int = 4) -> str:
    """Render an (x, y) series, one point per line, labelled ``name``."""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x, precision)} -> {_cell(y, precision)}")
    return "\n".join(lines)


class Table:
    """Incrementally built table — convenient inside benchmark sweeps.

    >>> t = Table("n", "t_mpi", "t_hmpi", title="Fig 11(a)")
    >>> t.add(1000, 12.5, 4.2)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, *headers: str, title: str | None = None, precision: int = 4):
        self.headers = list(headers)
        self.title = title
        self.precision = precision
        self.rows: list[list[Any]] = []

    def add(self, *cells: Any) -> None:
        """Append one row; cell count must match the header count."""
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append(list(cells))

    def column(self, name: str) -> list[Any]:
        """Return the values of the named column, in insertion order."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Render the accumulated rows with :func:`format_table`."""
        return format_table(self.headers, self.rows, title=self.title, precision=self.precision)
