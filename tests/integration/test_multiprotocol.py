"""Multi-protocol communication (the paper's first HNOC challenge)."""

import numpy as np
import pytest

from repro.cluster import multiprotocol_network, paper_network
from repro.mpi import run_mpi


class TestProtocolSelection:
    def test_fast_pair_transfers_faster(self):
        cluster = multiprotocol_network(fast_pairs=((0, 1),))
        nbytes = 12_500_000  # 1 s over TCP, 0.125 s over the fast transport

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(nbytes // 8), 1)
                c.send(np.zeros(nbytes // 8), 2)
                return None
            if env.rank in (1, 2):
                c.recv(0)
                return env.wtime()
            return None

        res = run_mpi(app, cluster)
        assert res.results[1] < 0.2   # fast interconnect
        assert res.results[2] > 0.9   # plain TCP

    def test_pinning_disables_selection(self):
        cluster = multiprotocol_network(fast_pairs=((0, 1),))
        cluster.link(0, 1).pin("tcp-100mbit")
        nbytes = 12_500_000

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(nbytes // 8), 1)
                return None
            if env.rank == 1:
                c.recv(0)
                return env.wtime()
            return None

        res = run_mpi(app, cluster)
        assert res.results[1] > 0.9

    def test_small_messages_may_prefer_low_latency(self):
        """Per-message selection: the crossover depends on size."""
        cluster = multiprotocol_network(fast_pairs=((0, 1),))
        link = cluster.link(0, 1)
        small = link.protocol_for(1)
        large = link.protocol_for(10**8)
        # The fast transport has both lower latency and higher bandwidth in
        # the preset, so it wins everywhere.
        assert small.name == "fast"
        assert large.name == "fast"

    def test_estimator_sees_multiprotocol_gain(self):
        """Timeof must predict the benefit of the faster pair."""
        from repro.core.estimator import estimate_time
        from repro.core.netmodel import NetworkModel
        from repro.perfmodel import MatrixModel

        links = np.zeros((2, 2))
        links[0, 1] = 12_500_000.0
        model_multi = MatrixModel([0.0, 0.0], links)
        model_tcp = MatrixModel([0.0, 0.0], links)

        multi = multiprotocol_network(fast_pairs=((0, 1),))
        nm_multi = NetworkModel(multi, list(range(multi.size)))
        t_multi = estimate_time(model_multi, nm_multi, [0, 1])

        tcp = paper_network()
        nm_tcp = NetworkModel(tcp, list(range(tcp.size)))
        t_tcp = estimate_time(model_tcp, nm_tcp, [0, 1])

        assert t_multi < t_tcp / 4
