"""Pluggable rank schedulers for the virtual-time engine.

The engine (:mod:`repro.mpi.engine`) owns *what* happens — message
matching, virtual clocks, fault accounting.  A :class:`Scheduler` owns
*when* rank programs run: it decides which rank executes next, parks ranks
whose wait condition is unsatisfied, and wakes them when the engine makes
their condition true.  Two implementations share that contract:

``threads`` (:class:`ThreadScheduler`)
    The original backend: every rank is a freely preempted OS thread
    blocking on a per-rank condition variable.  Wall-clock cost grows with
    thread context switching, which caps simulated rank counts.

``events`` (:class:`EventScheduler`, the default)
    A discrete-event core: rank programs still run on (parked) threads so
    ordinary blocking Python code works unchanged, but exactly **one**
    task runs at a time and handoffs follow an event heap keyed on virtual
    time — the least-virtual-time ready rank always runs next.  Blocking,
    wake-ups, timeouts and faults become heap events; there is no lock
    contention and no reliance on OS preemption, so runs are deterministic
    and orders of magnitude faster at scale.

Backend selection is uniform across entry points: ``engine="threads" |
"events"`` on :class:`~repro.mpi.engine.Engine`, ``run_mpi``,
``run_hmpi``, the session facade and the CLI, resolved by
:func:`resolve_engine` (``REPRO_ENGINE`` overrides the default, which is
``events``).  Unknown names raise :class:`~repro.util.errors.OptionError`.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..util.errors import DeadlockError, OptionError
from ..util.options import check_choice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine, FTConfig, ProcessState

__all__ = [
    "ENGINE_BACKENDS",
    "DEFAULT_ENGINE",
    "Scheduler",
    "SchedulerProfile",
    "ThreadScheduler",
    "EventScheduler",
    "resolve_engine",
    "resolve_ft",
    "make_scheduler",
]

#: Registered engine backends, in preference order.
ENGINE_BACKENDS = ("events", "threads")

#: Backend used when no ``engine=`` option (and no environment override)
#: is given anywhere.
DEFAULT_ENGINE = "events"

#: Environment variable overriding :data:`DEFAULT_ENGINE`; lets CI sweep
#: the whole test corpus differentially without touching call sites.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Above this rank count the event backend shrinks task-thread stacks so
#: a 10k+-rank smoke run does not exhaust address space on small hosts.
_SMALL_STACK_THRESHOLD = 2048
_TASK_STACK_BYTES = 512 * 1024


def resolve_engine(spec: str | None = None, default: str | None = None) -> str:
    """Resolve an ``engine=`` option to a registered backend name.

    ``None`` falls back to ``default``, then to the ``REPRO_ENGINE``
    environment variable, then to :data:`DEFAULT_ENGINE`.  Unknown names
    raise :class:`~repro.util.errors.OptionError` — one resolver, one
    error type, mirroring ``mapper=``/``algorithm=``.
    """
    if spec is None:
        spec = default
    if spec is None:
        spec = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if not isinstance(spec, str):
        raise OptionError(
            f"engine must be a backend name string "
            f"({', '.join(ENGINE_BACKENDS)}), got {spec!r}"
        )
    return check_choice("engine backend", spec, ENGINE_BACKENDS)


def resolve_ft(ft: "FTConfig | dict | None") -> "FTConfig | None":
    """Resolve an ``ft=`` option: FTConfig passes through, dicts construct.

    ``None`` means engine defaults.  Unknown field names in a dict raise
    :class:`~repro.util.errors.OptionError`; field *values* keep
    FTConfig's own validation (:class:`~repro.util.errors.MPIError`).
    """
    from .engine import FTConfig

    if ft is None or isinstance(ft, FTConfig):
        return ft
    if isinstance(ft, dict):
        try:
            return FTConfig(**ft)
        except TypeError as exc:
            raise OptionError(f"bad ft option: {exc}") from None
    raise OptionError(
        f"ft must be an FTConfig or a dict of its fields, "
        f"got {type(ft).__name__}"
    )


def make_scheduler(backend: str, engine: "Engine") -> "Scheduler":
    """Instantiate the scheduler implementing a resolved backend name."""
    if backend == "threads":
        return ThreadScheduler(engine)
    return EventScheduler(engine)


class SchedulerProfile:
    """Host-side self-profile of one scheduler run.

    These are **wall-clock** numbers about the simulator itself — how
    fast the scheduler hands the baton around, how deep its ready heap
    gets — deliberately distinct from the virtual-time metrics the
    simulation produces.  They are the quantity
    ``benchmarks/bench_engine_throughput.py`` regresses on, and the
    ROADMAP's scale goals are held to.

    Updates are plain attribute arithmetic on the scheduler's hot path
    (one int compare in ``_push``, one increment per dispatch), so
    profiling is always on and costs noise.
    """

    __slots__ = ("backend", "task_switches", "heap_high_water",
                 "wall_seconds")

    def __init__(self, backend: str):
        self.backend = backend
        self.task_switches = 0      # baton handoffs / blocking waits
        self.heap_high_water = 0    # peak ready-heap depth (events only)
        self.wall_seconds = 0.0     # real time inside run_all

    @property
    def switches_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.task_switches / self.wall_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "task_switches": self.task_switches,
            "heap_high_water": self.heap_high_water,
            "wall_seconds": self.wall_seconds,
            "switches_per_sec": self.switches_per_sec,
        }

    def publish(self, metrics: Any) -> None:
        """Expose the profile as ``engine.sched.*`` gauges (labelled with
        the backend) on a :class:`~repro.obs.metrics.MetricsRegistry`."""
        for field in ("task_switches", "heap_high_water", "wall_seconds",
                      "switches_per_sec"):
            metrics.gauge(f"engine.sched.{field}",
                          backend=self.backend).set(
                float(getattr(self, field)))


class Scheduler:
    """Contract between the engine and a rank-scheduling backend.

    Unless noted otherwise, every method is called with ``engine.lock``
    held.  ``proc.waiting`` describes what a parked rank waits for (see
    :class:`~repro.mpi.engine.ProcessState`); satisfaction checks and
    stall resolution stay in the engine — the scheduler only decides when
    ranks run.
    """

    #: Backend name the scheduler implements.
    name: str = "?"
    #: Host-side self-profile, populated by :meth:`run_all` (see
    #: :class:`SchedulerProfile`); always present, always cheap.
    profile: "SchedulerProfile"
    #: Whether engine wait loops must run stall detection eagerly on every
    #: blocking step.  True for preemptive backends (any rank may block at
    #: any real moment, so each blocker re-checks global progress); False
    #: for the event backend, which detects stalls exactly when its ready
    #: heap runs dry.
    eager_stall: bool = True
    #: Whether rank interleaving is deterministic (virtual-time ordered)
    #: rather than at the mercy of OS scheduling.  Deterministic backends
    #: need no real-time "settling" sleeps in simulation-fidelity hacks.
    deterministic: bool = False

    def block(self, proc: "ProcessState") -> None:
        """Park the calling rank until :meth:`wake` (one wait step)."""
        raise NotImplementedError

    def wake(self, proc: "ProcessState", at: float | None = None) -> None:
        """Mark ``proc`` runnable again; ``at`` is the virtual time of the
        event that woke it (e.g. a message arrival), used as the ready
        key so wake-ups dispatch in virtual-time order."""
        raise NotImplementedError

    def wake_all(self) -> None:
        """Wake every parked rank to re-evaluate its wait condition."""
        raise NotImplementedError

    def yield_now(self, proc: "ProcessState") -> None:
        """Voluntarily let other ready ranks run (called *without* the
        engine lock).  Gives polling loops (``iprobe``, ``Request.test``)
        forward progress under cooperative backends; a no-op wherever the
        OS already preempts."""
        raise NotImplementedError

    def ready_before(self, proc: "ProcessState", key: float) -> bool:
        """Whether some other rank is ready to run before virtual time
        ``key``.  Event-ordered backends answer from the ready heap; the
        preemptive backend answers False (everyone runnable is already
        running in real time, so there is nobody to wait for)."""
        return False

    def wait_upto(self, proc: "ProcessState", key: float) -> None:
        """Let every rank ready before virtual time ``key`` run, then
        return to the caller (which re-examines the world).  Supports
        virtual-time-faithful completion of wildcard receives: the
        receiver must not commit to a match while a virtually earlier
        rank could still produce a better one.  No-op for preemptive
        backends."""
        return None

    def on_finish(self, proc: "ProcessState") -> None:
        """A rank's program ended (``proc.finished`` already set)."""
        raise NotImplementedError

    def run_all(self, runner: Callable[[int], None],
                timeout: float | None) -> None:
        """Execute ``runner(rank)`` for every rank to completion.

        Called without the engine lock.  ``timeout`` is the real-time
        safety net; expiry raises :class:`DeadlockError` after declaring
        the run deadlocked.
        """
        raise NotImplementedError


class ThreadScheduler(Scheduler):
    """One preemptive OS thread per rank (the original backend).

    Blocking waits sit on per-rank condition variables sharing the engine
    lock; wake-ups are broadcasts.  Kept selectable both as the semantic
    reference for differential testing and for programs that genuinely
    want preemptive interleaving.
    """

    name = "threads"
    eager_stall = True
    deterministic = False

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.profile = SchedulerProfile(self.name)

    def block(self, proc: "ProcessState") -> None:
        self.profile.task_switches += 1
        proc.cond.wait()

    def wake(self, proc: "ProcessState", at: float | None = None) -> None:
        proc.cond.notify_all()

    def wake_all(self) -> None:
        for p in self.engine.procs:
            p.cond.notify_all()

    def yield_now(self, proc: "ProcessState") -> None:
        return None

    def on_finish(self, proc: "ProcessState") -> None:
        # A rank ending (cleanly or not) can stall peers waiting on it,
        # and can satisfy external-wait predicates; both need the blocked
        # threads to re-examine the world.
        self.engine._check_stall()
        for p in self.engine.procs:
            p.cond.notify_all()

    def run_all(self, runner: Callable[[int], None],
                timeout: float | None) -> None:
        engine = self.engine
        t0 = time.perf_counter()
        try:
            for proc in engine.procs:
                proc.thread = threading.Thread(
                    target=runner, args=(proc.rank,), daemon=True,
                    name=f"mpi-rank-{proc.rank}",
                )
            for proc in engine.procs:
                proc.thread.start()
            for proc in engine.procs:
                proc.thread.join(timeout)
                if proc.thread.is_alive():
                    with engine.lock:
                        engine._declare_deadlock()
                    raise DeadlockError(
                        f"rank {proc.rank} did not finish within {timeout}s "
                        f"of real time"
                    )
        finally:
            self.profile.wall_seconds = time.perf_counter() - t0


class EventScheduler(Scheduler):
    """Discrete-event backend: one rank runs at a time, least virtual time
    first.

    Rank programs execute on parked threads holding a *baton*: exactly one
    thread is ever runnable.  A ready heap of ``(virtual_time, seq, rank)``
    entries orders dispatch; a blocking rank pushes nothing for itself —
    it is re-queued by :meth:`wake` when the engine satisfies (or fails)
    its wait.  When the heap runs dry while unfinished ranks remain, no
    future event can occur (sends are eager), so the engine's stall
    resolver runs right then — timeouts, failure fallout and deadlocks
    fire at the same points as under the thread backend, without any
    per-block global scans.

    Handoff protocol: the running thread picks the next ready rank, sets
    that rank's resume event, fully releases the engine lock and waits on
    its own resume event.  Events (not condition variables) carry the
    baton, so a wake posted before the park is never lost; ``seq`` breaks
    virtual-time ties FIFO, keeping runs deterministic.
    """

    name = "events"
    eager_stall = False
    deterministic = True

    _PARKED = 0
    _RUNNING = 1
    _FINISHED = 2

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.profile = SchedulerProfile(self.name)
        n = engine.nprocs
        self._state = [self._PARKED] * n
        self._resume = [threading.Event() for _ in range(n)]
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._nfinished = 0
        self._running = False
        self._done = threading.Event()
        self._internal: BaseException | None = None

    # -- ready-heap plumbing (engine lock held) ------------------------
    def _push(self, key: float, rank: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, rank))
        if len(self._heap) > self.profile.heap_high_water:
            self.profile.heap_high_water = len(self._heap)

    def _dispatch(self, rank: int) -> None:
        self.profile.task_switches += 1
        self._state[rank] = self._RUNNING
        self._resume[rank].set()

    def _next_ready(self) -> int | None:
        """Pop the next runnable rank, resolving stalls at idle.

        Returns None only when the run is over (all ranks finished, or an
        internal scheduling error was recorded); both set ``_done``.
        """
        engine = self.engine
        while True:
            while self._heap:
                _, _, rank = heapq.heappop(self._heap)
                if (self._state[rank] == self._PARKED
                        and not engine.procs[rank].finished):
                    return rank
                # Stale entry: the rank was dispatched via a newer wake,
                # re-parked and re-queued, or finished.  Spurious wake-ups
                # are harmless — wait loops re-check their condition.
            if self._nfinished >= engine.nprocs:
                self._done.set()
                return None
            if not self._resolve_idle():
                self._internal = RuntimeError(
                    "event scheduler: ready heap empty with unfinished "
                    "ranks and stall resolution made no progress"
                )
                self._done.set()
                return None

    def _resolve_idle(self) -> bool:
        """Heap ran dry with unfinished ranks: find or force progress.

        First re-queue any parked rank whose condition already holds (or
        that carries a planted wake exception) — out-of-band state changes
        without a ``poke`` land here.  Failing that, every unfinished rank
        is blocked on an unsatisfiable wait: run the engine's stall
        resolver, which plants typed errors and wakes the victims (or
        declares a terminal deadlock, waking everyone).  Returns whether
        the heap is non-empty afterwards.
        """
        engine = self.engine
        for p in engine.procs:
            if (p.finished or self._state[p.rank] != self._PARKED
                    or p.waiting is None):
                continue
            if p.wake_exc is not None or engine._condition_satisfied(p):
                self.wake(p)
        if self._heap:
            return True
        if engine.deadlocked:
            self.wake_all()
            return bool(self._heap)
        engine._resolve_stall()
        return bool(self._heap)

    # -- Scheduler interface -------------------------------------------
    def block(self, proc: "ProcessState") -> None:
        if not self._running:
            # Direct engine use outside run(): behave like the thread
            # backend so ad-hoc harnesses keep working.
            proc.cond.wait()
            return
        rank = proc.rank
        self._state[rank] = self._PARKED
        nxt = self._next_ready()
        if nxt is None:
            raise self._internal or RuntimeError(
                "event scheduler: no runnable task while a rank blocks")
        if nxt == rank:
            # Stall resolution picked the parking rank itself (planted a
            # wake exception for it): keep the baton and re-check.
            self._state[rank] = self._RUNNING
            return
        self._dispatch(nxt)
        # Hand the baton over: fully release the (possibly re-entered)
        # engine lock across the park, exactly like Condition.wait does.
        saved = self.engine.lock._release_save()
        try:
            self._resume[rank].wait()
        finally:
            self.engine.lock._acquire_restore(saved)
        self._resume[rank].clear()

    def wake(self, proc: "ProcessState", at: float | None = None) -> None:
        if not self._running:
            proc.cond.notify_all()
            return
        rank = proc.rank
        if proc.finished or self._state[rank] != self._PARKED:
            return
        key = proc.clock if at is None or at < proc.clock else at
        self._push(key, rank)

    def wake_all(self) -> None:
        if not self._running:
            for p in self.engine.procs:
                p.cond.notify_all()
            return
        for p in self.engine.procs:
            if not p.finished and self._state[p.rank] == self._PARKED:
                self._push(p.clock, p.rank)

    def yield_now(self, proc: "ProcessState") -> None:
        if not self._running or proc.finished:
            return
        engine = self.engine
        with engine.lock:
            rank = proc.rank
            if self._state[rank] != self._RUNNING:
                return
            self._state[rank] = self._PARKED
            self._push(proc.clock, rank)
            nxt = self._next_ready()
            if nxt is None or nxt == rank:
                self._state[rank] = self._RUNNING
                return
            self._dispatch(nxt)
            saved = engine.lock._release_save()
            try:
                self._resume[rank].wait()
            finally:
                engine.lock._acquire_restore(saved)
            self._resume[rank].clear()

    def ready_before(self, proc: "ProcessState", key: float) -> bool:
        if not self._running:
            return False
        heap = self._heap
        engine = self.engine
        while heap:
            k, _, rank = heap[0]
            if (self._state[rank] == self._PARKED
                    and not engine.procs[rank].finished):
                return k < key
            heapq.heappop(heap)  # prune stale entries while we are here
        return False

    def wait_upto(self, proc: "ProcessState", key: float) -> None:
        if not self._running:
            return
        rank = proc.rank
        if key < proc.clock:
            key = proc.clock
        self._state[rank] = self._PARKED
        self._push(key, rank)
        nxt = self._next_ready()
        if nxt is None:
            raise self._internal or RuntimeError(
                "event scheduler: no runnable task during a timed yield")
        if nxt == rank:
            self._state[rank] = self._RUNNING
            return
        self._dispatch(nxt)
        saved = self.engine.lock._release_save()
        try:
            self._resume[rank].wait()
        finally:
            self.engine.lock._acquire_restore(saved)
        self._resume[rank].clear()

    def on_finish(self, proc: "ProcessState") -> None:
        if not self._running:
            self.engine._check_stall()
            for p in self.engine.procs:
                p.cond.notify_all()
            return
        engine = self.engine
        self._state[proc.rank] = self._FINISHED
        self._nfinished += 1
        # A rank ending can satisfy external-wait predicates.  Only
        # external waits qualify: recv/probe waiters are always woken by
        # the delivery (or the stall resolver) that satisfies them, so a
        # full all-ranks scan here would be O(n²) across a run's
        # teardown for nothing.
        for r in engine.ext_waiters:
            p = engine.procs[r]
            if p.finished or self._state[r] != self._PARKED:
                continue
            if p.wake_exc is not None or engine._condition_satisfied(p):
                self.wake(p)
        nxt = self._next_ready()
        if nxt is not None:
            self._dispatch(nxt)

    def _task_body(self, rank: int, runner: Callable[[int], None]) -> None:
        self._resume[rank].wait()
        self._resume[rank].clear()
        runner(rank)

    def run_all(self, runner: Callable[[int], None],
                timeout: float | None) -> None:
        engine = self.engine
        n = engine.nprocs
        self._running = True
        t0 = time.perf_counter()
        old_stack = None
        if n > _SMALL_STACK_THRESHOLD:
            try:
                old_stack = threading.stack_size(_TASK_STACK_BYTES)
            except (ValueError, RuntimeError):  # pragma: no cover
                old_stack = None
        try:
            for proc in engine.procs:
                proc.thread = threading.Thread(
                    target=self._task_body, args=(proc.rank, runner),
                    daemon=True, name=f"mpi-rank-{proc.rank}",
                )
            for proc in engine.procs:
                proc.thread.start()
        finally:
            if old_stack is not None:
                threading.stack_size(old_stack)
        with engine.lock:
            # Seed every rank ready at virtual time zero, in rank order,
            # and hand the baton to the first.
            for rank in range(n):
                self._push(0.0, rank)
            nxt = self._next_ready()
            if nxt is not None:
                self._dispatch(nxt)
        try:
            finished = self._done.wait(timeout)
            if self._internal is not None:
                raise self._internal
            if not finished:
                with engine.lock:
                    engine._declare_deadlock()
                stuck = next(
                    (p.rank for p in engine.procs if not p.finished), 0)
                raise DeadlockError(
                    f"rank {stuck} did not finish within {timeout}s "
                    f"of real time"
                )
        finally:
            self.profile.wall_seconds = time.perf_counter() - t0
