"""Build simulation scenarios from declarative campaign specs.

A campaign cell describes its world as plain JSON values — a cluster
preset name or constructor dict, a per-machine load-model spec, machine
deaths, transient link faults, and administrative churn events — and the
builders here turn those into live objects.  Everything is validated
eagerly with :class:`~repro.util.errors.CampaignError` so a typo in a
campaign file fails at config load (exit code 2 from the CLI), not ten
cells into a sweep.

Stochastic pieces (``random_walk`` loads, transient fault schedules)
take their seeds from the per-run RNG when the spec does not pin one, so
the whole scenario stays a deterministic function of the run's derived
seed.
"""

from __future__ import annotations

import math

import numpy as np

from ..cluster.faults import (
    FaultSchedule,
    TransientFaultConfig,
    TransientLinkFaults,
    attach_transient_faults,
    inject_faults,
)
from ..cluster.load import (
    DIURNAL_PROFILE,
    ConstantLoad,
    DiurnalLoad,
    LoadModel,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
)
from ..cluster.network import Cluster
from ..cluster.presets import (
    TOPOLOGY_PRESETS,
    clusters_of_clusters,
    homogeneous_network,
    multiprotocol_network,
    paper_network,
    random_network,
    two_site_network,
    uniform_network,
)
from ..util.errors import CampaignError, ClusterError, ReproError

__all__ = [
    "CLUSTER_PRESETS",
    "LOAD_KINDS",
    "CHURN_OPS",
    "build_cluster",
    "build_load_model",
    "apply_scenario",
    "normalize_churn",
    "ChurnEvent",
]

#: Cluster presets addressable by name in a campaign spec.
CLUSTER_PRESETS = {
    "paper": paper_network,
    "multiprotocol": multiprotocol_network,
    "two_site": two_site_network,
    "clusters_of_clusters": clusters_of_clusters,
}

#: Constructor-dict cluster kinds (parameterized, so not bare presets).
_CLUSTER_KINDS = ("uniform", "homogeneous", "random", "topology")

#: Keyword arguments a ``topology`` cluster spec may forward to its
#: preset factory — the JSON-representable shape/speed parameters only
#: (protocol objects stay code-side).
_TOPOLOGY_SPEC_KEYS = {
    "two_site": ("machines_per_site", "speed"),
    "clusters_of_clusters": ("sites", "subnets_per_site",
                             "machines_per_subnet", "speeds"),
}

#: Load-model kinds accepted in per-machine load specs.  The first three
#: mirror :mod:`repro.cluster.serialize`; ``random_walk`` is additional
#: (it is seed-reconstructed, which a campaign can do and a snapshot
#: cannot), and ``diurnal`` is the named daily cycle preset
#: (:class:`repro.cluster.load.DiurnalLoad`).
LOAD_KINDS = ("constant", "step", "square", "random_walk", "diurnal")

#: Administrative churn operations.
CHURN_OPS = ("leave", "join")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise CampaignError(msg)


# ----------------------------------------------------------------------
# clusters
# ----------------------------------------------------------------------

def build_cluster(spec) -> Cluster:
    """Construct the cluster a cell runs on.

    ``spec`` is a preset name from :data:`CLUSTER_PRESETS` or a dict —
    ``{"kind": "uniform", "speeds": [...]}``,
    ``{"kind": "homogeneous", "n": 4, "speed": 100}``,
    ``{"kind": "random", "n": 6, "seed": 0}``, or
    ``{"kind": "topology", "preset": "two_site", ...}`` where ``preset``
    names a :data:`~repro.cluster.presets.TOPOLOGY_PRESETS` factory and
    the remaining keys are its shape/speed parameters — which makes
    *topology itself* a sweepable campaign axis (flat mesh vs
    ``two_site`` vs ``clusters_of_clusters``).
    """
    if isinstance(spec, str):
        _require(spec in CLUSTER_PRESETS,
                 f"unknown cluster preset {spec!r}; "
                 f"expected one of {', '.join(sorted(CLUSTER_PRESETS))}")
        return CLUSTER_PRESETS[spec]()
    _require(isinstance(spec, dict),
             f"cluster spec must be a preset name or a dict, got {spec!r}")
    kind = spec.get("kind")
    _require(kind in _CLUSTER_KINDS,
             f"unknown cluster kind {kind!r}; "
             f"expected one of {', '.join(_CLUSTER_KINDS)}")
    try:
        if kind == "uniform":
            speeds = spec.get("speeds")
            _require(isinstance(speeds, list) and speeds,
                     "uniform cluster needs a non-empty 'speeds' list")
            return uniform_network([float(s) for s in speeds])
        if kind == "homogeneous":
            return homogeneous_network(int(spec.get("n", 4)),
                                       float(spec.get("speed", 100.0)))
        if kind == "topology":
            preset = spec.get("preset")
            _require(preset in TOPOLOGY_PRESETS,
                     f"unknown topology preset {preset!r}; expected one of "
                     f"{', '.join(sorted(TOPOLOGY_PRESETS))}")
            allowed = _TOPOLOGY_SPEC_KEYS[preset]
            extra = set(spec) - {"kind", "preset"} - set(allowed)
            _require(not extra,
                     f"topology preset {preset!r} does not accept "
                     f"{', '.join(sorted(extra))}; "
                     f"allowed: {', '.join(allowed)}")
            kwargs = {}
            for key in allowed:
                if key not in spec:
                    continue
                value = spec[key]
                if key == "speeds":
                    _require(isinstance(value, list) and value,
                             "topology 'speeds' must be a non-empty list")
                    kwargs[key] = [float(s) for s in value]
                elif key == "speed":
                    kwargs[key] = float(value)
                else:
                    kwargs[key] = int(value)
            return TOPOLOGY_PRESETS[preset](**kwargs)
        return random_network(int(spec.get("n", 6)),
                              seed=int(spec.get("seed", 0)))
    except (ReproError, ValueError, TypeError) as exc:
        raise CampaignError(f"bad cluster spec {spec!r}: {exc}") from exc


# ----------------------------------------------------------------------
# load models
# ----------------------------------------------------------------------

def build_load_model(spec: dict, rng: np.random.Generator) -> LoadModel:
    """Construct one machine's load model from its spec dict.

    A ``random_walk`` spec without an explicit ``seed`` draws one from
    ``rng`` (the per-run stream), keeping the scenario deterministic per
    run while varying across runs of a seed sweep.
    """
    _require(isinstance(spec, dict), f"load spec must be a dict, got {spec!r}")
    kind = spec.get("kind")
    _require(kind in LOAD_KINDS,
             f"unknown load model kind {kind!r}; "
             f"expected one of {', '.join(LOAD_KINDS)}")
    try:
        if kind == "constant":
            return ConstantLoad(float(spec.get("share", 1.0)))
        if kind == "step":
            return StepLoad([(float(t), float(s)) for t, s in spec["steps"]],
                            initial=float(spec.get("initial", 1.0)))
        if kind == "square":
            return SquareWaveLoad(
                period=float(spec["period"]),
                high=float(spec.get("high", 1.0)),
                low=float(spec.get("low", 0.5)),
                phase=float(spec.get("phase", 0.0)),
            )
        if kind == "diurnal":
            profile = spec.get("profile", DIURNAL_PROFILE)
            return DiurnalLoad(
                day=float(spec.get("day", 24.0)),
                profile=[(float(f), float(s)) for f, s in profile],
                phase=float(spec.get("phase", 0.0)),
            )
        seed = spec.get("seed")
        if seed is None:
            seed = int(rng.integers(0, 2**63 - 1))
        return RandomWalkLoad(
            interval=float(spec["interval"]),
            seed=int(seed),
            start=float(spec.get("start", 1.0)),
            step=float(spec.get("step", 0.2)),
            floor=float(spec.get("floor", 0.05)),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CampaignError(f"bad load spec {spec!r}: {exc}") from exc


# ----------------------------------------------------------------------
# churn events
# ----------------------------------------------------------------------

class ChurnEvent:
    """One administrative membership change: machine leaves or joins."""

    __slots__ = ("t", "op", "machine")

    def __init__(self, t: float, op: str, machine: int):
        self.t = float(t)
        self.op = op
        self.machine = int(machine)

    def __repr__(self) -> str:
        return f"ChurnEvent(t={self.t:g}, op={self.op!r}, machine={self.machine})"


def normalize_churn(spec, n_machines: int) -> list[ChurnEvent]:
    """Validate a churn spec — a list of ``{"t", "op", "machine"}`` dicts.

    Machine 0 hosts the HMPI host process under the default placement and
    may not churn; events are returned sorted by time (ties keep spec
    order, so a leave-then-join pair at one instant stays ordered).
    """
    if spec is None:
        return []
    _require(isinstance(spec, list),
             f"churn spec must be a list of events, got {spec!r}")
    events = []
    for i, ev in enumerate(spec):
        _require(isinstance(ev, dict) and set(ev) == {"t", "op", "machine"},
                 f"churn event #{i} must be a dict with keys t/op/machine, "
                 f"got {ev!r}")
        op = ev["op"]
        _require(op in CHURN_OPS,
                 f"churn event #{i}: unknown op {op!r}; "
                 f"expected one of {', '.join(CHURN_OPS)}")
        try:
            machine = int(ev["machine"])
            t = float(ev["t"])
        except (ValueError, TypeError) as exc:
            raise CampaignError(f"churn event #{i}: {exc}") from exc
        _require(0 <= machine < n_machines,
                 f"churn event #{i}: machine {machine} out of range "
                 f"(cluster has {n_machines})")
        _require(machine != 0,
                 f"churn event #{i}: machine 0 hosts the HMPI host process "
                 f"and cannot churn")
        _require(t >= 0.0 and math.isfinite(t),
                 f"churn event #{i}: t must be finite and >= 0, got {t}")
        events.append(ChurnEvent(t, op, machine))
    events.sort(key=lambda e: e.t)
    return events


# ----------------------------------------------------------------------
# whole-scenario application
# ----------------------------------------------------------------------

def apply_scenario(
    cluster: Cluster,
    rng: np.random.Generator,
    *,
    deaths: dict | None = None,
    transient: dict | None = None,
    loads: dict | None = None,
) -> Cluster:
    """Apply deaths / transient faults / load models to ``cluster`` in place.

    ``deaths`` maps machine index (JSON string or int) to fail vtime;
    ``transient`` is a :class:`TransientFaultConfig` field dict plus an
    optional ``seed`` (drawn from ``rng`` when absent); ``loads`` maps
    machine index to a load spec for :func:`build_load_model`.
    """
    def machine_index(key) -> int:
        try:
            m = int(key)
        except (ValueError, TypeError) as exc:
            raise CampaignError(f"machine index {key!r} is not an integer") from exc
        _require(0 <= m < cluster.size,
                 f"machine index {m} out of range (cluster has {cluster.size})")
        return m

    if deaths:
        _require(isinstance(deaths, dict),
                 f"deaths must map machine index to vtime, got {deaths!r}")
        try:
            schedule = FaultSchedule({
                cluster.machines[machine_index(m)].name: float(t)
                for m, t in deaths.items()
            })
            inject_faults(cluster, schedule)
        except (ClusterError, ValueError, TypeError) as exc:
            raise CampaignError(f"bad deaths spec {deaths!r}: {exc}") from exc
    if transient:
        _require(isinstance(transient, dict),
                 f"transient spec must be a dict, got {transient!r}")
        blob = dict(transient)
        seed = blob.pop("seed", None)
        if seed is None:
            seed = int(rng.integers(0, 2**63 - 1))
        try:
            config = TransientFaultConfig(**blob)
        except (ClusterError, TypeError) as exc:
            raise CampaignError(
                f"bad transient spec {transient!r}: {exc}") from exc
        attach_transient_faults(
            cluster, TransientLinkFaults(config, seed=int(seed)))
    if loads:
        _require(isinstance(loads, dict),
                 f"loads must map machine index to a load spec, got {loads!r}")
        for m, load_spec in sorted(loads.items(), key=lambda kv: int(kv[0])):
            idx = machine_index(m)
            cluster.machines[idx].load = build_load_model(load_spec, rng)
    return cluster
