"""Regression baselines for campaign results.

A baseline file snapshots the per-cell metrics of a known-good campaign
run plus per-metric relative tolerances::

    {
      "schema_version": 1,
      "tolerances": {"makespan": 0.05},
      "cells": [{"cell": {...}, "status": "ok", "metrics": {...}}, ...]
    }

:func:`check_against_baseline` compares fresh result rows against it:
cells are matched by their canonical cell JSON; numeric metrics compare
under a relative tolerance (the baseline's per-metric override, then
:data:`DEFAULT_TOLERANCES`, then exact-to-rounding); booleans, strings,
lists, and null compare by equality (a bool is an ``int`` in Python —
it must *not* fall into the relative-tolerance path, where ``False``
vs ``True`` would pass any tolerance ≥ 1).  A baseline cell with no
matching result, a status flip, or a missing metric is a failure — a
shrunk sweep must not pass silently.
"""

from __future__ import annotations

import json
import pathlib

from ..util.errors import CampaignError
from .results import SCHEMA_VERSION, canonical_json

__all__ = [
    "DEFAULT_TOLERANCES",
    "check_against_baseline",
    "baseline_from_rows",
    "load_baseline",
]

#: Fallback relative tolerances by metric name.  ``makespan`` gets slack
#: for intentional engine-cost recalibrations; everything else numeric
#: is expected to reproduce bit-for-bit (tolerance ~ rounding only).
DEFAULT_TOLERANCES = {"makespan": 0.02}

_EXACT = 1e-9


def load_baseline(path) -> dict:
    """Read and structurally validate a baseline file."""
    p = pathlib.Path(path)
    if not p.exists():
        raise CampaignError(f"no baseline file at {p}")
    try:
        baseline = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{p}: not valid JSON: {exc}") from exc
    if not isinstance(baseline, dict) or "cells" not in baseline:
        raise CampaignError(f"{p}: baseline needs a 'cells' list")
    if baseline.get("schema_version") != SCHEMA_VERSION:
        raise CampaignError(
            f"{p}: baseline schema v{baseline.get('schema_version')} != "
            f"supported v{SCHEMA_VERSION}"
        )
    return baseline


def _tolerance_for(metric: str, baseline: dict) -> float:
    tolerances = baseline.get("tolerances", {})
    if metric in tolerances:
        return float(tolerances[metric])
    return DEFAULT_TOLERANCES.get(metric, _EXACT)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_metric(metric: str, expected, actual, rel: float) -> "str | None":
    """A failure description, or None when the metric matches."""
    if _is_number(expected) and _is_number(actual):
        scale = max(abs(expected), abs(actual), 1e-30)
        if abs(actual - expected) <= rel * scale:
            return None
        return (f"{metric}: {actual!r} deviates from baseline {expected!r} "
                f"by {abs(actual - expected) / scale:.1%} "
                f"(tolerance {rel:.1%})")
    if expected != actual:
        return f"{metric}: {actual!r} != baseline {expected!r}"
    return None


def check_against_baseline(rows: list[dict], baseline: dict) -> list[str]:
    """Compare result rows to a baseline; returns failure descriptions.

    Empty list means the results are within tolerance of the baseline.
    """
    by_cell = {canonical_json(r["cell"]): r for r in rows}
    failures: list[str] = []
    for entry in baseline["cells"]:
        cell_key = canonical_json(entry["cell"])
        row = by_cell.pop(cell_key, None)
        if row is None:
            failures.append(f"cell {cell_key}: missing from results")
            continue
        if row["status"] != entry["status"]:
            failures.append(
                f"cell {cell_key}: status {row['status']!r} != "
                f"baseline {entry['status']!r}"
            )
            continue
        for metric, expected in entry["metrics"].items():
            if metric not in row["metrics"]:
                failures.append(f"cell {cell_key}: metric {metric!r} missing")
                continue
            problem = _compare_metric(
                metric, expected, row["metrics"][metric],
                _tolerance_for(metric, baseline),
            )
            if problem is not None:
                failures.append(f"cell {cell_key}: {problem}")
    for cell_key in by_cell:
        failures.append(f"cell {cell_key}: not covered by the baseline")
    return failures


def baseline_from_rows(rows: list[dict],
                       tolerances: "dict | None" = None) -> dict:
    """Snapshot result rows as a baseline document (for committing)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "tolerances": dict(tolerances or {}),
        "cells": [
            {"cell": r["cell"], "status": r["status"], "metrics": r["metrics"]}
            for r in rows
        ],
    }
