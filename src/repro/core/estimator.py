"""Execution-time prediction — the machinery behind ``HMPI_Timeof``.

Replays a performance model's ``scheme`` against **resource clocks**:

- per abstract processor, a **CPU clock** (computation and send calls) and
  a **data-ready clock** (latest arrival it must wait for);
- one clock per directed abstract-processor pair (its link timeline).

Action semantics (matching the virtual-time execution engine's cost model
by construction):

- ``e %% [i]``: the compute starts at ``max(cpu(i), ready(i))`` — after
  the processor's own prior work *and* after the data it received — and
  advances both clocks by ``(e/100) * node_volume(i) / effective_speed(i)``;
- ``e %% [i] -> [j]``: the transfer departs at ``max(cpu(i),
  link_busy(i, j))``, takes the link's Hockney time for
  ``(e/100) * link_volume(i, j)`` bytes, occupies the pair's link until
  arrival, charges the sender one latency of CPU time, and lower-bounds
  j's data-ready clock by the arrival.

Sends deliberately do **not** wait on the sender's data-ready clock: like
the execution engine's programs (send your boundary data, then receive,
then compute), a processor forwards the data it owns without waiting for
what it is about to receive.  Dependencies between rounds flow through the
computes, which merge the two clocks.

Under this model ``par`` composition is implicit: actions touching disjoint
resources never serialise, while a sequential ``for`` over steps chains
naturally because each step's computes advance the CPU clocks that the
next step's transfers depart from.

Effective speed divides a machine's estimated speed among the abstract
processors mapped to it (speed sharing for co-located processes).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from ..perfmodel.model import AbstractBoundModel, LinearActionVisitor
from ..util.errors import HMPIError
from .netmodel import NetworkModel

__all__ = [
    "TimelineVisitor",
    "estimate_time",
    "estimate_breakdown",
    "record_trace",
    "replay_trace",
]


class TimelineVisitor(LinearActionVisitor):
    """Resource-clock accumulator for one scheme replay.

    Parameters
    ----------
    node_volumes, link_volumes:
        The model's total per-processor benchmark units and pairwise bytes.
    speeds:
        Effective benchmark-units-per-second of each abstract processor
        (speed sharing already applied).
    netmodel:
        Link-cost oracle.
    machines:
        machine index of each abstract processor (the candidate mapping).
    """

    def __init__(
        self,
        node_volumes: np.ndarray,
        link_volumes: np.ndarray,
        speeds: Sequence[float],
        netmodel: NetworkModel,
        machines: Sequence[int],
    ):
        n = len(node_volumes)
        self.node_volumes = node_volumes
        self.link_volumes = link_volumes
        self.speeds = list(speeds)
        self.netmodel = netmodel
        self.machines = list(machines)
        self.cpu = [0.0] * n     # own work + send-call overheads
        self.ready = [0.0] * n   # latest arrival the processor waits on
        self.link_busy: dict[tuple[int, int], float] = {}
        self.compute_seconds = [0.0] * n
        self.transfer_bytes = 0.0
        self.actions = 0

    def compute(self, percent: float, proc: int) -> None:
        volume = (percent / 100.0) * float(self.node_volumes[proc])
        if volume < 0:
            raise HMPIError(f"negative compute volume on processor {proc}")
        duration = volume / self.speeds[proc]
        start = max(self.cpu[proc], self.ready[proc])
        finish = start + duration
        self.cpu[proc] = finish
        self.ready[proc] = finish
        self.compute_seconds[proc] += duration
        self.actions += 1

    def transfer(self, percent: float, src: int, dst: int) -> None:
        nbytes = (percent / 100.0) * float(self.link_volumes[src, dst])
        if nbytes < 0:
            raise HMPIError(f"negative transfer volume {src}->{dst}")
        self.actions += 1
        if nbytes == 0.0 or src == dst:
            return
        ms, md = self.machines[src], self.machines[dst]
        depart = self.cpu[src]
        start = max(depart, self.link_busy.get((src, dst), 0.0))
        arrival = start + self.netmodel.transfer_time(ms, md, nbytes)
        self.link_busy[(src, dst)] = arrival
        if self.netmodel.cluster.single_port:
            # Single-port model: the sender is occupied until the transfer
            # completes (mirrors the engine's flag).
            self.cpu[src] = arrival
        else:
            # CPU-side cost of issuing the send only: the CPU does not
            # wait for the link to drain.
            self.cpu[src] = depart + self.netmodel.latency(ms, md)
        if arrival > self.ready[dst]:
            self.ready[dst] = arrival
        self.transfer_bytes += nbytes

    @property
    def clock(self) -> list[float]:
        """Per-processor finish time (the later of cpu and data-ready)."""
        return [max(c, r) for c, r in zip(self.cpu, self.ready)]

    @property
    def makespan(self) -> float:
        return max(self.clock) if self.cpu else 0.0


def _effective_speeds(
    netmodel: NetworkModel, machines: Sequence[int]
) -> list[float]:
    """Per-abstract-processor speed with co-location sharing applied."""
    counts = Counter(machines)
    return [
        netmodel.speed_of_machine(m) / counts[m]
        for m in machines
    ]


class _TraceRecorder(LinearActionVisitor):
    """Records the scheme's action stream once for cheap replay.

    The interaction order declared by a ``scheme`` does not depend on the
    mapping (it is a property of the algorithm), so a single interpreted
    walk can be replayed against many candidate mappings — this is what
    makes the mappers' local search affordable for schemes with tens of
    thousands of actions.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        # (is_transfer, fraction, a, b): compute -> (False, pct/100, proc, 0)
        self.events: list[tuple[bool, float, int, int]] = []

    def compute(self, percent: float, proc: int) -> None:
        self.events.append((False, percent / 100.0, proc, 0))

    def transfer(self, percent: float, src: int, dst: int) -> None:
        self.events.append((True, percent / 100.0, src, dst))


def record_trace(model: AbstractBoundModel) -> list[tuple[bool, float, int, int]]:
    """The model's scheme as a flat action list (cached on the model)."""
    cached = getattr(model, "_repro_trace", None)
    if cached is None:
        recorder = _TraceRecorder()
        model.walk_scheme(recorder)
        cached = recorder.events
        try:
            model._repro_trace = cached  # type: ignore[attr-defined]
        except AttributeError:  # models with __slots__ just skip the cache
            pass
    return cached


def replay_trace(
    trace: Sequence[tuple[bool, float, int, int]],
    node_volumes: np.ndarray,
    link_volumes: np.ndarray,
    speeds: Sequence[float],
    netmodel: NetworkModel,
    machines: Sequence[int],
) -> float:
    """Resource-clock replay of a recorded trace; returns the makespan.

    Semantically identical to :class:`TimelineVisitor` but with pair costs
    precomputed: single-protocol links collapse to an inline
    ``latency + bytes/bandwidth``, multi-protocol links fall back to
    per-message protocol selection.

    Legacy single-candidate path, kept as a readable reference; the
    selection hot paths (mappers, ``estimate_time``) now run on the
    compiled engine in :mod:`repro.core.seleng`.
    """
    n = len(node_volumes)
    single_port = netmodel.cluster.single_port
    cpu = [0.0] * n
    ready = [0.0] * n
    link_busy: dict[tuple[int, int], float] = {}
    # Precompute per-pair cost parameters for pairs that appear.
    pair_cost: dict[tuple[int, int], tuple[float, float] | None] = {}
    inv_speed = [1.0 / s for s in speeds]
    nv = node_volumes
    lv = link_volumes
    for is_transfer, fraction, a, b in trace:
        if not is_transfer:
            start = cpu[a] if cpu[a] >= ready[a] else ready[a]
            finish = start + fraction * nv[a] * inv_speed[a]
            cpu[a] = finish
            ready[a] = finish
            continue
        nbytes = fraction * lv[a, b]
        if nbytes <= 0.0 or a == b:
            continue
        key = (a, b)
        cost = pair_cost.get(key, -1)
        if cost == -1:
            link = netmodel.cluster.link(machines[a], machines[b])
            if len(link.protocols) == 1 or link.pinned is not None:
                proto = link.protocol_for(1)
                cost = (proto.latency, proto.bandwidth)
            else:
                cost = None
            pair_cost[key] = cost
        depart = cpu[a]
        start = depart
        busy = link_busy.get(key, 0.0)
        if busy > start:
            start = busy
        if cost is not None:
            lat, bw = cost
            arrival = start + lat + nbytes / bw
        else:
            link = netmodel.cluster.link(machines[a], machines[b])
            lat = link.effective_latency(int(nbytes))
            arrival = start + link.transfer_time(int(round(nbytes)))
        link_busy[key] = arrival
        cpu[a] = arrival if single_port else depart + lat
        if arrival > ready[b]:
            ready[b] = arrival
    return max(max(c, r) for c, r in zip(cpu, ready)) if cpu else 0.0


def estimate_time(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    machines: Sequence[int],
) -> float:
    """Predicted execution time of one scheme run under a candidate mapping.

    ``machines[i]`` is the machine index abstract processor ``i`` would run
    on.  This is the function ``HMPI_Timeof`` evaluates (with the mapping
    the runtime would actually choose) and the objective the mappers
    minimise.  The scheme is compiled once per model (see
    :mod:`repro.core.seleng`) and replayed from flat event arrays
    thereafter; mappers pricing whole neighbourhoods should use
    :func:`repro.core.seleng.evaluate_mappings` or a
    :class:`repro.core.seleng.TraceEvaluator` directly to amortise setup.
    """
    if len(machines) != model.nproc:
        raise HMPIError(
            f"mapping length {len(machines)} != model nproc {model.nproc}"
        )
    from .seleng import TraceEvaluator
    return TraceEvaluator(model, netmodel).evaluate(machines)


def estimate_breakdown(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    machines: Sequence[int],
) -> dict:
    """Like :func:`estimate_time` but returns diagnostic detail.

    Used by benchmarks and tests to inspect where predicted time goes.
    """
    visitor = TimelineVisitor(
        node_volumes=model.node_volumes(),
        link_volumes=model.link_volumes(),
        speeds=_effective_speeds(netmodel, machines),
        netmodel=netmodel,
        machines=machines,
    )
    model.walk_scheme(visitor)
    return {
        "makespan": visitor.makespan,
        "clocks": list(visitor.clock),
        "compute_seconds": list(visitor.compute_seconds),
        "transfer_bytes": visitor.transfer_bytes,
        "actions": visitor.actions,
    }
