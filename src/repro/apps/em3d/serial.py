"""Serial EM3D kernels — the real computation behind the benchmark unit.

One *benchmark unit* of the EM3D application is the computation of the
nodal values of ``k`` nodes in a single sub-body (the paper's ``Serial_em3d``
benchmark for ``HMPI_Recon``).  The update of each node is a linear
function of three neighbouring values of the opposite field; boundary
contributions arrive as an extra pooled term.
"""

from __future__ import annotations

import numpy as np

from .problem import SubBody

__all__ = ["update_field", "em3d_step_local", "serial_em3d", "make_recon_benchmark"]


def update_field(
    values: np.ndarray,
    weights: np.ndarray,
    neighbours: np.ndarray,
    boundary_term: float = 0.0,
) -> np.ndarray:
    """New field values: each node mixes three neighbouring opposite-field
    values (cyclically shifted views — no copies) plus a boundary term.

    ``values``  — current values of this field (length n);
    ``weights`` — (n, 3) linear coefficients;
    ``neighbours`` — the opposite field's current values.
    """
    n = len(values)
    if n == 0:
        return values
    m = len(neighbours)
    if m == 0:
        return values * 0.98 + boundary_term
    idx = np.arange(n)
    a = neighbours[idx % m]
    b = neighbours[(idx + 1) % m]
    c = neighbours[(idx + 2) % m]
    mixed = weights[:, 0] * a + weights[:, 1] * b + weights[:, 2] * c
    # Damped relaxation keeps values bounded over many iterations.
    return 0.5 * values + 0.5 * np.tanh(mixed + boundary_term)


def em3d_step_local(
    body: SubBody,
    e_boundary: float = 0.0,
    h_boundary: float = 0.0,
) -> None:
    """One full step (E phase then H phase) on one sub-body, in place.

    ``e_boundary`` is the pooled contribution of remote H values to the E
    update (and vice versa); the parallel algorithm computes these from
    received boundary arrays.
    """
    body.e_values = update_field(body.e_values, body.e_weights, body.h_values, e_boundary)
    body.h_values = update_field(body.h_values, body.h_weights, body.e_values, h_boundary)


def serial_em3d(body: SubBody, niter: int) -> None:
    """Run ``niter`` isolated steps on one sub-body (no remote boundaries)."""
    for _ in range(niter):
        em3d_step_local(body)


def make_recon_benchmark(k: int, seed: int = 0):
    """The paper's ``Serial_em3d`` recon benchmark: compute ``k`` nodal
    values (= 1 benchmark unit) and charge 1 unit of modelled time.

    Returns a callable suitable for ``hmpi.recon(benchmark=...)``.
    """
    rng = np.random.default_rng(seed)
    n_e = k // 2
    n_h = k - n_e
    body = SubBody(
        index=-1,
        e_values=rng.standard_normal(n_e),
        h_values=rng.standard_normal(n_h),
        e_weights=rng.uniform(0.1, 0.3, size=(n_e, 3)),
        h_weights=rng.uniform(0.1, 0.3, size=(n_h, 3)),
    )

    def benchmark(env) -> None:
        em3d_step_local(body)
        env.compute(1.0)  # by definition: k nodes == one benchmark unit

    return benchmark
