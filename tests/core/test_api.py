"""The paper's flat C-style API."""

import pytest

from repro.core import (
    AnnealingMapper,
    DefaultMapper,
    GreedyMapper,
    Mapper,
    auto_create,
    available_mappers,
    register_mapper,
    resolve_mapper,
    tune_group_size,
)
from repro.core.api import (
    HMPI_COMM_WORLD_GROUP,
    HMPI_Get_comm,
    HMPI_Group_create,
    HMPI_Group_free,
    HMPI_Group_rank,
    HMPI_Group_size,
    HMPI_Is_free,
    HMPI_Is_host,
    HMPI_Is_member,
    HMPI_Recon,
    HMPI_Timeof,
    HMPI_Wtime,
)
from repro.core.runtime import run_hmpi
from repro.perfmodel import compile_model
from repro.util.errors import HMPIStateError, MappingError

MODEL_SRC = """
algorithm Work(int p, int d[p]) {
  coord I=p;
  node {I>=0: bench*(d[I]);};
  parent[0];
}
"""


class TestPaperStyleProgram:
    def test_figure5_shape(self, paper_cluster):
        """A program written exactly in the paper's Figure 5 style."""
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            out = {}
            if HMPI_Is_member(hmpi, HMPI_COMM_WORLD_GROUP):
                HMPI_Recon(hmpi, volume=1.0)
            if HMPI_Is_host(hmpi) or HMPI_Is_free(hmpi):
                gid = HMPI_Group_create(hmpi, model, (3, [120, 60, 30]))
            if HMPI_Is_member(hmpi, gid):
                comm = HMPI_Get_comm(hmpi, gid)
                out["rank"] = HMPI_Group_rank(hmpi, gid)
                out["size"] = HMPI_Group_size(hmpi, gid)
                comm.barrier()
                HMPI_Group_free(hmpi, gid)
            out["t"] = HMPI_Wtime(hmpi)
            return out

        res = run_hmpi(main, paper_cluster)
        members = [r for r in res.results if "rank" in r]
        assert len(members) == 3
        assert {m["rank"] for m in members} == {0, 1, 2}
        assert all(m["size"] == 3 for m in members)

    def test_timeof_with_parameters(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if not HMPI_Is_host(hmpi):
                return None
            return HMPI_Timeof(hmpi, model, (3, [120, 60, 30]))

        res = run_hmpi(main, paper_cluster)
        assert res.results[0] > 0

    def test_bound_model_with_parameters_rejected(self, paper_cluster):
        model = compile_model(MODEL_SRC)
        bound = model.bind(2, [10, 20])

        def main(hmpi):
            if hmpi.is_host():
                with pytest.raises(HMPIStateError):
                    HMPI_Timeof(hmpi, bound, (2, [10, 20]))
            return True

        run_hmpi(main, paper_cluster)

    def test_world_group_membership_always_true(self, paper_cluster):
        def main(hmpi):
            return HMPI_Is_member(hmpi, HMPI_COMM_WORLD_GROUP)

        res = run_hmpi(main, paper_cluster)
        assert all(res.results)


class TestMapperRegistry:
    def test_available_and_resolve(self):
        names = available_mappers()
        for spec in ("default", "greedy", "refine", "exhaustive"):
            assert spec in names
            assert isinstance(resolve_mapper(spec), Mapper)
        # Strings resolve to a shared instance (stable cache identity)...
        assert resolve_mapper("greedy") is resolve_mapper("greedy")
        # ...case-insensitively, and "anneal" resolves lazily.
        assert resolve_mapper("Greedy") is resolve_mapper("greedy")
        assert isinstance(resolve_mapper("anneal"), AnnealingMapper)

    def test_instances_and_none_pass_through(self):
        mapper = GreedyMapper()
        assert resolve_mapper(mapper) is mapper
        fallback = DefaultMapper()
        assert resolve_mapper(None, default=fallback) is fallback
        assert resolve_mapper(None) is None

    def test_unknown_spec_raises(self):
        with pytest.raises(MappingError, match="unknown mapper"):
            resolve_mapper("simulated-annealing")
        with pytest.raises(MappingError, match="registry string"):
            resolve_mapper(42)

    def test_register_custom_mapper(self):
        class MyMapper(DefaultMapper):
            pass

        register_mapper("test-custom", MyMapper)
        try:
            assert isinstance(resolve_mapper("test-custom"), MyMapper)
            with pytest.raises(MappingError, match="already registered"):
                register_mapper("test-custom", MyMapper)
            register_mapper("test-custom", MyMapper, overwrite=True)
        finally:
            from repro.core.mapper import MAPPER_REGISTRY, _RESOLVED

            MAPPER_REGISTRY.pop("test-custom", None)
            _RESOLVED.pop("test-custom", None)


class TestRegistryStringsAccepted:
    """Every mapper-taking entry point accepts registry strings."""

    def test_run_hmpi_and_methods(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if not hmpi.is_host():
                return None
            bound = model.bind(3, [120, 60, 30])
            t_obj = hmpi.timeof(bound, "greedy")
            t_flat = HMPI_Timeof(hmpi, model, (3, [120, 60, 30]),
                                 mapper="greedy")
            return t_obj, t_flat

        res = run_hmpi(main, paper_cluster, mapper="refine")
        t_obj, t_flat = res.results[0]
        assert t_obj > 0 and t_flat == t_obj

    def test_group_create_both_layers(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            g1 = hmpi.group_create(model.bind(3, [120, 60, 30]), "greedy")
            if g1.is_member:
                hmpi.group_free(g1)
            g2 = HMPI_Group_create(hmpi, model, (3, [120, 60, 30]),
                                   mapper="default")
            if g2.is_member:
                hmpi.group_free(g2)
            return True

        res = run_hmpi(main, paper_cluster)
        assert all(res.results)

    def test_autotune_entry_points(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def family(p):
            return model.bind(p, [100] * p)

        def main(hmpi):
            if hmpi.is_host():
                sweep = tune_group_size(hmpi, family, [2, 3], mapper="greedy")
                assert sweep.best_p in (2, 3)
            group, best_p = auto_create(hmpi, family, [2, 3], mapper="greedy")
            if group.is_member:
                hmpi.group_free(group)
            return best_p

        res = run_hmpi(main, paper_cluster)
        assert len(set(res.results)) == 1

    def test_unknown_string_surfaces_at_call(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if hmpi.is_host():
                with pytest.raises(MappingError, match="unknown mapper"):
                    hmpi.timeof(model.bind(3, [120, 60, 30]), "nope")
            return True

        run_hmpi(main, paper_cluster)


class TestFlatBindMemoization:
    def test_repeated_timeof_hits_selection_cache(self, paper_cluster):
        """Equal (model, parameters) bind to the same object, so the
        paper's Figure 8 Timeof loop is served from the selection cache."""
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if not hmpi.is_host():
                return None
            t1 = HMPI_Timeof(hmpi, model, (3, [120, 60, 30]))
            t2 = HMPI_Timeof(hmpi, model, (3, [120, 60, 30]))
            s = hmpi.selection_stats
            return t1, t2, s.cache_hits, s.cache_misses

        res = run_hmpi(main, paper_cluster)
        t1, t2, hits, misses = res.results[0]
        assert t2 == t1
        assert (hits, misses) == (1, 1)


class TestKeywordOnlyOptions:
    """Trailing options of the flat HMPI_* functions are keyword-only."""

    def test_positional_options_rejected(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if not hmpi.is_host():
                return True
            with pytest.raises(TypeError):
                HMPI_Timeof(hmpi, model, (3, [120, 60, 30]), "greedy")
            with pytest.raises(TypeError):
                HMPI_Recon(hmpi, None, 2.0)
            return True

        run_hmpi(main, paper_cluster)
