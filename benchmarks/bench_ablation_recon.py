"""Ablation — does HMPI_Recon matter on multi-user machines?

The paper motivates Recon with "the actual speeds of processors can
dynamically change dependent on the external computations".  We load the
nominally fastest workstations with external jobs and run the same EM3D
instance three ways: MPI baseline, HMPI trusting nominal speeds (recon
off), and HMPI with a Recon refresh before group creation.
"""

import pytest

from repro.apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from repro.cluster import ConstantLoad, paper_network
from repro.util.tables import Table

NITER = 6
K = 100


def loaded_paper_network():
    """ws06 (176) nearly saturated, ws07 (106) half-loaded by other users."""
    cluster = paper_network()
    cluster.machine("ws06").load = ConstantLoad(0.10)   # ~17.6 effective
    cluster.machine("ws07").load = ConstantLoad(0.50)   # ~53 effective
    return cluster


def _compare():
    problem = generate_problem(p=9, total_nodes=18_000, seed=8)
    mpi = run_em3d_mpi(loaded_paper_network(), problem, niter=NITER, k=K)
    blind = run_em3d_hmpi(loaded_paper_network(), problem, niter=NITER, k=K,
                          recon=False, procs_per_machine=2)
    informed = run_em3d_hmpi(loaded_paper_network(), problem, niter=NITER,
                             k=K, recon=True, procs_per_machine=2)
    assert mpi.checksum == blind.checksum == informed.checksum
    return mpi, blind, informed


def test_ablation_recon(benchmark, report):
    mpi, blind, informed = benchmark.pedantic(_compare, rounds=1, iterations=1)

    t = Table("variant", "time (s)", "vs MPI",
              title="Ablation — HMPI_Recon under external load "
                    "(ws06 at 10%, ws07 at 50%)")
    t.add("MPI baseline", mpi.algorithm_time, 1.0)
    t.add("HMPI, nominal speeds", blind.algorithm_time,
          mpi.algorithm_time / blind.algorithm_time)
    t.add("HMPI + Recon", informed.algorithm_time,
          mpi.algorithm_time / informed.algorithm_time)
    report.emit(t.render())

    # Trusting nominal speeds overloads the busy "fast" machines; the
    # refreshed estimates beat both it and the baseline.
    assert informed.algorithm_time < blind.algorithm_time
    assert informed.algorithm_time < mpi.algorithm_time
    # And the prediction is only accurate when the model was refreshed.
    assert informed.predicted_time == pytest.approx(
        informed.algorithm_time, rel=0.1
    )
    assert blind.predicted_time < blind.algorithm_time * 0.8  # wishful
