"""The model-consistency linter."""

import numpy as np
import pytest

from repro.apps.em3d.model import em3d_model
from repro.apps.matmul import bind_matmul_model, heterogeneous_distribution
from repro.perfmodel import CallableModel, MatrixModel, compile_model, lint_model


class TestPaperModelsAreConsistent:
    def test_em3d(self):
        bm = em3d_model().bind(
            4, 100, [400, 300, 200, 100],
            [[0, 5, 0, 3], [5, 0, 2, 0], [0, 2, 0, 1], [3, 0, 1, 0]],
        )
        report = lint_model(bm)
        assert report.ok, report.issues
        assert "consistent" in str(report)

    @pytest.mark.parametrize("l", [4, 6, 12])
    def test_matmul(self, l):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(12, l, speeds)
        report = lint_model(bind_matmul_model(dist, 8))
        assert report.ok, report.issues


class TestInconsistenciesCaught:
    def test_undercounted_compute(self):
        src = """
        algorithm Bad(int p) {
          coord I=p;
          node {I>=0: bench*(10);};
          scheme { int i; par (i = 0; i < p; i++) 50%%[i]; };
        }
        """
        report = lint_model(compile_model(src).bind(3))
        assert not report.ok
        assert any("50.0000%" in issue for issue in report.issues)

    def test_overcounted_transfer(self):
        def scheme(v):
            v.transfer(100.0, 0, 1)
            v.transfer(100.0, 0, 1)   # sent twice
            v.compute(100.0, 0)
            v.compute(100.0, 1)

        links = np.zeros((2, 2))
        links[0, 1] = 1000.0
        report = lint_model(MatrixModel([1.0, 1.0], links, scheme=scheme))
        assert not report.ok
        assert any("200.0000%" in issue for issue in report.issues)

    def test_transfer_on_undeclared_pair(self):
        def scheme(v):
            v.transfer(100.0, 1, 0)   # declared direction is 0 -> 1
            v.compute(100.0, 0)
            v.compute(100.0, 1)

        links = np.zeros((2, 2))
        links[0, 1] = 1000.0
        report = lint_model(MatrixModel([1.0, 1.0], links, scheme=scheme))
        assert not report.ok
        # both problems reported: missing 0->1 and phantom 1->0
        assert any("0->1" in issue for issue in report.issues)
        assert any("1->0" in issue for issue in report.issues)

    def test_compute_on_zero_volume_processor(self):
        def scheme(v):
            v.compute(100.0, 0)
            v.compute(100.0, 1)   # has zero declared volume

        report = lint_model(
            MatrixModel([1.0, 0.0], np.zeros((2, 2)), scheme=scheme)
        )
        assert not report.ok

    def test_negative_percent(self):
        def scheme(v):
            v.compute(-10.0, 0)
            v.compute(110.0, 0)

        report = lint_model(MatrixModel([1.0], np.zeros((1, 1)), scheme=scheme))
        assert any("negative" in issue for issue in report.issues)


class TestDefaultSchemeAlwaysLints:
    def test_callable_model_default(self):
        model = CallableModel(3, lambda i: 5.0, lambda s, d: 64.0)
        assert lint_model(model).ok
