"""Simulated MPI over virtual time — the substrate the paper assumes.

Provides groups with the full MPI-1 algebra, communicators with
point-to-point and collective operations, nonblocking requests, and an
SPMD launcher running each rank with a logical clock charged against a
:class:`~repro.cluster.Cluster`.  Rank scheduling is pluggable
(``engine="events"`` — single-threaded discrete-event core, the default
— or ``engine="threads"``; see :mod:`repro.mpi.scheduler` and
docs/ENGINE.md).
"""

from . import ops
from .collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    exscan,
    gather,
    reduce,
    reduce_scatter_block,
    scan,
    scatter,
)
from .communicator import Comm
from .datatypes import BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, Datatype, sizeof
from .engine import Engine, FTConfig, WORLD_CONTEXT
from .group import GROUP_EMPTY, IDENT, SIMILAR, UNEQUAL, Group
from .launcher import MPIEnv, MPIRunResult, default_placement, run_mpi
from .pool import Task, WorkerPool, run_task_pool
from .ops import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, Op
from .request import RecvRequest, Request, SendRequest, testall, waitall
from .scheduler import (
    DEFAULT_ENGINE,
    ENGINE_BACKENDS,
    EventScheduler,
    Scheduler,
    ThreadScheduler,
    resolve_engine,
)
from .status import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED, Status
from .tracing import TraceEvent, Tracer

__all__ = [
    "Comm",
    "Group",
    "GROUP_EMPTY",
    "IDENT",
    "SIMILAR",
    "UNEQUAL",
    "Engine",
    "FTConfig",
    "WORLD_CONTEXT",
    "MPIEnv",
    "MPIRunResult",
    "run_mpi",
    "default_placement",
    "Scheduler",
    "ThreadScheduler",
    "EventScheduler",
    "ENGINE_BACKENDS",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "Status",
    "Tracer",
    "TraceEvent",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "Request",
    "SendRequest",
    "RecvRequest",
    "waitall",
    "testall",
    "Datatype",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "BYTE",
    "CHAR",
    "sizeof",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MAXLOC",
    "MINLOC",
    "ops",
    "Task",
    "WorkerPool",
    "run_task_pool",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "exscan",
    "reduce_scatter_block",
]
