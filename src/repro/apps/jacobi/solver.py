"""The Jacobi solver: serial reference, MPI baseline, HMPI version.

A 2-D heat problem on an ``N x N`` grid with fixed boundary values;
``niter`` Jacobi sweeps of the interior.  The parallel versions decompose
the interior rows into ``p`` horizontal panels — uniformly for the MPI
baseline, speed-proportionally for HMPI — and exchange one halo row with
each neighbour per iteration.  The updates are genuinely computed (NumPy),
and the assembled result grid must be identical for every decomposition,
which the tests assert against the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster.network import Cluster
from ...core.mapper import Mapper
from ...core.runtime import HMPI, run_hmpi
from ...mpi.communicator import Comm
from ...mpi.launcher import MPIEnv, run_mpi
from ...util.errors import ReproError
from ..matmul.distribution import proportional_partition
from .model import bind_jacobi_model

__all__ = [
    "partition_rows",
    "jacobi_reference",
    "jacobi_panel_sweep",
    "run_jacobi_mpi",
    "run_jacobi_hmpi",
    "JacobiRunResult",
]


def initial_grid(n: int, seed: int = 0) -> np.ndarray:
    """Deterministic N x N starting grid with hot boundaries."""
    rng = np.random.default_rng(seed)
    grid = rng.uniform(0.0, 0.1, size=(n, n))
    grid[0, :] = 1.0
    grid[-1, :] = 1.0
    grid[:, 0] = -1.0
    grid[:, -1] = -1.0
    return grid


def jacobi_reference(n: int, niter: int, seed: int = 0) -> np.ndarray:
    """Serial ground truth."""
    grid = initial_grid(n, seed)
    for _ in range(niter):
        interior = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                           + grid[1:-1, :-2] + grid[1:-1, 2:])
        new = grid.copy()
        new[1:-1, 1:-1] = interior
        grid = new
    return grid


def partition_rows(n: int, weights) -> list[int]:
    """Split the ``n - 2`` interior rows proportionally to ``weights``."""
    if n < 3:
        raise ReproError("grid too small for an interior")
    return [int(x) for x in proportional_partition(n - 2, np.asarray(weights, dtype=float))]


def jacobi_panel_sweep(
    compute,
    comm: Comm,
    n: int,
    rows: list[int],
    niter: int,
    k: int,
    seed: int = 0,
) -> np.ndarray:
    """Run the panel algorithm on one member; returns the member's final
    panel (interior rows only)."""
    p = comm.size
    if len(rows) != p:
        raise ReproError(f"rows has {len(rows)} entries for {p} ranks")
    if sum(rows) != n - 2:
        raise ReproError("rows must cover exactly the interior")
    me = comm.rank
    start = 1 + sum(rows[:me])          # first interior row owned
    my_rows = rows[me]

    full = initial_grid(n, seed)
    # panel with one halo row above and below
    panel = full[start - 1:start + my_rows + 1].copy()

    for it in range(niter):
        # halo exchange with neighbours (boundary rows are fixed walls)
        if me > 0:
            comm.send(panel[1].copy(), me - 1, tag=it)
        if me < p - 1:
            comm.send(panel[-2].copy(), me + 1, tag=it)
        if me > 0:
            panel[0] = comm.recv(me - 1, tag=it)
        if me < p - 1:
            panel[-1] = comm.recv(me + 1, tag=it)
        interior = 0.25 * (panel[:-2, 1:-1] + panel[2:, 1:-1]
                           + panel[1:-1, :-2] + panel[1:-1, 2:])
        panel[1:-1, 1:-1] = interior
        compute(my_rows * n / k)

    return panel[1:-1]


@dataclass
class JacobiRunResult:
    algorithm_time: float
    makespan: float
    grid: np.ndarray                    # assembled final grid
    rows: list[int]
    group_world_ranks: tuple[int, ...]
    predicted_time: float | None = None


def _timed_region(comm, compute, n, rows, niter, k, seed):
    comm.barrier()
    t0 = comm.wtime()
    panel = jacobi_panel_sweep(compute, comm, n, rows, niter, k, seed)
    comm.barrier()
    elapsed = comm.wtime() - t0
    panels = comm.gather(panel, root=0)
    grid = None
    if comm.rank == 0:
        grid = initial_grid(n, seed)
        row = 1
        for block in panels:
            grid[row:row + len(block), :] = block
            row += len(block)
    return grid, elapsed


def run_jacobi_mpi(
    cluster: Cluster,
    n: int,
    p: int,
    niter: int,
    k: int = 100,
    seed: int = 0,
    timeout: float | None = 120.0,
    *,
    engine: str | None = None,
) -> JacobiRunResult:
    """Uniform row panels on the first ``p`` world processes."""
    if p > cluster.size:
        raise ReproError(f"need {p} machines, cluster has {cluster.size}")
    rows = partition_rows(n, [1.0] * p)

    def app(env: MPIEnv):
        executing = 1 if env.rank < p else 0
        comm = env.comm_world.split(executing, key=env.rank)
        if not executing:
            return None
        grid, elapsed = _timed_region(comm, env.compute, n, rows, niter, k, seed)
        ranks = comm.group.world_ranks
        comm.free()
        return (grid, elapsed, ranks)

    result = run_mpi(app, cluster, timeout=timeout, engine=engine)
    grid, elapsed, ranks = result.results[0]
    return JacobiRunResult(
        algorithm_time=elapsed, makespan=result.makespan, grid=grid,
        rows=rows, group_world_ranks=tuple(ranks),
    )


def run_jacobi_hmpi(
    cluster: Cluster,
    n: int,
    p: int,
    niter: int,
    k: int = 100,
    seed: int = 0,
    mapper: Mapper | None = None,
    recon: bool = True,
    timeout: float | None = 120.0,
    *,
    engine: str | None = None,
) -> JacobiRunResult:
    """Speed-proportional panels on an HMPI-selected group.

    The host reads the (recon-refreshed) speed estimates, sizes the panels
    for an intended speed-sorted arrangement with itself first (the model
    pins ``parent[0]`` to the host), and creates the group for the Jacobi
    model; the selection matches panel volumes to machine speeds.
    """
    if p > cluster.size:
        raise ReproError(f"need {p} machines, cluster has {cluster.size}")

    def app(hmpi: HMPI):
        if recon:
            hmpi.recon()
        if hmpi.is_host():
            speeds = hmpi.state.netmodel.speeds().tolist()
            host_speed = speeds[hmpi.env.machine_index]
            others = sorted(
                (s for i, s in enumerate(speeds) if i != hmpi.env.machine_index),
                reverse=True,
            )
            arrangement = [host_speed] + others[:p - 1]
            rows = partition_rows(n, arrangement)
        else:
            rows = None
        rows = hmpi.comm_world.bcast(rows, root=0)
        bound = bind_jacobi_model(p, k, n, rows)
        predicted = hmpi.timeof(bound, iterations=niter) if hmpi.is_host() else None

        gid = hmpi.group_create(bound, mapper=mapper)
        out = None
        if gid.is_member:
            comm = gid.comm
            conc = gid.my_concurrency

            def member_compute(volume, _c=conc):
                return hmpi.compute(volume, _c)

            grid, elapsed = _timed_region(comm, member_compute, n, rows,
                                          niter, k, seed)
            out = (grid, elapsed, gid.world_ranks, predicted, rows)
            hmpi.group_free(gid)
        return out

    result = run_hmpi(app, cluster, mapper=mapper, timeout=timeout,
                      engine=engine)
    grid, elapsed, ranks, predicted, rows = result.results[0]
    return JacobiRunResult(
        algorithm_time=elapsed, makespan=result.makespan, grid=grid,
        rows=rows, group_world_ranks=tuple(ranks), predicted_time=predicted,
    )
