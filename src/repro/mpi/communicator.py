"""Communicators: the per-rank handle tying group + context + engine.

API style follows mpi4py's lowercase object interface (per the HPC-Python
guides): ``send``/``recv`` move NumPy arrays natively and arbitrary
picklable objects otherwise; collectives are methods.  Ranks appearing in
the API are always **communicator ranks**; translation to world ranks
happens inside.

Communicator creation (``split``, ``dup``, ``create``) is collective and
allocates context ids deterministically, so two messages can never
cross-match between communicators.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from ..util.errors import MPICommError
from . import collectives as _coll
from .engine import Engine, WORLD_CONTEXT
from .group import Group
from .ops import Op
from .request import RecvRequest, Request, SendRequest
from .status import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED, Status

__all__ = ["Comm"]

#: Internal collective tags live far below user tag space (user tags >= 0).
_COLL_TAG_BASE = -1_000_000


class Comm:
    """A communicator handle owned by one rank.

    Construct via :func:`repro.mpi.launcher.run_mpi` (which builds the world
    communicator) and the ``split``/``dup``/``create`` methods.
    """

    def __init__(self, engine: Engine, group: Group, context: int, world_rank: int):
        if world_rank not in group:
            raise MPICommError(
                f"world rank {world_rank} is not a member of {group}"
            )
        self._engine = engine
        self._group = group
        self._context = context
        self._world_rank = world_rank
        self._rank = group.rank_of(world_rank)
        self._freed = False
        self._creation_counter = 0
        self._coll_counter = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator (MPI_Comm_rank)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the communicator (MPI_Comm_size)."""
        return self._group.size

    @property
    def group(self) -> Group:
        """The communicator's group (MPI_Comm_group)."""
        return self._group

    @property
    def context(self) -> int:
        """The communication context id (unique per communicator)."""
        return self._context

    @property
    def is_world(self) -> bool:
        return self._context == WORLD_CONTEXT

    def wtime(self) -> float:
        """This rank's current virtual time (MPI_Wtime)."""
        return self._engine.vtime(self._world_rank)

    def _check_alive(self) -> None:
        if self._freed:
            raise MPICommError("operation on a freed communicator")

    def _translate_out(self, comm_rank: int) -> int:
        if comm_rank == ANY_SOURCE:
            return ANY_SOURCE
        if not 0 <= comm_rank < self.size:
            raise MPICommError(
                f"rank {comm_rank} out of range for communicator size {self.size}"
            )
        return self._group.world_rank(comm_rank)

    def _localize_status(self, status: Status) -> Status:
        """Convert the engine's world-rank status to communicator ranks."""
        local = self._group.rank_of(status.source)
        return Status(source=local, tag=status.tag, nbytes=status.nbytes,
                      arrival_vtime=status.arrival_vtime)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> None:
        """Standard-mode send (eager).  ``nbytes`` overrides the charged size."""
        self._check_alive()
        if dest == PROC_NULL:
            return
        if tag < 0:
            raise MPICommError(f"user tags must be >= 0, got {tag}")
        self._engine.post_send(self._world_rank, self._translate_out(dest),
                               self._context, tag, obj, nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None,
             timeout: float | None = None) -> Any:
        """Blocking receive; returns the received object.

        Pass a :class:`Status` to have source/tag/nbytes filled in (source
        as a communicator rank).  ``timeout`` bounds the wait in *virtual*
        seconds: if the message can never arrive, the call raises
        :class:`~repro.util.errors.OperationTimeoutError` instead of
        stalling until global failure resolution.
        """
        self._check_alive()
        if source == PROC_NULL:
            if status is not None:
                status.source = PROC_NULL
                status.tag = ANY_TAG
                status.nbytes = 0
            return None
        wsrc = self._translate_out(source)
        posted = self._engine.post_recv(self._world_rank, self._context, wsrc, tag)
        value, st = self._engine.wait_recv(self._world_rank, posted,
                                           timeout=timeout)
        if status is not None:
            local = self._localize_status(st)
            status.source = local.source
            status.tag = local.tag
            status.nbytes = local.nbytes
            status.arrival_vtime = local.arrival_vtime
        return value

    def ssend(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> None:
        """Synchronous-mode send (MPI_Ssend): returns only after the
        receiver has matched the message — the rendezvous is visible in
        virtual time (the sender's clock advances past the receiver's
        matching point)."""
        self._check_alive()
        if dest == PROC_NULL:
            return
        if tag < 0:
            raise MPICommError(f"user tags must be >= 0, got {tag}")
        self._engine.post_send(self._world_rank, self._translate_out(dest),
                               self._context, tag, obj, nbytes, sync=True)

    def isend(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> Request:
        """Nonblocking send — eager, so the request is complete at once."""
        self.send(obj, dest, tag, nbytes)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              timeout: float | None = None) -> Request:
        """Nonblocking receive; ``wait()`` yields ``(value, status)``.

        ``timeout`` (virtual seconds) bounds the eventual ``wait()``.
        """
        self._check_alive()
        if source == PROC_NULL:
            req = SendRequest()  # trivially complete, value None
            return req
        wsrc = self._translate_out(source)
        posted = self._engine.post_recv(self._world_rank, self._context, wsrc, tag)
        return RecvRequest(self, posted, timeout=timeout)

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
                 status: Status | None = None, nbytes: int | None = None) -> Any:
        """Combined send+receive; deadlock-free because sends are eager."""
        req = self.irecv(source, recvtag)
        self.send(obj, dest, sendtag, nbytes)
        value, st = req.wait()
        if status is not None and st is not None:
            status.source = st.source
            status.tag = st.tag
            status.nbytes = st.nbytes
            status.arrival_vtime = st.arrival_vtime
        return value

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              timeout: float | None = None) -> Status:
        """Block until a matching message is available; return its status."""
        self._check_alive()
        wsrc = self._translate_out(source)
        st = self._engine.probe(self._world_rank, self._context, wsrc, tag,
                                block=True, timeout=timeout)
        assert st is not None
        return self._localize_status(st)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe; None when no matching message is queued."""
        self._check_alive()
        wsrc = self._translate_out(source)
        st = self._engine.probe(self._world_rank, self._context, wsrc, tag, block=False)
        return None if st is None else self._localize_status(st)

    # internal entry points used by the collectives module (negative tags)
    def _send_internal(self, obj: Any, dest: int, tag: int, nbytes: int | None = None) -> None:
        self._engine.post_send(self._world_rank, self._translate_out(dest),
                               self._context, tag, obj, nbytes)

    def _recv_internal(self, source: int, tag: int,
                       timeout: float | None = None) -> tuple[Any, Status]:
        wsrc = self._translate_out(source)
        posted = self._engine.post_recv(self._world_rank, self._context, wsrc, tag)
        return self._engine.wait_recv(self._world_rank, posted, timeout=timeout)

    def _next_coll_tag(self) -> int:
        self._check_alive()
        tag = _COLL_TAG_BASE - self._coll_counter
        self._coll_counter += 1
        return tag

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    @contextmanager
    def _traced_coll(self, name: str):
        """Record the collective's full extent at this rank as a ``coll``
        trace event, so waiting inside a barrier/bcast renders as part of
        the collective instead of an idle gap in the Gantt chart.  The
        finer-grained send/recv events inside the extent outrank it when
        glyphs overlap, so only the genuine wait portions show as
        collective time.
        """
        tracer = self._engine.tracer
        if tracer is None:
            yield
            return
        t0 = self._engine.vtime(self._world_rank)
        try:
            yield
        finally:
            from .tracing import TraceEvent

            tracer.record(TraceEvent(
                rank=self._world_rank, kind="coll", t0=t0,
                t1=self._engine.vtime(self._world_rank), label=name,
            ))

    def barrier(self, algorithm: str = "dissemination") -> None:
        with self._traced_coll("barrier"):
            return _coll.barrier(self, algorithm)

    def bcast(self, obj: Any, root: int = 0, nbytes: int | None = None,
              algorithm: str = "binomial") -> Any:
        with self._traced_coll("bcast"):
            return _coll.bcast(self, obj, root, nbytes, algorithm)

    def reduce(self, obj: Any, op: Op, root: int = 0,
               algorithm: str = "binomial") -> Any:
        with self._traced_coll("reduce"):
            return _coll.reduce(self, obj, op, root, algorithm)

    def allreduce(self, obj: Any, op: Op, algorithm: str = "binomial") -> Any:
        with self._traced_coll("allreduce"):
            return _coll.allreduce(self, obj, op, algorithm)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        with self._traced_coll("gather"):
            return _coll.gather(self, obj, root)

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        with self._traced_coll("scatter"):
            return _coll.scatter(self, objs, root)

    def allgather(self, obj: Any, algorithm: str = "ring") -> list[Any]:
        with self._traced_coll("allgather"):
            return _coll.allgather(self, obj, algorithm)

    def alltoall(self, objs: list[Any]) -> list[Any]:
        with self._traced_coll("alltoall"):
            return _coll.alltoall(self, objs)

    def scan(self, obj: Any, op: Op) -> Any:
        with self._traced_coll("scan"):
            return _coll.scan(self, obj, op)

    def exscan(self, obj: Any, op: Op) -> Any:
        with self._traced_coll("exscan"):
            return _coll.exscan(self, obj, op)

    def reduce_scatter_block(self, objs: list[Any], op: Op) -> Any:
        with self._traced_coll("reduce_scatter_block"):
            return _coll.reduce_scatter_block(self, objs, op)

    # ------------------------------------------------------------------
    # communicator construction (collective)
    # ------------------------------------------------------------------
    def _next_creation(self) -> int:
        self._check_alive()
        counter = self._creation_counter
        self._creation_counter += 1
        return counter

    def split(self, color: int, key: int = 0) -> "Comm | None":
        """MPI_Comm_split: partition by ``color``, order by ``(key, rank)``.

        Ranks passing ``color=UNDEFINED`` participate in the collective but
        receive None.
        """
        counter = self._next_creation()
        triples = self.allgather((color, key, self._world_rank))
        if color == UNDEFINED:
            return None
        members = sorted(
            (k, self._group.rank_of(wr), wr)
            for c, k, wr in triples
            if c == color
        )
        new_group = Group(wr for _, _, wr in members)
        context = self._engine.allocate_context(
            ("split", self._context, counter, color)
        )
        return Comm(self._engine, new_group, context, self._world_rank)

    def dup(self) -> "Comm":
        """MPI_Comm_dup: same group, fresh context (collective)."""
        counter = self._next_creation()
        self.barrier()  # the synchronising handshake of a real dup
        context = self._engine.allocate_context(("dup", self._context, counter))
        return Comm(self._engine, self._group, context, self._world_rank)

    def create(self, group: Group) -> "Comm | None":
        """MPI_Comm_create: new communicator over a subgroup (collective on
        the parent); non-members get None."""
        counter = self._next_creation()
        self.barrier()
        for wr in group:
            if wr not in self._group:
                raise MPICommError(
                    f"group member (world rank {wr}) is not in the parent communicator"
                )
        context = self._engine.allocate_context(
            ("create", self._context, counter, group.world_ranks)
        )
        if self._world_rank not in group:
            return None
        return Comm(self._engine, group, context, self._world_rank)

    def free(self) -> None:
        """Mark the communicator unusable (MPI_Comm_free)."""
        self._freed = True

    def __repr__(self) -> str:
        return (f"Comm(ctx={self._context}, rank={self._rank}/{self.size}, "
                f"world_rank={self._world_rank})")
