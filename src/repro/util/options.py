"""Uniform option validation for library entry points.

Every entry point that accepts a named strategy — ``engine=`` on the
launcher, ``algorithm=`` on collectives, ``mapper=`` on the HMPI runtime —
validates it the same way: membership in a closed registry, and one
error message shape naming the option, the bad value, and the choices.
:func:`check_choice` is that single implementation; callers pick the
exception type their layer's contract promises (``OptionError`` for
engine/launcher options, ``MPICommError`` for collective algorithms, and
so on), so established ``except`` clauses keep working.
"""

from __future__ import annotations

from collections.abc import Sequence

from .errors import OptionError

__all__ = ["check_choice"]


def check_choice(kind: str, value: str, choices: Sequence[str],
                 exc: type[Exception] = OptionError) -> str:
    """Validate a registry-string option; returns ``value`` when known.

    ``kind`` names the option in the error (``"bcast algorithm"``,
    ``"engine backend"``); ``exc`` is the exception type raised for an
    unknown value.  The error lists the valid choices in their
    declaration order (the order of ``choices``), deduplicated; unordered
    containers (sets) are sorted so the message is deterministic.
    """
    if value not in choices:
        if isinstance(choices, (set, frozenset)):
            listed: Sequence[str] = sorted(choices)
        else:
            listed = list(dict.fromkeys(choices))
        raise exc(
            f"unknown {kind} {value!r}; "
            f"expected one of {', '.join(listed)}"
        )
    return value
