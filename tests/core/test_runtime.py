"""HMPI runtime semantics: recon, timeof, group lifecycle."""

import numpy as np
import pytest

from repro.cluster import StepLoad, paper_network, uniform_network
from repro.core.mapper import ExhaustiveMapper
from repro.core.runtime import run_hmpi
from repro.perfmodel.builder import MatrixModel
from repro.util.errors import HMPIStateError


def simple_model(volumes=(100.0, 50.0), comm=0.0):
    n = len(volumes)
    links = np.full((n, n), float(comm))
    np.fill_diagonal(links, 0.0)
    return MatrixModel(list(volumes), links)


class TestPredicates:
    def test_host_and_free_roles(self, small_cluster):
        def app(hmpi):
            return (hmpi.is_host(), hmpi.is_free(), hmpi.rank, hmpi.size)

        res = run_hmpi(app, small_cluster)
        assert res.results[0] == (True, False, 0, 4)
        assert res.results[1] == (False, True, 1, 4)

    def test_comm_world_is_usable(self, small_cluster):
        from repro.mpi.ops import SUM

        def app(hmpi):
            return hmpi.comm_world.allreduce(1, SUM)

        res = run_hmpi(app, small_cluster)
        assert res.results == [4] * 4


class TestRecon:
    def test_refreshes_to_observed_speeds(self):
        # machine 1 is half-loaded from t=0: recon must discover ~25 u/s.
        cluster = uniform_network([100.0, 50.0])
        cluster.machines[1].load = StepLoad([(0.0, 0.5)], initial=0.5)

        def app(hmpi):
            hmpi.recon(volume=1.0)
            return hmpi.state.netmodel.speeds().tolist()

        res = run_hmpi(app, cluster)
        assert res.results[0][0] == pytest.approx(100.0)
        assert res.results[0][1] == pytest.approx(25.0)

    def test_returns_own_speed(self):
        cluster = uniform_network([100.0, 50.0])

        def app(hmpi):
            return hmpi.recon(volume=2.0)

        res = run_hmpi(app, cluster)
        assert res.results[0] == pytest.approx(100.0)
        assert res.results[1] == pytest.approx(50.0)

    def test_custom_benchmark(self):
        cluster = uniform_network([100.0])

        def bench(env):
            env.compute(1.0)

        def app(hmpi):
            return hmpi.recon(bench)

        res = run_hmpi(app, cluster)
        assert res.results[0] == pytest.approx(100.0)


class TestTimeof:
    def test_prediction_scales_with_iterations(self, small_cluster):
        def app(hmpi):
            if not hmpi.is_host():
                return None
            m = simple_model()
            return (hmpi.timeof(m), hmpi.timeof(m, iterations=10))

        res = run_hmpi(app, small_cluster)
        one, ten = res.results[0]
        assert ten == pytest.approx(10 * one)

    def test_local_operation_charges_no_time(self, small_cluster):
        def app(hmpi):
            if hmpi.is_host():
                t0 = hmpi.wtime()
                hmpi.timeof(simple_model())
                assert hmpi.wtime() == t0
            return True

        run_hmpi(app, small_cluster)


class TestGroupLifecycle:
    def test_members_get_comm_with_abstract_order(self, paper_cluster):
        # Small parent volume so the optimum is unique: abstract 1 (200
        # units) must take the 176-speed machine, abstract 2 (100) the 106.
        model = simple_model([10.0, 200.0, 100.0])

        def app(hmpi):
            gid = hmpi.group_create(model, mapper=ExhaustiveMapper())
            info = None
            if gid.is_member:
                info = (gid.rank, gid.size, gid.comm.size)
                hmpi.group_free(gid)
            return (info, gid.world_ranks)

        res = run_hmpi(app, paper_cluster)
        _, world_ranks = res.results[0]
        # parent pinned: abstract 0 on host
        assert world_ranks[0] == 0
        # the two big volumes on the fastest machines, matched by size
        assert world_ranks[1] == 6 and world_ranks[2] == 7
        # group rank == abstract processor index
        member_infos = {r[0] for r in res.results if r[0] is not None}
        assert {(0, 3, 3), (1, 3, 3), (2, 3, 3)} == member_infos

    def test_non_members_have_no_comm(self, paper_cluster):
        model = simple_model([10.0, 10.0])

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
                return "member"
            with pytest.raises(HMPIStateError):
                _ = gid.comm
            return "outside"

        res = run_hmpi(app, paper_cluster)
        assert res.results.count("member") == 2
        assert res.results.count("outside") == 7

    def test_group_free_returns_processes_to_pool(self, paper_cluster):
        model = simple_model([10.0, 10.0])

        def app(hmpi):
            first = hmpi.group_create(model)
            if first.is_member:
                hmpi.group_free(first)
            second = hmpi.group_create(model)
            if second.is_member:
                hmpi.group_free(second)
            return (first.world_ranks, second.world_ranks)

        res = run_hmpi(app, paper_cluster)
        first, second = res.results[0]
        assert first == second  # same optimum available again

    def test_sequential_groups_communicate_independently(self, small_cluster):
        from repro.mpi.ops import SUM

        model = simple_model([10.0, 10.0, 10.0])

        def app(hmpi):
            total = None
            gid = hmpi.group_create(model)
            if gid.is_member:
                total = gid.comm.allreduce(gid.rank, SUM)
                hmpi.group_free(gid)
            return total

        res = run_hmpi(app, small_cluster)
        sums = [r for r in res.results if r is not None]
        assert sums == [3, 3, 3]

    def test_predicted_time_attached(self, small_cluster):
        model = simple_model([100.0, 50.0])

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
            return gid.mapping.time

        res = run_hmpi(app, small_cluster)
        assert res.results[0] > 0
        assert len(set(res.results)) == 1  # all agree on the prediction

    def test_freed_group_rejects_use(self, small_cluster):
        model = simple_model([10.0, 10.0])

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
                with pytest.raises(HMPIStateError):
                    _ = gid.comm
            return True

        run_hmpi(app, small_cluster)


class TestInitialSpeeds:
    def test_oracle_override(self, small_cluster):
        def app(hmpi):
            return hmpi.state.netmodel.speeds().tolist()

        res = run_hmpi(app, small_cluster, initial_speeds=[1.0, 2.0, 3.0, 4.0])
        assert res.results[0] == [1.0, 2.0, 3.0, 4.0]


class TestDeadMarking:
    def test_dead_ranks_excluded_from_selection(self, paper_cluster):
        model = simple_model([10.0, 10.0])

        def app(hmpi):
            # pretend the fastest machine's process died; the dead rank
            # itself takes no further part in collective operations.
            hmpi.mark_dead(6)
            if hmpi.rank == 6:
                return None
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
            return gid.world_ranks

        res = run_hmpi(app, paper_cluster)
        assert 6 not in res.results[0]
