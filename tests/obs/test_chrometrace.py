"""Chrome trace-event exporter: schema validity, empty traces, FT runs."""

import json

import pytest

from repro.mpi.tracing import TraceEvent, Tracer
from repro.obs.chrometrace import (
    RANKS_PID,
    RUNTIME_PID,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanLog


def make_tracer(*events):
    tracer = Tracer()
    for e in events:
        tracer.record(e)
    return tracer


class TestEmptyTraces:
    def test_no_sources(self):
        doc = chrome_trace()
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []

    def test_empty_tracer_and_spans(self):
        doc = chrome_trace(tracer=Tracer(), spans=SpanLog())
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []

    def test_empty_doc_writes(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome_trace(str(path), chrome_trace())
        assert json.loads(path.read_text())["traceEvents"] == []


class TestSchema:
    def test_engine_events_shape(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=0.5, volume=10.0),
            TraceEvent(rank=1, kind="send", t0=0.1, t1=0.2, peer=0,
                       nbytes=800, tag=3),
            TraceEvent(rank=1, kind="death", t0=0.3, t1=0.3, label="m01"),
        )
        doc = chrome_trace(tracer=tracer)
        assert validate_chrome_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        comp = by_name["compute"]
        assert comp["pid"] == RANKS_PID and comp["tid"] == 0
        assert comp["ts"] == 0.0 and comp["dur"] == pytest.approx(0.5e6)
        send = by_name["send"]
        assert send["args"] == {"peer": 0, "nbytes": 800, "tag": 3}
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "death:m01"
        assert instants[0]["s"] == "t"

    def test_metadata_lanes(self):
        tracer = make_tracer(TraceEvent(rank=2, kind="compute", t0=0.0, t1=1.0))
        doc = chrome_trace(tracer=tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["tid"]) for e in meta}
        assert ("process_name", RANKS_PID, 0) in names
        assert ("thread_name", RANKS_PID, 2) in names
        assert ("thread_sort_index", RANKS_PID, 2) in names

    def test_span_events_carry_ids(self):
        log = SpanLog()
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        with log.span("HMPI_Group_create", rank=0, clock=clock, gid=1):
            with log.span("checkpoint_save", rank=0, clock=clock):
                pass
        doc = chrome_trace(spans=log)
        assert validate_chrome_trace(doc) == []
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["HMPI_Group_create"]["pid"] == RUNTIME_PID
        child = spans["checkpoint_save"]
        assert child["args"]["parent_id"] == \
            spans["HMPI_Group_create"]["args"]["span_id"]

    def test_non_jsonable_attrs_coerced(self):
        log = SpanLog()
        clock = iter(range(100)).__next__

        class Weird:
            def __repr__(self):
                return "<weird>"

        with log.span("op", rank=0, clock=lambda: float(clock()),
                      obj=Weird(), tup=(1, 2), mapping={"k": Weird()}):
            pass
        doc = chrome_trace(spans=log)
        assert validate_chrome_trace(doc) == []
        json.dumps(doc)  # must not raise
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["obj"] == "<weird>"
        assert ev["args"]["tup"] == [1, 2]

    def test_displayTimeUnit_and_metadata(self):
        doc = chrome_trace(metadata={"app": "jacobi"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["app"] == "jacobi"
        assert doc["otherData"]["clock"] == "virtual"


class TestValidator:
    def test_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_rejects_bad_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 0,
                                "ts": 0.0}]}
        assert any("bad phase" in p for p in validate_chrome_trace(doc))

    def test_rejects_negative_ts(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                                "ts": -1.0, "dur": 1.0}]}
        assert any("ts" in p for p in validate_chrome_trace(doc))

    def test_rejects_x_without_dur(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                                "ts": 0.0}]}
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_metadata_without_args(self):
        doc = {"traceEvents": [{"ph": "M", "name": "process_name",
                                "pid": 1, "tid": 0}]}
        assert any("metadata" in p for p in validate_chrome_trace(doc))

    def test_write_refuses_invalid(self, tmp_path):
        doc = {"traceEvents": [{"ph": "Z"}]}
        with pytest.raises(ValueError):
            write_chrome_trace(str(tmp_path / "bad.json"), doc)
        assert not (tmp_path / "bad.json").exists()


class TestFTCampaignRoundTrip:
    def test_ft_jacobi_run_round_trips(self, tmp_path):
        """A real fault-injected run exports a valid trace containing the
        death instant, repair extents, and nested runtime spans."""
        from repro.apps.jacobi import jacobi_reference, run_jacobi_ft
        from repro.cluster import FaultSchedule, inject_faults, uniform_network
        from repro.obs import Observability

        cluster = uniform_network([100.0] * 5)
        inject_faults(cluster, FaultSchedule({"m02": 0.05}))
        obs = Observability()
        result = run_jacobi_ft(cluster, n=30, p=4, niter=6, k=50, seed=3,
                               obs=obs)
        assert result.error is None
        assert result.repairs >= 1
        import numpy as np
        assert np.array_equal(result.grid, jacobi_reference(30, 6, seed=3))

        path = tmp_path / "ft.json"
        obs.write_chrome_trace(str(path), metadata={"app": "jacobi-ft"})
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

        events = doc["traceEvents"]
        assert any(e["ph"] == "i" and e["name"].startswith("death")
                   for e in events)
        assert any(e.get("cat") == "fault" and e["name"].startswith("repair")
                   for e in events)
        runtime = [e for e in events
                   if e.get("pid") == RUNTIME_PID and e["ph"] == "X"]
        names = {e["name"] for e in runtime}
        assert {"HMPI_Group_create", "HMPI_Group_repair",
                "checkpoint_save", "checkpoint_restore"} <= names
        # Checkpoint restores re-entered after the repair nest under it.
        repair_ids = {e["args"]["span_id"] for e in runtime
                      if e["name"] == "HMPI_Group_repair"}
        assert repair_ids
        # Both pids present: engine lanes and runtime lanes.
        assert {e["pid"] for e in events} >= {RANKS_PID, RUNTIME_PID}


class TestValidatorEdgeCases:
    def ok(self, **ev):
        return {"ph": "X", "name": "e", "pid": 0, "tid": 0,
                "ts": 0.0, "dur": 1.0, **ev}

    def test_empty_event_list_is_valid(self):
        assert validate_chrome_trace({"traceEvents": []}) == []

    def test_non_dict_document(self):
        (problem,) = validate_chrome_trace([])
        assert "JSON object" in problem

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_unknown_phase_flagged(self):
        doc = {"traceEvents": [self.ok(ph="Z")]}
        (problem,) = validate_chrome_trace(doc)
        assert "bad phase 'Z'" in problem

    def test_missing_phase_flagged(self):
        ev = self.ok()
        del ev["ph"]
        (problem,) = validate_chrome_trace({"traceEvents": [ev]})
        assert "bad phase None" in problem

    def test_out_of_order_timestamps_are_legal(self):
        # The Trace Event Format is order-independent (Perfetto sorts by
        # ts on load), so a document whose events go backwards in time
        # must validate clean — only *negative* timestamps are broken.
        doc = {"traceEvents": [self.ok(ts=50.0), self.ok(ts=3.0),
                               self.ok(ts=20.0)]}
        assert validate_chrome_trace(doc) == []

    def test_negative_timestamp_flagged(self):
        doc = {"traceEvents": [self.ok(ts=-1.0)]}
        (problem,) = validate_chrome_trace(doc)
        assert "non-negative" in problem

    def test_inverted_duration_flagged(self):
        doc = {"traceEvents": [self.ok(dur=-2.0)]}
        (problem,) = validate_chrome_trace(doc)
        assert "non-negative dur" in problem

    def test_each_bad_event_reported_once(self):
        doc = {"traceEvents": [self.ok(ph="Q"), self.ok(ts=-1.0),
                               self.ok()]}
        assert len(validate_chrome_trace(doc)) == 2

    def test_write_rejects_invalid_document(self, tmp_path):
        doc = {"traceEvents": [self.ok(ph="Z")]}
        with pytest.raises(ValueError):
            write_chrome_trace(str(tmp_path / "bad.json"), doc)
