"""Python-native model builder (no DSL)."""

import numpy as np
import pytest

from repro.perfmodel.builder import CallableModel, MatrixModel
from repro.perfmodel.model import LinearActionVisitor
from repro.util.errors import PMDLSemanticError


class Recorder(LinearActionVisitor):
    def __init__(self):
        self.events = []

    def compute(self, percent, proc):
        self.events.append(("C", percent, proc))

    def transfer(self, percent, src, dst):
        self.events.append(("T", percent, src, dst))


class TestCallableModel:
    def test_volumes_from_callables(self):
        m = CallableModel(
            nproc=3,
            node_volume=lambda i: 10.0 * (i + 1),
            link_volume=lambda s, d: 100.0 * s + d,
        )
        assert m.node_volumes() == pytest.approx([10.0, 20.0, 30.0])
        links = m.link_volumes()
        assert links[2, 1] == 201.0
        assert links[1, 1] == 0.0  # diagonal forced to zero

    def test_volumes_cached(self):
        calls = []
        m = CallableModel(2, lambda i: calls.append(i) or 1.0, lambda s, d: 0.0)
        m.node_volumes()
        m.node_volumes()
        assert calls == [0, 1]

    def test_default_scheme_transfers_then_computes(self):
        m = CallableModel(
            nproc=2,
            node_volume=lambda i: 1.0,
            link_volume=lambda s, d: 8.0,
        )
        rec = Recorder()
        m.walk_scheme(rec)
        kinds = [e[0] for e in rec.events]
        assert kinds == ["T", "T", "C", "C"]
        assert all(e[1] == 100.0 for e in rec.events)

    def test_custom_scheme(self):
        def scheme(v):
            v.compute(50.0, 0)
            v.compute(50.0, 0)

        m = CallableModel(1, lambda i: 4.0, lambda s, d: 0.0, scheme=scheme)
        rec = Recorder()
        m.walk_scheme(rec)
        assert rec.events == [("C", 50.0, 0), ("C", 50.0, 0)]

    def test_parent_validation(self):
        with pytest.raises(PMDLSemanticError):
            CallableModel(2, lambda i: 1.0, lambda s, d: 0.0, parent=5)

    def test_nproc_validation(self):
        with pytest.raises(PMDLSemanticError):
            CallableModel(0, lambda i: 1.0, lambda s, d: 0.0)

    def test_negative_volume_rejected(self):
        m = CallableModel(2, lambda i: -1.0, lambda s, d: 0.0)
        with pytest.raises(PMDLSemanticError):
            m.node_volumes()


class TestMatrixModel:
    def test_arrays_as_ground_truth(self):
        node = [3.0, 1.0]
        links = [[0.0, 64.0], [32.0, 0.0]]
        m = MatrixModel(node, links)
        assert m.nproc == 2
        assert m.node_volumes() == pytest.approx(node)
        assert m.link_volumes()[0, 1] == 64.0

    def test_diagonal_zeroed(self):
        m = MatrixModel([1.0], [[99.0]])
        assert m.link_volumes()[0, 0] == 0.0

    def test_shape_validation(self):
        with pytest.raises(PMDLSemanticError):
            MatrixModel([1.0, 2.0], [[0.0]])
        with pytest.raises(PMDLSemanticError):
            MatrixModel([[1.0]], np.zeros((1, 1)))
