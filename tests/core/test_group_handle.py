"""HMPIGroup handle behaviour (accessors, concurrency, freed state)."""

import pytest

from repro.cluster import paper_network, uniform_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel
from repro.util.errors import HMPIStateError


def model(volumes):
    return CallableModel(len(volumes), lambda i: volumes[i], lambda s, d: 512.0)


class TestAccessors:
    def test_size_and_rank(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([50.0, 40.0, 30.0]))
            out = (gid.size, gid.rank if gid.is_member else None)
            if gid.is_member:
                hmpi.group_free(gid)
            return out

        res = run_hmpi(app, paper_cluster)
        assert all(size == 3 for size, _ in res.results)
        member_ranks = sorted(r for _, r in res.results if r is not None)
        assert member_ranks == [0, 1, 2]

    def test_parent_world_rank_is_host(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([10.0, 10.0]))
            if gid.is_member:
                hmpi.group_free(gid)
            return gid.parent_world_rank

        res = run_hmpi(app, paper_cluster)
        assert set(res.results) == {0}

    def test_repr_mentions_membership(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([10.0, 10.0]))
            text = repr(gid)
            if gid.is_member:
                hmpi.group_free(gid)
            return text

        res = run_hmpi(app, paper_cluster)
        assert "member" in res.results[0]
        assert any("non-member" in r for r in res.results)


class TestConcurrency:
    def test_one_per_machine(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([10.0, 10.0, 10.0]))
            conc = gid.my_concurrency if gid.is_member else None
            if gid.is_member:
                hmpi.group_free(gid)
            return conc

        res = run_hmpi(app, paper_cluster)
        assert all(c == 1 for c in res.results if c is not None)

    def test_colocated_members_counted(self):
        # 2 machines, 2 slots each; 3 abstract processors must co-locate.
        cluster = uniform_network([100.0, 100.0])

        def app(hmpi):
            gid = hmpi.group_create(model([30.0, 30.0, 30.0]))
            out = None
            if gid.is_member:
                out = (gid.rank, gid.my_concurrency,
                       [gid.concurrency_of(g) for g in range(3)])
                hmpi.group_free(gid)
            return out

        res = run_hmpi(app, cluster, placement=[0, 0, 1, 1])
        infos = [r for r in res.results if r is not None]
        assert len(infos) == 3
        # one machine hosts two members, the other one
        counts = sorted(infos[0][2])
        assert counts == [1, 2, 2]
        for rank, conc, all_conc in infos:
            assert conc == all_conc[rank]


class TestNonMemberAndFreed:
    def test_non_member_rank_raises(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([10.0]))
            if gid.is_member:
                hmpi.group_free(gid)
                return "member"
            with pytest.raises(HMPIStateError):
                _ = gid.rank
            return "checked"

        res = run_hmpi(app, paper_cluster)
        assert res.results.count("member") == 1

    def test_world_ranks_visible_to_everyone(self, paper_cluster):
        def app(hmpi):
            gid = hmpi.group_create(model([10.0, 20.0]))
            if gid.is_member:
                hmpi.group_free(gid)
            return gid.world_ranks

        res = run_hmpi(app, paper_cluster)
        assert len(set(res.results)) == 1
        assert len(res.results[0]) == 2
