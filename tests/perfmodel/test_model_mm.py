"""The compiled ParallelAxB model (paper Figure 7): volumes and scheme
self-consistency."""

import numpy as np
import pytest

from repro.apps.matmul.distribution import heterogeneous_distribution
from repro.apps.matmul.model import bind_matmul_model, matmul_model
from repro.perfmodel.model import LinearActionVisitor


class PercentAccumulator(LinearActionVisitor):
    def __init__(self):
        self.compute_pct = {}
        self.transfer_pct = {}

    def compute(self, percent, proc):
        self.compute_pct[proc] = self.compute_pct.get(proc, 0.0) + percent

    def transfer(self, percent, src, dst):
        key = (src, dst)
        self.transfer_pct[key] = self.transfer_pct.get(key, 0.0) + percent


def homogeneous_bound(n=4, r=8, m=2, l=2):
    w = [l // m] * m
    h = np.full((m, m, m, m), 0, dtype=int)
    # homogeneous: every rectangle is (l/m) x (l/m); same-row overlap is l/m
    for i in range(m):
        for j in range(m):
            for k in range(m):
                for l2 in range(m):
                    h[i, j, k, l2] = (l // m) if i == k else 0
    return matmul_model().bind(m, r, n, l, w, h)


class TestGeometry:
    def test_grid_nproc(self):
        bm = homogeneous_bound()
        assert bm.nproc == 4
        assert bm.extents == (2, 2)

    def test_parent_is_origin(self):
        assert homogeneous_bound().parent_index() == 0

    def test_row_major_linearisation(self):
        bm = homogeneous_bound()
        assert bm.linear_index((1, 0)) == 2
        assert bm.coords_of(3) == (1, 1)


class TestVolumesHomogeneous:
    def test_node_volume_formula(self):
        # w[J]*h[I][J][I][J]*(n/l)^2*n = 1*1*4*4 = 16
        bm = homogeneous_bound(n=4, l=2, m=2)
        assert bm.node_volumes() == pytest.approx([16.0] * 4)

    def test_link_volumes_symmetric_pattern(self):
        bm = homogeneous_bound(n=4, r=8, m=2, l=2)
        links = bm.link_volumes()
        # B traffic within columns: (0,0)->(1,0): 1*1*4*64*8 = 2048
        # A traffic across columns: same magnitude for this grid.
        assert links[0, 2] == pytest.approx(2048.0)
        assert links[0, 1] == pytest.approx(2048.0)
        assert np.diag(links).sum() == 0.0

    def test_scheme_percentages_close_exactly(self):
        bm = homogeneous_bound(n=4, r=8, m=2, l=2)
        acc = PercentAccumulator()
        bm.walk_scheme(acc)
        for proc, pct in acc.compute_pct.items():
            assert pct == pytest.approx(100.0)
        links = bm.link_volumes()
        for (s, d), pct in acc.transfer_pct.items():
            assert links[s, d] > 0
            assert pct == pytest.approx(100.0)
        # every declared link pair is exercised by the scheme
        assert set(acc.transfer_pct) == {
            (s, d) for s in range(4) for d in range(4) if links[s, d] > 0
        }


class TestVolumesHeterogeneous:
    @pytest.fixture
    def het(self):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(n=12, l=6, speeds=speeds)
        return dist, bind_matmul_model(dist, r=8)

    def test_node_volumes_proportional_to_areas(self, het):
        dist, bm = het
        volumes = bm.node_volumes()
        areas = [dist.area(g) for g in range(4)]
        # node volume = area * n  (each of n steps updates every block once)
        assert volumes == pytest.approx([a * 12 for a in areas])

    def test_scheme_self_consistent(self, het):
        _, bm = het
        acc = PercentAccumulator()
        bm.walk_scheme(acc)
        for pct in acc.compute_pct.values():
            assert pct == pytest.approx(100.0)
        links = bm.link_volumes()
        for (s, d), pct in acc.transfer_pct.items():
            assert pct == pytest.approx(100.0), (s, d)
        assert set(acc.transfer_pct) == {
            (s, d) for s in range(4) for d in range(4) if links[s, d] > 0
        }

    def test_total_area_is_full_matrix(self, het):
        dist, _ = het
        assert sum(dist.area(g) for g in range(4)) == 12 * 12
