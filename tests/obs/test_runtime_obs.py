"""Observability threaded through the runtime: spans, counters, accuracy.

These are the integration tests of the layer — real runs with ``obs=``
passed to the drivers, asserting on what the bundle collected.
"""

import pytest

from repro.cluster import paper_network, uniform_network
from repro.core.runtime import run_hmpi
from repro.obs import Observability


class TestRuntimeSpans:
    def test_recon_and_timeof_spans(self):
        obs = Observability(tracer=False)

        def app(hmpi):
            from repro import CallableModel

            hmpi.recon()
            if hmpi.is_host():
                model = CallableModel(nproc=2,
                                      node_volume=lambda i: 100.0,
                                      link_volume=lambda s, d: 0.0)
                hmpi.timeof(model, iterations=3)
            return hmpi.rank

        run_hmpi(app, uniform_network([100.0] * 3), obs=obs)
        recons = obs.spans.by_name("HMPI_Recon")
        assert len(recons) == 3           # every rank
        assert all("speed" in s.attrs and "elapsed" in s.attrs
                   for s in recons)
        (tof,) = obs.spans.by_name("HMPI_Timeof")
        assert tof.rank == 0
        assert tof.attrs["cache"] in ("hit", "miss")
        assert tof.attrs["candidates"] >= 1
        assert tof.attrs["predicted"] > 0
        assert obs.metrics.get_value("hmpi.recon.calls") == 3.0
        assert obs.metrics.get_value("hmpi.timeof.calls") == 1.0

    def test_group_create_span_attrs(self):
        obs = Observability(tracer=False)

        def app(hmpi):
            from repro import CallableModel

            model = CallableModel(nproc=2,
                                  node_volume=lambda i: 100.0,
                                  link_volume=lambda s, d: 0.0)
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
            return None

        run_hmpi(app, uniform_network([100.0] * 3), obs=obs)
        spans = obs.spans.by_name("HMPI_Group_create")
        assert len(spans) == 3
        host = [s for s in spans if s.attrs["role"] == "host"]
        assert len(host) == 1
        assert host[0].attrs["size"] == 2
        assert host[0].attrs["predicted"] > 0
        assert "cache" in host[0].attrs    # selection info reached the span
        # Counted once per group (at the host), not once per participant.
        assert obs.metrics.get_value("hmpi.groups.created") == 1.0

    def test_prediction_pairs_from_matmul(self):
        from repro.apps.matmul import run_matmul_hmpi
        from repro.core import GreedyMapper

        obs = Observability(tracer=False)
        run_matmul_hmpi(paper_network(), n=9, r=5, m=3, l=9, seed=1,
                        mapper=GreedyMapper(), obs=obs)
        report = obs.accuracy.report()
        assert "ParallelAxB" in report
        row = report["ParallelAxB"]
        assert row["measured"] == 1
        assert row["predictions"] >= 1
        # The engine executes exactly what the model prices, so the
        # selection estimate should land close.
        assert row["mean_abs_rel_error"] < 0.25

    def test_disabled_obs_records_nothing(self):
        def app(hmpi):
            hmpi.recon()
            return hmpi.rank

        result = run_hmpi(app, uniform_network([100.0] * 2))
        assert result.results == [0, 1]


class TestFTJacobiEmissions:
    """Acceptance criterion: one FT Jacobi run emits all three surfaces."""

    @pytest.fixture(scope="class")
    def ft_run(self):
        from repro.apps.jacobi import run_jacobi_ft
        from repro.cluster import FaultSchedule, inject_faults

        cluster = uniform_network([100.0] * 5)
        inject_faults(cluster, FaultSchedule({"m02": 0.05}))
        obs = Observability()
        result = run_jacobi_ft(cluster, n=30, p=4, niter=6, k=50, seed=0,
                               obs=obs)
        return obs, result

    def test_run_succeeded_with_repair(self, ft_run):
        obs, result = ft_run
        assert result.error is None
        assert result.repairs >= 1

    def test_metrics_snapshot(self, ft_run):
        obs, result = ft_run
        snap = obs.snapshot()
        values = {s["name"]: s for s in snap["metrics"]}
        assert values["hmpi.ranks.dead"]["value"] == 1.0
        assert values["hmpi.repairs"]["value"] >= 1.0
        assert values["hmpi.checkpoint.saves"]["value"] == \
            result.checkpoint_saves
        assert values["hmpi.checkpoint.save_bytes"]["count"] == \
            result.checkpoint_saves
        assert values["hmpi.selection.cache_misses"]["value"] >= 1.0
        assert snap["vtime"]["max"] > 0.0

    def test_repair_spans_nest_redistribution(self, ft_run):
        obs, _ = ft_run
        repairs = obs.spans.by_name("HMPI_Group_repair")
        assert repairs
        host = [s for s in repairs if s.attrs.get("role") == "host"]
        assert host
        assert "survivors" in host[0].attrs
        assert "new_gid" in host[0].attrs

    def test_chrome_trace_valid(self, ft_run):
        from repro.obs import validate_chrome_trace

        obs, _ = ft_run
        doc = obs.chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 0

    def test_accuracy_report(self, ft_run):
        obs, _ = ft_run
        report = obs.accuracy.report()
        assert report["Jacobi"]["measured"] >= 1
        assert report["Jacobi"]["mean_abs_rel_error"] is not None


class TestEngineFTEvents:
    def test_retransmit_events_traced(self):
        from repro.cluster import (
            TransientFaultConfig,
            TransientLinkFaults,
            attach_transient_faults,
        )
        from repro.mpi import run_mpi

        import numpy as np

        cluster = uniform_network([100.0] * 2)
        cfg = TransientFaultConfig(drop_prob=0.9)
        attach_transient_faults(cluster, TransientLinkFaults(cfg, seed=7))
        obs = Observability()

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                for i in range(10):
                    c.send(np.zeros(100), 1, tag=i)
            else:
                for i in range(10):
                    c.recv(0, tag=i)

        run_mpi(app, cluster, tracer=obs.tracer)
        retrans = obs.tracer.by_kind("retransmit")
        assert retrans        # 90% drop over 10 sends: certain at seed 7
        assert all(e.t1 > e.t0 for e in retrans)
        assert all(e.peer == 1 for e in retrans)

    def test_collective_events_traced(self):
        from repro.mpi import run_mpi

        obs = Observability()

        def app(env):
            from repro.mpi.ops import SUM

            env.comm_world.barrier()
            env.comm_world.allreduce(1.0, SUM)

        run_mpi(app, uniform_network([100.0] * 3), tracer=obs.tracer)
        colls = obs.tracer.by_kind("coll")
        labels = {e.label for e in colls}
        assert {"barrier", "allreduce"} <= labels
        assert len([e for e in colls if e.label == "barrier"]) == 3
