"""Net-schedule export: predicted traces through the existing pipeline."""

import pytest

from repro.apps.jacobi import bind_jacobi_model
from repro.cluster import paper_network
from repro.core.netmodel import NetworkModel
from repro.core.seleng import NetEvaluator
from repro.obs import net_chrome_trace, schedule_net, validate_chrome_trace
from repro.util.gantt import render_gantt, utilization


@pytest.fixture
def setup():
    p, k, n = 4, 100, 64
    bound = bind_jacobi_model(p, k, n, [n // p] * p)
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    return bound, netmodel, [0, 1, 2, 3]


class TestScheduleNet:
    def test_makespan_bitwise_matches_evaluator(self, setup):
        bound, netmodel, machines = setup
        tracer = schedule_net(bound, netmodel, machines)
        assert tracer.makespan() == NetEvaluator(bound, netmodel).evaluate(machines)

    def test_one_lane_per_abstract_processor(self, setup):
        bound, netmodel, machines = setup
        tracer = schedule_net(bound, netmodel, machines)
        assert tracer.nranks() == bound.nproc
        for rank in range(bound.nproc):
            assert tracer.of_rank(rank), f"processor {rank} has no events"

    def test_transfers_appear_on_both_endpoints(self, setup):
        bound, netmodel, machines = setup
        tracer = schedule_net(bound, netmodel, machines)
        sends = tracer.by_kind("send")
        recvs = tracer.by_kind("recv")
        assert sends and len(sends) == len(recvs)
        assert all(e.label for e in sends)  # transition labels carried

    def test_feeds_existing_gantt_pipeline(self, setup):
        bound, netmodel, machines = setup
        tracer = schedule_net(bound, netmodel, machines)
        chart = render_gantt(tracer, width=40)
        assert "rank  0" in chart and "#" in chart
        assert 0.0 < utilization(tracer, 0) <= 1.0


class TestNetChromeTrace:
    def test_document_validates(self, setup):
        bound, netmodel, machines = setup
        doc = net_chrome_trace(bound, netmodel, machines)
        assert validate_chrome_trace(doc) == []
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_metadata_carries_net_shape(self, setup):
        bound, netmodel, machines = setup
        doc = net_chrome_trace(bound, netmodel, machines,
                               metadata={"note": "test"})
        meta = doc["metadata"] if "metadata" in doc else doc.get("otherData")
        assert meta["exporter"] == "repro.obs.netexport"
        assert meta["transitions"] > 0 and meta["places"] > 0
        assert meta["note"] == "test"
