"""Static checks over unrolled communication nets (PM08x diagnostics).

The net lowering (:mod:`repro.perfmodel.net`) needs a concrete binding;
these checks therefore run on a *bound* model — either one the caller
provides or an automatic **probe binding** derived from the parameter
declarations (4 for int scalars, 1.0 for doubles, all-ones arrays).  The
probe is small enough to unroll instantly yet exercises the scheme's
real structure: a cyclic wait or an orphaned message is a property of
the communication pattern, not of the problem size.

Rules:

- **PM080** ``net-deadlock`` (error) — the wait graph has a cycle: no
  firing order of the net can consume all tokens, so the real program
  built from this scheme deadlocks.
- **PM081** ``net-orphan-message`` (warning) — a transfer whose message
  place no receive ever consumes: the destination performs no compute at
  or after the send, so the modelled arrival never synchronises.
- **PM082** ``net-multiplicity-mismatch`` (warning) — the sends on a
  declared pair move a total percentage other than 100% of its volume
  (counted over the unrolled net, so it works without ``--bind``).
- **PM083** ``net-unreachable-transition`` (warning) — an action
  statement in the scheme that emits no transition at the probe binding
  (e.g. a condition that can never hold).
- **PM084** ``net-analysis-skipped`` (info) — the net could not be
  built (unbound external functions, failing probe binding, oversized
  unroll); nothing was proven either way.

Entry points: :func:`check_net` for an existing bound model,
:func:`check_model_net` for a compiled :class:`PerformanceModel`, and
:func:`check_algorithm_net` for ``check_source``'s AST-level pipeline.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from ..util.errors import PMDLError
from . import ast
from .diagnostics import Diagnostic, Severity, register_rule
from .interp import Environment
from .model import AbstractBoundModel, BoundModel, PerformanceModel
from .net import MAX_NET_EVENTS, CommNet, lower_model

__all__ = [
    "probe_bindings",
    "check_net",
    "check_model_net",
    "check_algorithm_net",
]

_TOLERANCE = 1e-6

PM080 = register_rule("PM080", "net-deadlock", Severity.ERROR,
                      "cyclic wait in the communication net (structural deadlock)")
PM081 = register_rule("PM081", "net-orphan-message", Severity.WARNING,
                      "message with no matching receive in the net")
PM082 = register_rule("PM082", "net-multiplicity-mismatch", Severity.WARNING,
                      "sends on a pair do not move 100% of its declared volume")
PM083 = register_rule("PM083", "net-unreachable-transition", Severity.WARNING,
                      "scheme action unrolls to no transition at the probe binding")
PM084 = register_rule("PM084", "net-analysis-skipped", Severity.INFO,
                      "communication net could not be built")


def probe_bindings(
    pm: PerformanceModel, overrides: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Small concrete parameter values for structural unrolling.

    Int scalars probe as 4 (big enough for a non-degenerate ring/grid,
    small enough to unroll instantly), doubles as 1.0, and arrays as
    all-ones with dimensions evaluated from the earlier scalars — the
    shapes the paper's models use for counts and per-processor volumes.
    ``overrides`` replaces individual probe values and participates in
    later parameters' dimension evaluation, so overriding one scalar
    keeps dependent array shapes consistent.
    """
    overrides = overrides or {}
    interp = pm.interpreter
    values: dict[str, Any] = {}
    for p in pm.algorithm.params:
        if p.name in overrides:
            values[p.name] = overrides[p.name]
            continue
        if not p.dims:
            values[p.name] = 1.0 if p.type_name == "double" else 4
            continue
        env = Environment(values)
        dims = [interp.eval(d, env) for d in p.dims]
        if not all(isinstance(d, int) and d > 0 for d in dims):
            raise PMDLError(
                f"parameter {p.name!r}: probe dimensions {dims!r} are not "
                "positive ints"
            )
        dtype = float if p.type_name == "double" else int
        values[p.name] = np.ones(dims, dtype=dtype)
    return values


def _check_deadlock(net: CommNet) -> list[Diagnostic]:
    cycle = net.find_cycle()
    if cycle is None:
        return []
    shown = ", ".join(e.label() for e in cycle[:6])
    if len(cycle) > 6:
        shown += f", ... ({len(cycle)} transitions)"
    line = min((e.line for e in cycle if e.line), default=0)
    return [PM080.at(
        line,
        f"structural deadlock: cyclic wait through {shown} — every "
        "transition on the cycle waits for another's output",
        hint="a compute before a send on each branch of a par makes "
             "neighbours wait on each other; reorder sends first",
    )]


def _check_orphans(net: CommNet) -> list[Diagnostic]:
    out = []
    by_idx = {e.idx: e for e in net.kept}
    for send, recv in sorted(net.match_receives().items()):
        if recv is not None:
            continue
        e = by_idx[send]
        out.append(PM081.at(
            e.line,
            f"orphan message: send {e.label()} has no receive — processor "
            f"{e.b} performs no compute at or after the transfer",
            hint="the arrival can never synchronise with the receiver's "
                 "timeline; add a compute on the destination or drop the send",
        ))
    return out


def _check_multiplicity(net: CommNet, model: AbstractBoundModel) -> list[Diagnostic]:
    links = model.link_volumes()
    sends: dict[tuple[int, int], list] = {}
    for e in net.events:
        if e.is_transfer and e.a != e.b:
            sends.setdefault((e.a, e.b), []).append(e)
    out = []
    declared = {(int(s), int(d)) for s, d in zip(*np.nonzero(links))}
    for pair in sorted(declared | set(sends)):
        if links[pair] <= 0:
            continue  # zero-volume pairs are the linter's PM073
        events = sends.get(pair, [])
        pct = sum(e.percent for e in events)
        if abs(pct - 100.0) <= _TOLERANCE * 100:
            continue
        line = min((e.line for e in events if e.line), default=0)
        out.append(PM082.at(
            line,
            f"multiplicity mismatch on pair {pair[0]}->{pair[1]}: "
            f"{len(events)} send(s) moving {pct:.4f}% of the declared "
            f"volume ({links[pair]:g} bytes)",
            hint="the net's sends must move exactly 100% of each declared "
                 "pair volume",
        ))
    return out


def _check_unreachable(net: CommNet, alg: ast.Algorithm | None) -> list[Diagnostic]:
    if alg is None or alg.scheme is None:
        return []
    fired = {e.line for e in net.events if e.line}
    out = []
    for node in ast.walk(alg.scheme):
        if not isinstance(node, (ast.ComputeAction, ast.TransferAction)):
            continue
        if node.line in fired:
            continue
        kind = "transfer" if isinstance(node, ast.TransferAction) else "compute"
        out.append(PM083.at(
            node,
            f"unreachable transition: this {kind} action unrolls to no "
            "net transition at the probe binding",
            hint="its guard never holds — dead communication structure "
                 "the interval analyzer cannot refute symbolically",
        ))
    return out


def check_net(
    bound: AbstractBoundModel, algorithm: ast.Algorithm | None = None
) -> list[Diagnostic]:
    """Run every PM08x structural check on one bound model's net."""
    net = lower_model(bound)
    if len(net.events) > MAX_NET_EVENTS:
        return [PM084.at(
            0,
            f"net analysis skipped: the scheme unrolls to "
            f"{len(net.events)} events (cap {MAX_NET_EVENTS})",
        )]
    out = _check_deadlock(net)
    out += _check_orphans(net)
    out += _check_multiplicity(net, bound)
    out += _check_unreachable(net, algorithm)
    return out


def check_model_net(
    pm: PerformanceModel, bindings: dict[str, Any] | None = None
) -> list[Diagnostic]:
    """Bind (probe values unless given), lower, and check one model."""
    try:
        values = dict(bindings) if bindings else probe_bindings(pm)
        bound = pm.bind(**values)
        return check_net(bound, pm.algorithm)
    except PMDLError as exc:
        return [PM084.at(
            0, f"net analysis skipped: {exc}",
            hint="supply concrete parameters (repro net --bind) or the "
                 "scheme's external functions to enable net checks",
        )]


def check_algorithm_net(
    alg: ast.Algorithm,
    structs: dict[str, ast.StructDef],
    externals: dict[str, Callable[..., Any]] | None = None,
) -> list[Diagnostic]:
    """Net checks for ``check_source``: wrap the AST, probe-bind, check.

    Schemes calling external functions with no binding cannot be unrolled
    truthfully (a stub would fabricate coordinates); those skip with
    PM084 unless ``externals`` provides the real callables.
    """
    called = {node.name for node in ast.walk(alg) if isinstance(node, ast.Call)}
    missing = called - set(externals or {})
    if missing:
        return [PM084.at(
            0,
            "net analysis skipped: scheme calls external function(s) "
            f"{', '.join(sorted(missing))} with no binding",
            hint="pass the real callables (the --apps targets do) to "
                 "enable net checks",
        )]
    pm = PerformanceModel(alg, structs, externals)
    return check_model_net(pm)


def _bound_algorithm(bound: AbstractBoundModel) -> ast.Algorithm | None:
    """The algorithm AST behind a bound model, when there is one."""
    if isinstance(bound, BoundModel):
        return bound._pm.algorithm
    return None
