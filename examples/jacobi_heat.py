#!/usr/bin/env python3
"""Heterogeneous Jacobi heat iteration — HMPI beyond the paper's two apps.

A 2-D heat grid is decomposed into horizontal panels.  Plain MPI splits
the rows evenly; HMPI sizes each panel to its machine's measured speed and
lets `HMPI_Group_create` place the panels.  Both produce bit-identical
grids — only the time differs.

Run:  python examples/jacobi_heat.py
"""

import numpy as np

from repro.apps.jacobi import jacobi_reference, run_jacobi_hmpi, run_jacobi_mpi
from repro.cluster import PAPER_SPEEDS, paper_network
from repro.util.tables import Table


def main():
    n, p, niter, seed = 150, 6, 10, 11
    print(f"Jacobi heat iteration: {n}x{n} grid, {p} panels, {niter} sweeps")
    print("machine speeds:", list(PAPER_SPEEDS), "\n")

    ref = jacobi_reference(n, niter, seed)
    mpi = run_jacobi_mpi(paper_network(), n=n, p=p, niter=niter, seed=seed)
    hmpi = run_jacobi_hmpi(paper_network(), n=n, p=p, niter=niter, seed=seed)

    assert np.array_equal(mpi.grid, ref) and np.array_equal(hmpi.grid, ref)
    print("both parallel results are bit-identical to the serial reference\n")

    t = Table("variant", "row panels", "time (virtual s)",
              title="uniform vs speed-proportional decomposition")
    t.add("MPI", str(mpi.rows), mpi.algorithm_time)
    t.add("HMPI", str(hmpi.rows), hmpi.algorithm_time)
    print(t.render())
    print(f"\nspeedup: {mpi.algorithm_time / hmpi.algorithm_time:.2f}x  "
          f"(Timeof predicted {hmpi.predicted_time:.4f} s)")

    print("\npanel placement (panel -> machine speed):")
    for panel, world_rank in enumerate(hmpi.group_world_ranks):
        print(f"  panel {panel} ({hmpi.rows[panel]:3d} rows) -> "
              f"ws{world_rank:02d} (speed {PAPER_SPEEDS[world_rank]:g})")


if __name__ == "__main__":
    main()
