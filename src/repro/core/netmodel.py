"""The HMPI runtime's model of the executing network of computers.

The paper bases process selection on two inputs: the performance model of
the algorithm, and "the model of the executing network of computers, which
reflects the state of this network just before the execution of the
parallel algorithm".  This module is the latter: per-machine **estimated
speeds** (benchmark units per second, refreshed by ``HMPI_Recon``) plus the
communication-cost view of every machine pair (delegated to the cluster's
links, whose Hockney parameters the estimator shares with the execution
engine).

The estimated speed can diverge from the machine's true current speed —
that gap is exactly what ``HMPI_Recon`` exists to close, and what the recon
ablation benchmark measures.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..cluster.network import Cluster
from ..util.errors import HMPIError

__all__ = ["NetworkModel"]


class NetworkModel:
    """Estimated speeds + link costs for a set of placed processes.

    Parameters
    ----------
    cluster:
        The executing network.
    placement:
        machine index of every world process (the HMPI "communication
        universe"), as launched.
    initial_speeds:
        Optional starting speed estimates per machine; defaults to each
        machine's nominal base speed (what an administrator would quote),
        which may be wrong under external load until a Recon refresh.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Sequence[int],
        initial_speeds: Sequence[float] | None = None,
    ):
        self.cluster = cluster
        self.placement = list(placement)
        if initial_speeds is None:
            speeds = [m.speed for m in cluster.machines]
        else:
            speeds = list(initial_speeds)
            if len(speeds) != cluster.size:
                raise HMPIError(
                    f"initial_speeds must have one entry per machine "
                    f"({cluster.size}), got {len(speeds)}"
                )
        if any(s <= 0 for s in speeds):
            raise HMPIError("speed estimates must be positive")
        self._speeds = np.asarray(speeds, dtype=float)
        self._speed_epoch = 0
        self._dead_machines: set[int] = set()

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Number of world processes."""
        return len(self.placement)

    def machine_of(self, world_rank: int) -> int:
        """Machine index a world process runs on."""
        return self.placement[world_rank]

    # ------------------------------------------------------------------
    # speeds
    # ------------------------------------------------------------------
    @property
    def speed_epoch(self) -> int:
        """Monotonic counter bumped whenever any speed estimate changes.

        Predictions derived from this model (the runtime's selection
        cache in particular) are valid only for the epoch they were
        computed in; a ``HMPI_Recon`` refresh invalidates them by bumping
        the epoch.
        """
        return self._speed_epoch

    def speed_of_machine(self, machine_index: int) -> float:
        """Current speed estimate of a machine (benchmark units/sec)."""
        return float(self._speeds[machine_index])

    def speeds(self) -> np.ndarray:
        """Copy of all machine speed estimates."""
        return self._speeds.copy()

    def update_speed(self, machine_index: int, speed: float) -> None:
        """Install a refreshed estimate (called by ``HMPI_Recon``)."""
        if speed <= 0:
            raise HMPIError(f"speed estimate must be positive, got {speed}")
        self._speeds[machine_index] = speed
        self._speed_epoch += 1

    def update_speeds_from_benchmark(
        self, world_times: Sequence[float], volume: float
    ) -> None:
        """Refresh every machine's estimate from per-process benchmark times.

        ``world_times[r]`` is the virtual time process ``r`` took to execute
        ``volume`` benchmark units.  When several processes share a machine
        the slowest defines the estimate (conservative, and what co-running
        benchmark executions actually observe).
        """
        if len(world_times) != self.nprocs:
            raise HMPIError(
                f"expected one time per process ({self.nprocs}), "
                f"got {len(world_times)}"
            )
        per_machine: dict[int, float] = {}
        counts: dict[int, int] = {}
        for rank, elapsed in enumerate(world_times):
            if elapsed <= 0:
                raise HMPIError(f"benchmark elapsed time of process {rank} must be > 0")
            m = self.placement[rank]
            per_machine[m] = max(per_machine.get(m, 0.0), elapsed)
            counts[m] = counts.get(m, 0) + 1
        for m, elapsed in per_machine.items():
            # Co-located benchmark runs shared the machine; scale back up to
            # the full-machine speed.
            self.update_speed(m, counts[m] * volume / elapsed)

    # ------------------------------------------------------------------
    # failures (degraded mode)
    # ------------------------------------------------------------------
    def mark_machine_dead(self, machine_index: int) -> None:
        """Record a machine failure in the model of the network.

        The machine stays in the model (indices are stable) but is flagged
        dead; predictions derived before the failure are invalidated by the
        same epoch mechanism a ``HMPI_Recon`` refresh uses, so the
        selection cache can never serve a pre-failure mapping.
        """
        if not 0 <= machine_index < self.cluster.size:
            raise HMPIError(f"unknown machine index {machine_index}")
        if machine_index not in self._dead_machines:
            self._dead_machines.add(machine_index)
            self._speed_epoch += 1

    def admit_machine(self, machine_index: int) -> None:
        """Readmit a machine to the model of the network (churn "join").

        The exact counterpart of :meth:`mark_machine_dead`: the machine is
        unflagged and the speed epoch bumps, so every cached selection and
        ``HMPI_Timeof`` answer is recomputed over the widened machine set.
        Used by the runtime's administrative churn operations
        (``HMPI.admit_machine``) — a machine that *joins* the network
        mid-run, as opposed to one resurrected after a hardware death
        (which the simulator does not model).
        """
        if not 0 <= machine_index < self.cluster.size:
            raise HMPIError(f"unknown machine index {machine_index}")
        if machine_index in self._dead_machines:
            self._dead_machines.discard(machine_index)
            self._speed_epoch += 1

    def machine_dead(self, machine_index: int) -> bool:
        """Whether a machine has been marked failed."""
        return machine_index in self._dead_machines

    @property
    def dead_machines(self) -> frozenset[int]:
        """Indices of machines marked failed."""
        return frozenset(self._dead_machines)

    @property
    def degraded(self) -> bool:
        """Whether the model reflects at least one machine failure."""
        return bool(self._dead_machines)

    def alive_world_ranks(self) -> list[int]:
        """World ranks placed on machines not marked dead."""
        return [r for r, m in enumerate(self.placement)
                if m not in self._dead_machines]

    # ------------------------------------------------------------------
    # communication costs
    # ------------------------------------------------------------------
    def transfer_time(self, machine_src: int, machine_dst: int, nbytes: float) -> float:
        """Predicted seconds to move ``nbytes`` between two machines.

        Delegates to the cluster's link for the pair.  When the cluster
        carries a :class:`~repro.cluster.topology.Topology`, that link is
        derived from the deepest topology level spanning both machines —
        two machines in one subnet cost the switch's protocol, machines in
        different sites cost the wide-area level — so estimator and
        execution engine see identical hierarchical costs.
        """
        return self.cluster.link(machine_src, machine_dst).transfer_time(int(round(nbytes)))

    def latency(self, machine_src: int, machine_dst: int) -> float:
        """Per-message CPU/network latency for the pair (topology-derived
        when the cluster has one, like :meth:`transfer_time`)."""
        return self.cluster.link(machine_src, machine_dst).effective_latency()

    def machine_distance(self, machine_src: int, machine_dst: int) -> int:
        """Topology-tree hop distance between two machines.

        0 for the same machine; without a topology every distinct pair is
        1 (flat mesh).  With one, the number of tree edges on the path
        through the deepest common ancestor — mappers use it as a locality
        measure (smaller = more co-located).
        """
        return self.cluster.machine_distance(machine_src, machine_dst)

    def __repr__(self) -> str:
        speeds = ", ".join(f"{s:g}" for s in self._speeds)
        dead = f", dead={sorted(self._dead_machines)}" if self._dead_machines else ""
        return f"NetworkModel(speeds=[{speeds}], nprocs={self.nprocs}{dead})"
