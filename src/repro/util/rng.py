"""Deterministic random-number helpers.

Everything stochastic in the reproduction — workload generation, external
load models, fault schedules — draws from a :class:`numpy.random.Generator`
seeded explicitly, so every experiment in EXPERIMENTS.md is re-runnable
bit-for-bit.  ``Date``/wall-clock seeding is deliberately unsupported.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rng", "DEFAULT_SEED"]

DEFAULT_SEED = 20030422  # IPPS 2003, Nice, France — April 22-26.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed`` (default fixed seed)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` identified by ``key``.

    Used to give each machine / each workload component its own stream so
    that adding one component does not perturb the draws of the others.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (key * 0x9E3779B97F4A7C15 % 2**63)
    return np.random.default_rng(seed)
