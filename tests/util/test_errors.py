"""Exception hierarchy contracts."""

import pytest

from repro.util.errors import (
    ClusterError,
    DeadlockError,
    HMPIError,
    HMPIStateError,
    MachineFailure,
    MappingError,
    MPICommError,
    MPIError,
    MPIGroupError,
    MPITruncationError,
    PMDLError,
    PMDLRuntimeError,
    PMDLSemanticError,
    PMDLSyntaxError,
    ReproError,
)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (
            ClusterError, MPIError, MPICommError, MPIGroupError,
            MPITruncationError, DeadlockError, PMDLError, PMDLSyntaxError,
            PMDLSemanticError, PMDLRuntimeError, HMPIError, HMPIStateError,
            MappingError,
        ):
            assert issubclass(exc, ReproError)

    def test_mpi_family(self):
        for exc in (MPICommError, MPIGroupError, MPITruncationError, DeadlockError):
            assert issubclass(exc, MPIError)

    def test_pmdl_family(self):
        for exc in (PMDLSyntaxError, PMDLSemanticError, PMDLRuntimeError):
            assert issubclass(exc, PMDLError)

    def test_hmpi_family(self):
        assert issubclass(HMPIStateError, HMPIError)
        assert issubclass(MappingError, HMPIError)

    def test_machine_failure_is_mpi_error(self):
        assert issubclass(MachineFailure, MPIError)


class TestMachineFailure:
    def test_carries_machine_and_time(self):
        mf = MachineFailure("ws03", 1.25)
        assert mf.machine == "ws03"
        assert mf.vtime == 1.25
        assert "ws03" in str(mf)
        assert "1.25" in str(mf)


class TestPMDLSyntaxError:
    def test_carries_position(self):
        err = PMDLSyntaxError("unexpected token", line=3, column=14)
        assert err.line == 3
        assert err.column == 14
        assert "line 3" in str(err)

    def test_catchable_as_pmdl_error(self):
        with pytest.raises(PMDLError):
            raise PMDLSyntaxError("boom", 1, 1)
