"""Thin stdlib client for the HMPI job server.

::

    from repro.hmpi import connect

    client = connect("http://127.0.0.1:8080", tenant="team-a")
    t = client.timeof(MODEL_SOURCE, params={"p": 4, ...}, cluster="paper")
    group = client.group_create(MODEL_SOURCE, params=..., cluster="paper")

Every helper is a thin wrapper over :meth:`ServeClient.submit`; the
server's JSON floats round-trip through ``repr`` so a served prediction
compares bitwise-equal to the in-process call.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from .protocol import DEFAULT_TENANT, ServeError

__all__ = ["ServeClient", "ServeHTTPError", "connect"]


class ServeHTTPError(ServeError):
    """A non-2xx server response, carrying status and decoded payload."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")


class ServeClient:
    """Synchronous client over ``urllib`` (no dependencies).

    ``tenant`` stamps every submitted job for quota accounting;
    ``timeout`` is the socket timeout of each HTTP call (distinct from
    the protocol's ``wait``/``timeout`` job fields).
    """

    def __init__(self, url: str, *, tenant: str = DEFAULT_TENANT,
                 timeout: float = 60.0):
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- low-level -----------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None) -> Any:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return self._decode(resp.read(), resp.headers.get_content_type())
        except urllib.error.HTTPError as exc:
            payload = self._decode(exc.read(),
                                   exc.headers.get_content_type()
                                   if exc.headers else "text/plain")
            raise ServeHTTPError(exc.code, payload) from None

    @staticmethod
    def _decode(raw: bytes, ctype: str) -> Any:
        text = raw.decode("utf-8")
        if ctype == "application/json":
            return json.loads(text)
        return text

    # -- jobs ----------------------------------------------------------
    def submit(self, request: dict, *, wait: float | None = None) -> dict:
        """POST one job; returns the server's response document."""
        body = {"tenant": self.tenant, **request}
        if wait is not None:
            body["wait"] = wait
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> dict:
        """Poll a job's status/result."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; raises on client-side expiry."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] not in ("queued", "running"):
                return doc
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {doc['status']} after {timeout}s")
            time.sleep(poll)

    def trace(self, job_id: str) -> dict:
        """Chrome-trace document of a finished selection job."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    # -- op helpers ----------------------------------------------------
    def _run_op(self, request: dict) -> dict:
        doc = self.submit(request)
        if doc.get("status") != "done":
            raise ServeError(
                f"job {doc.get('id')} finished {doc.get('status')!r}: "
                f"{doc.get('error')}")
        return doc["result"]

    def timeof(self, model: str, *, params: Any = None, cluster: Any,
               **options: Any) -> float:
        """Served ``HMPI_Timeof``: the predicted time, bitwise-equal to
        the in-process call."""
        result = self._run_op({"op": "timeof", "model": model,
                               "params": params, "cluster": cluster,
                               **options})
        return result["predicted_time"]

    def group_create(self, model: str, *, params: Any = None, cluster: Any,
                     **options: Any) -> dict:
        """Served ``HMPI_Group_create``: the selected mapping."""
        result = self._run_op({"op": "group_create", "model": model,
                               "params": params, "cluster": cluster,
                               **options})
        return result["mapping"]

    def check(self, model: str, *, net: bool = False,
              strict: bool = False, **options: Any) -> dict:
        """Served ``repro check``: the diagnostic report document."""
        return self._run_op({"op": "check", "model": model,
                             "net": net, "strict": strict, **options})

    # -- ops surface ---------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")


def connect(url: str, *, tenant: str = DEFAULT_TENANT,
            timeout: float = 60.0) -> ServeClient:
    """Open a client for a running ``repro serve`` endpoint."""
    return ServeClient(url, tenant=tenant, timeout=timeout)
