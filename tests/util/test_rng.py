"""Deterministic RNG helpers."""

from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rng


class TestMakeRng:
    def test_default_seed_reproducible(self):
        a = make_rng().random(5)
        b = make_rng().random(5)
        assert (a == b).all()

    def test_explicit_seed(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        c = make_rng(8).random(5)
        assert (a == b).all()
        assert not (a == c).all()

    def test_default_seed_constant(self):
        assert DEFAULT_SEED == 20030422


class TestSpawnRng:
    def test_children_differ_by_key(self):
        parent1 = make_rng(1)
        parent2 = make_rng(1)
        c1 = spawn_rng(parent1, 0).random(4)
        c2 = spawn_rng(parent2, 1).random(4)
        assert not (c1 == c2).all()

    def test_same_key_same_stream(self):
        c1 = spawn_rng(make_rng(1), 5).random(4)
        c2 = spawn_rng(make_rng(1), 5).random(4)
        assert (c1 == c2).all()
