"""Property tests: campaign results are a pure function of config + seed.

The harness's whole value is that a (config, seed) pair names one exact
set of results — across reruns, across simulation engines, and
regardless of cosmetic config layout.  Hypothesis searches for configs
that break that.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignConfig, derive_seed, run_campaign

slow = settings(max_examples=5, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def jsonl_of(raw):
    return run_campaign(CampaignConfig(raw)).jsonl()


# Cheap selection-only campaigns: every axis combination is valid.
timeof_configs = st.fixed_dictionaries({
    "name": st.just("prop"),
    "app": st.just("timeof_em3d"),
    "seed": st.integers(0, 2**31 - 1),
    "fixed": st.fixed_dictionaries({
        "total_nodes": st.sampled_from([300, 600]),
        "boundary_fraction": st.sampled_from([0.2, 0.4]),
    }),
    "axes": st.fixed_dictionaries({
        "mapper": st.permutations(["greedy", "default"]),
        "p": st.lists(st.sampled_from([3, 4]), min_size=1, max_size=2,
                      unique=True),
    }),
})


class TestBitwiseDeterminism:
    @slow
    @given(timeof_configs)
    def test_same_config_and_seed_rerun_is_bitwise_identical(self, raw):
        assert jsonl_of(raw) == jsonl_of(raw)

    @slow
    @given(policy=st.sampled_from(["never", "periodic"]),
           niter=st.sampled_from([8, 12]),
           seed=st.integers(0, 2**31 - 1))
    def test_events_and_threads_engines_agree_bitwise(
            self, policy, niter, seed):
        # engine is an execution axis: it chooses how to simulate, never
        # what happens — so the JSONL must match byte for byte.
        def raw(engine):
            return {
                "name": "prop", "app": "iterative", "seed": seed,
                "fixed": {
                    "cluster": {"kind": "uniform", "speeds": [100.0] * 4},
                    "n": 16, "niter": niter, "p": 3, "chunk": 4,
                    "engine": engine,
                    "churn": [{"t": 0.01, "op": "leave", "machine": 3},
                              {"t": 0.03, "op": "join", "machine": 3}],
                },
                "axes": {"policy": [policy]},
            }

        assert jsonl_of(raw("events")) == jsonl_of(raw("threads"))


scenario_values = st.one_of(
    st.integers(0, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(string.ascii_lowercase, max_size=8),
    st.booleans(),
    st.none(),
)
scenarios = st.dictionaries(
    st.text(string.ascii_lowercase, min_size=1, max_size=8),
    scenario_values, min_size=1, max_size=6)


class TestSeedDerivation:
    @given(seed=st.integers(0, 2**31 - 1), scenario=scenarios,
           data=st.data())
    def test_key_order_never_changes_the_seed(self, seed, scenario, data):
        # Axis declaration order, JSON key order, fixed-vs-axis layout:
        # all cosmetic.  Only the scenario's *content* may matter.
        items = data.draw(st.permutations(sorted(scenario.items(),
                                                 key=repr)))
        assert derive_seed(seed, dict(items)) == derive_seed(seed, scenario)

    @given(seed=st.integers(0, 2**31 - 1), scenario=scenarios,
           key=st.text(string.ascii_lowercase, min_size=1, max_size=8),
           value=scenario_values)
    def test_content_change_changes_the_seed(self, seed, scenario, key,
                                             value):
        changed = dict(scenario)
        changed[key] = value
        if changed == scenario:
            return
        assert derive_seed(seed, changed) != derive_seed(seed, scenario)
