"""EventBus: ring, sink, subscribers, sampling, stats, schema guard."""

import io
import json

import pytest

from repro.obs import EventBus, TELEMETRY_SCHEMA_VERSION, TelemetryEvent


def fixed_clock():
    t = [100.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


class TestTelemetryEvent:
    def test_to_dict_flattens_payload_under_envelope(self):
        event = TelemetryEvent(7, "fault", "rank.dead", 42.5,
                               {"rank": 3, "vtime": 9.0})
        d = event.to_dict()
        assert d == {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "seq": 7,
            "category": "fault",
            "name": "rank.dead",
            "wall": 42.5,
            "rank": 3,
            "vtime": 9.0,
        }

    def test_to_json_is_compact_sorted_and_parseable(self):
        event = TelemetryEvent(1, "c", "n", 0.0, {"z": 1, "a": 2})
        line = event.to_json()
        assert " " not in line
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)
        assert parsed["a"] == 2

    def test_to_json_stringifies_non_json_payload(self):
        event = TelemetryEvent(1, "c", "n", 0.0, {"obj": object()})
        assert "object object" in json.loads(event.to_json())["obj"]


class TestEmit:
    def test_emit_returns_event_with_monotonic_seq(self):
        bus = EventBus(clock=fixed_clock())
        e1 = bus.emit("engine", "run.start", nprocs=4)
        e2 = bus.emit("engine", "run.finish")
        assert (e1.seq, e2.seq) == (1, 2)
        assert e1.payload == {"nprocs": 4}
        assert e2.wall == e1.wall + 1.0

    def test_reserved_payload_keys_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="shadow event envelope"):
            bus.emit("campaign", "start", name="oops")
        with pytest.raises(ValueError, match="shadow event envelope"):
            bus.emit("campaign", "start", seq=1, wall=2.0)

    def test_ring_keeps_newest_and_counts_dropped(self):
        bus = EventBus(capacity=3)
        for i in range(5):
            bus.emit("c", f"e{i}")
        assert [e.name for e in bus.tail()] == ["e2", "e3", "e4"]
        assert bus.dropped == 2
        assert bus.emitted == 5
        assert len(bus) == 3

    def test_tail_n_returns_newest_oldest_first(self):
        bus = EventBus()
        for i in range(4):
            bus.emit("c", f"e{i}")
        assert [e.name for e in bus.tail(2)] == ["e2", "e3"]
        assert bus.tail(0) == []
        assert len(bus.tail(99)) == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            EventBus(capacity=0)


class TestSampling:
    def test_keeps_first_of_every_n(self):
        bus = EventBus(sample={"selection": 3})
        kept = [bus.emit("selection", "cache.hit") for _ in range(7)]
        assert [e is not None for e in kept] == [
            True, False, False, True, False, False, True]
        assert bus.sampled_out == 4
        assert bus.emitted == 3

    def test_sampled_out_events_consume_no_seq(self):
        bus = EventBus(sample={"noisy": 2})
        bus.emit("noisy", "a")      # kept, seq 1
        bus.emit("noisy", "b")      # sampled out
        event = bus.emit("quiet", "c")
        assert event.seq == 2

    def test_unlisted_categories_never_sampled(self):
        bus = EventBus(sample={"noisy": 10})
        assert all(bus.emit("other", "e") is not None for _ in range(5))

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError, match="sample rate"):
            EventBus(sample={"c": 0})
        with pytest.raises(ValueError, match="sample rate"):
            EventBus(sample={"c": 1.5})


class TestSinkAndSubscribers:
    def test_sink_receives_one_json_line_per_event(self):
        sink = io.StringIO()
        bus = EventBus(sink=sink, clock=fixed_clock())
        bus.emit("a", "x", k=1)
        bus.emit("b", "y")
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["k"] == 1
        assert json.loads(lines[1])["category"] == "b"

    def test_path_sink_is_owned_appended_and_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(sink=str(path)) as bus:
            bus.emit("a", "first")
        with EventBus(sink=str(path)) as bus:
            bus.emit("a", "second")
        names = [json.loads(l)["name"] for l in path.read_text().splitlines()]
        assert names == ["first", "second"]

    def test_close_leaves_caller_owned_streams_open(self):
        sink = io.StringIO()
        bus = EventBus(sink=sink)
        bus.emit("a", "x")
        bus.close()
        assert not sink.closed

    def test_subscribers_see_events_and_can_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a", "one")
        bus.unsubscribe(seen.append)
        bus.emit("a", "two")
        assert [e.name for e in seen] == ["one"]

    def test_raising_subscriber_is_counted_not_propagated(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("boom")

        seen = []
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        event = bus.emit("a", "x")
        assert event is not None
        assert bus.subscriber_errors == 1
        assert len(seen) == 1  # later subscribers still run


class TestStats:
    def test_stats_summarizes_counters(self):
        bus = EventBus(capacity=2, sample={"noisy": 2})
        for _ in range(3):
            bus.emit("noisy", "n")
        for _ in range(3):
            bus.emit("quiet", "q")
        stats = bus.stats()
        assert stats["schema"] == TELEMETRY_SCHEMA_VERSION
        assert stats["emitted"] == 5
        assert stats["sampled_out"] == 1
        assert stats["dropped"] == 3
        assert stats["retained"] == 2
        assert stats["subscriber_errors"] == 0
