"""Job bookkeeping: states, the store, and per-tenant quotas.

Jobs live in the server process only — workers see request dicts, never
:class:`Job` objects.  The store enforces the degradation contract:

- a tenant over its in-flight quota is **rejected with 429** at submit
  time (the job is recorded with status ``rejected`` so the tenant can
  see why, but it never reaches the queue);
- the global queue cap protects every tenant from one flooding tenant:
  when the whole server is saturated, submits 429 regardless of tenant;
- a job that exceeds its execution budget finishes as ``timeout`` and
  the waiting POST (if any) degrades to 504 — the job id stays pollable,
  and a late worker result for a timed-out job is discarded.

Finished jobs are retained (bounded, LRU-evicted) so ``GET /v1/jobs/<id>``
works after completion.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from .protocol import JobRequest, NotFound, QuotaExceeded

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Lifecycle: queued → running → {done, error, timeout}; ``rejected``
#: is terminal at submit time (quota).
JOB_STATES = ("queued", "running", "done", "error", "timeout", "rejected")

_TERMINAL = frozenset({"done", "error", "timeout", "rejected"})


@dataclass
class Job:
    """One submitted request and its lifecycle."""

    id: str
    request: JobRequest
    status: str = "queued"
    result: Any = None
    error: str | None = None
    status_code: int = 200
    submitted: float = field(default_factory=time.monotonic)
    finished_at: float | None = None
    trace: dict | None = None
    done_event: Any = None  # asyncio.Event, attached by the server loop

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    @property
    def tenant(self) -> str:
        return self.request.tenant

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": self.id,
            "op": self.request.op,
            "tenant": self.tenant,
            "status": self.status,
        }
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        if self.finished_at is not None:
            doc["elapsed_seconds"] = round(
                self.finished_at - self.submitted, 6)
        return doc


class JobStore:
    """Thread-safe registry of jobs with quota accounting."""

    def __init__(self, *, max_inflight_per_tenant: int = 64,
                 max_inflight_total: int = 1024,
                 retain_finished: int = 4096):
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.max_inflight_total = max_inflight_total
        self.retain_finished = retain_finished
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._inflight: dict[str, int] = {}
        self._inflight_total = 0
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.submitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Admit a request, or raise :class:`QuotaExceeded` (429)."""
        with self._lock:
            job = Job(id=f"j{next(self._ids):08d}", request=request)
            tenant = request.tenant
            if self._inflight_total >= self.max_inflight_total:
                self.rejected += 1
                job.status = "rejected"
                job.status_code = 429
                job.error = (f"server saturated: {self._inflight_total} "
                             "jobs in flight")
                self._remember(job)
                raise QuotaExceeded(job.error)
            if self._inflight.get(tenant, 0) >= self.max_inflight_per_tenant:
                self.rejected += 1
                job.status = "rejected"
                job.status_code = 429
                job.error = (f"tenant {tenant!r} quota exceeded: "
                             f"{self.max_inflight_per_tenant} jobs in flight")
                self._remember(job)
                raise QuotaExceeded(job.error)
            self.submitted += 1
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
            self._inflight_total += 1
            self._remember(job)
            return job

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.retain_finished:
            # Evict the oldest *terminal* job; never drop a live one.
            for jid, j in self._jobs.items():
                if j.terminal:
                    del self._jobs[jid]
                    break
            else:
                break

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise NotFound(f"no such job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    def mark_running(self, job: Job) -> None:
        with self._lock:
            if job.status == "queued":
                job.status = "running"

    def finish(self, job: Job, *, status: str, result: Any = None,
               error: str | None = None, status_code: int = 200) -> bool:
        """Finalise a job; False when it already reached a terminal state
        (e.g. a worker result arriving after the job timed out)."""
        with self._lock:
            if job.terminal:
                return False
            job.status = status
            job.result = result
            job.error = error
            job.status_code = status_code
            job.finished_at = time.monotonic()
            tenant = job.tenant
            remaining = self._inflight.get(tenant, 1) - 1
            if remaining > 0:
                self._inflight[tenant] = remaining
            else:
                self._inflight.pop(tenant, None)
            self._inflight_total -= 1
        if job.done_event is not None:
            job.done_event.set()
        return True

    # ------------------------------------------------------------------
    def inflight(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                return self._inflight_total
            return self._inflight.get(tenant, 0)

    def counts(self) -> dict[str, int]:
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "inflight": self._inflight_total,
                **{f"status_{k}": v for k, v in sorted(by_status.items())},
            }
