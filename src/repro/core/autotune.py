"""Automatic selection of the *number* of processes (HeteroMPI direction).

The paper's ``HMPI_Group_create`` optimises *which* processes execute an
algorithm for a fixed process count; its Figure 8 program already shows
the companion pattern — sweeping an algorithm parameter with
``HMPI_Timeof``.  The follow-on HeteroMPI work generalised this into
automatic group sizing (``HMPI_Group_auto_create``): sometimes fewer
processes are faster (communication dominates) and sometimes more are
(computation dominates), and the runtime can find out by prediction alone.

This module provides that extension: given a *model family* — a function
``p -> AbstractBoundModel`` describing the same algorithm run with ``p``
processes — :func:`tune_group_size` evaluates the predicted execution
time of the best group for every feasible ``p`` and returns the winner;
:meth:`HMPI.group_auto_create`-style usage is wrapped by
:func:`auto_create`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..perfmodel.model import AbstractBoundModel
from ..util.errors import MappingError
from .mapper import Mapper, Mapping
from .runtime import HMPI, HOST_RANK

__all__ = ["SizeSweepResult", "tune_group_size", "auto_create"]

ModelFamily = Callable[[int], AbstractBoundModel]


@dataclass
class SizeSweepResult:
    """Outcome of a group-size sweep."""

    best_p: int
    best_model: AbstractBoundModel
    best_mapping: Mapping
    predictions: dict[int, float]  # p -> predicted time

    @property
    def best_time(self) -> float:
        return self.predictions[self.best_p]


def tune_group_size(
    hmpi: HMPI,
    family: ModelFamily,
    sizes: Iterable[int],
    mapper: "Mapper | str | None" = None,
) -> SizeSweepResult:
    """Predict the best process count for an algorithm family.

    Local operation (like ``HMPI_Timeof``): for each candidate ``p`` the
    model is built, the selection problem solved against the current
    network model, and the predicted time recorded.  Candidates larger
    than the available process pool are skipped; if none fit, raises.
    ``mapper`` may be an instance or a registry string.
    """
    available = len(hmpi.state.participants())
    predictions: dict[int, float] = {}
    best: tuple[int, AbstractBoundModel, Mapping] | None = None
    for p in sizes:
        if p < 1 or p > available:
            continue
        model = family(p)
        if model.nproc != p:
            raise MappingError(
                f"model family returned nproc={model.nproc} for p={p}"
            )
        mapping = hmpi._select(model, mapper)
        predictions[p] = mapping.time
        if best is None or mapping.time < best[2].time:
            best = (p, model, mapping)
    if best is None:
        raise MappingError(
            f"no candidate size fits the available {available} processes"
        )
    return SizeSweepResult(
        best_p=best[0], best_model=best[1], best_mapping=best[2],
        predictions=predictions,
    )


def auto_create(
    hmpi: HMPI,
    family: ModelFamily,
    sizes: Iterable[int],
    mapper: "Mapper | str | None" = None,
):
    """Collective: size sweep on the host, then ``group_create`` the winner.

    Must be called by **every** world process with the same ``family`` and
    ``sizes`` (the winning size travels over a world broadcast), i.e. at a
    point where no other HMPI group is active — the situation of both
    paper programs.  Returns ``(group, best_p)``.
    """
    sizes = list(sizes)
    if hmpi.is_host():
        sweep = tune_group_size(hmpi, family, sizes, mapper)
        best_p = sweep.best_p
    else:
        best_p = None
    best_p = hmpi.comm_world.bcast(best_p, root=HOST_RANK)
    group = hmpi.group_create(family(best_p), mapper)
    return group, best_p
