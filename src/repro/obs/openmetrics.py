"""OpenMetrics/Prometheus text exposition for metrics snapshots.

:func:`render_openmetrics` turns any :class:`MetricsRegistry` snapshot —
the live registry, an :class:`~repro.obs.core.Observability` bundle, or
a previously saved snapshot dict — into the text format scraped by
Prometheus and friends:

- counters get the ``_total`` suffix and a ``# TYPE ... counter`` header;
- gauges carry their last-set **virtual time** as an exemplar-style
  annotation (``# {vtime="2.5"} 2.5``) — the one thing a wall-clock
  scraper cannot know about a simulated run;
- histograms expand into cumulative ``_bucket{le="..."}`` series (with
  the implicit ``+Inf`` bucket) plus ``_sum`` and ``_count``;
- dotted registry names (``hmpi.selection.cache_hits``) become legal
  metric names (``hmpi_selection_cache_hits``);
- the document ends with ``# EOF`` per the OpenMetrics spec.

:func:`parse_openmetrics` is the matching format check: a small strict
parser used by tests and the CI ``monitor-smoke`` job to prove the
endpoint's output round-trips (raises :class:`ValueError` on malformed
text, returns ``{family: {"type": ..., "samples": [...]}}``).
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = ["render_openmetrics", "parse_openmetrics"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?P<rest>.*)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _sanitize(name: str) -> str:
    """Dotted registry names -> legal OpenMetrics metric names."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels: dict[str, Any], extra: dict[str, str] | None = None) -> str:
    pairs = [(_sanitize(k), _escape(v)) for k, v in sorted(labels.items())]
    if extra:
        pairs += sorted(extra.items())
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _fmt(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def render_openmetrics(source: Any) -> str:
    """Render a snapshot source to OpenMetrics text.

    ``source`` may be a :class:`MetricsRegistry`, an ``Observability``
    bundle, or a snapshot dict (anything with a ``snapshot()`` method or
    a ``"metrics"`` key).
    """
    if hasattr(source, "snapshot"):
        snap = source.snapshot()
    else:
        snap = source
    if not isinstance(snap, dict) or "metrics" not in snap:
        raise TypeError(
            "render_openmetrics needs a MetricsRegistry/Observability or "
            f"a snapshot dict with a 'metrics' key, got {type(source).__name__}")

    lines: list[str] = []
    typed: set[str] = set()

    def head(family: str, om_type: str, help_text: str) -> None:
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {om_type}")
            lines.append(f"# HELP {family} {help_text}")

    vtime = snap.get("vtime") or {}
    for edge in ("min", "max"):
        if vtime.get(edge) is not None:
            family = f"repro_vtime_{edge}"
            head(family, "gauge",
                 f"{edge} virtual time observed by the metrics registry.")
            lines.append(f"{family} {_fmt(vtime[edge])}")

    for series in snap["metrics"]:
        family = _sanitize(series["name"])
        labels = series.get("labels", {})
        kind = series["type"]
        if kind == "counter":
            head(family, "counter", f"registry counter {series['name']}.")
            lines.append(
                f"{family}_total{_labels_text(labels)} "
                f"{_fmt(series['value'])}")
        elif kind == "gauge":
            head(family, "gauge", f"registry gauge {series['name']}.")
            line = (f"{family}{_labels_text(labels)} "
                    f"{_fmt(series['value'])}")
            if series.get("vtime") is not None:
                # Exemplar-style annotation carrying the virtual time of
                # the last set — host scrapers see *when in the simulated
                # run* the value was current.
                line += (f' # {{vtime="{_fmt(series["vtime"])}"}} '
                         f"{_fmt(series['vtime'])}")
            lines.append(line)
        elif kind == "histogram":
            head(family, "histogram", f"registry histogram {series['name']}.")
            buckets = series.get("buckets")
            if buckets is None:
                raise ValueError(
                    f"histogram {series['name']!r} snapshot has no "
                    f"'buckets' field (snapshot predates schema v1?)")
            for bound, cum in buckets:
                lines.append(
                    f"{family}_bucket"
                    f"{_labels_text(labels, {'le': _fmt(bound)})} {int(cum)}")
            lines.append(
                f"{family}_bucket{_labels_text(labels, {'le': '+Inf'})} "
                f"{int(series['count'])}")
            lines.append(
                f"{family}_sum{_labels_text(labels)} {_fmt(series['sum'])}")
            lines.append(
                f"{family}_count{_labels_text(labels)} "
                f"{int(series['count'])}")
        else:
            raise ValueError(f"unknown series type {kind!r} "
                             f"for {series['name']!r}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Strict-enough parser for the exposition this module renders.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``.
    Raises :class:`ValueError` on structural problems: missing ``# EOF``,
    samples without a ``# TYPE`` header, unparsable lines, histogram
    bucket counts that are not monotonically non-decreasing.
    """
    families: dict[str, dict[str, Any]] = {}
    body = text.split("\n")
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    stripped = [ln for ln in body if ln]
    if not stripped or stripped[-1] != "# EOF":
        raise ValueError("exposition must terminate with '# EOF'")
    for lineno, line in enumerate(body, 1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            _, _, family, om_type = parts
            if om_type not in ("counter", "gauge", "histogram",
                               "summary", "unknown", "info"):
                raise ValueError(
                    f"line {lineno}: unknown metric type {om_type!r}")
            families.setdefault(family, {"type": om_type, "samples": []})
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        m = _SAMPLE_LINE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: unparsable sample: {line!r}")
        name = m.group("name")
        family = next(
            (name[: len(name) - len(sfx)]
             for sfx in ("_total", "_bucket", "_sum", "_count")
             if name.endswith(sfx)
             and name[: len(name) - len(sfx)] in families),
            name,
        )
        if family not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE header")
        raw = m.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {raw!r}") from None
        labels: dict[str, str] = {}
        if m.group("labels"):
            pairs = _LABEL_PAIR.findall(m.group("labels"))
            leftover = _LABEL_PAIR.sub("", m.group("labels")).replace(",", "")
            if not pairs or leftover.strip():
                raise ValueError(
                    f"line {lineno}: malformed label set: {line!r}")
            for k, v in pairs:
                labels[k] = v.replace('\\"', '"').replace("\\n", "\n") \
                             .replace("\\\\", "\\")
        rest = m.group("rest").strip()
        if rest and not rest.startswith("#"):
            raise ValueError(
                f"line {lineno}: trailing garbage after value: {rest!r}")
        families[family]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        by_series: dict[tuple, list[tuple[float, float]]] = {}
        for name, labels, value in data["samples"]:
            if not name.endswith("_bucket") or "le" not in labels:
                continue
            bound = (math.inf if labels["le"] == "+Inf"
                     else float(labels["le"]))
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            by_series.setdefault(key, []).append((bound, value))
        for key, buckets in by_series.items():
            cums = [cum for _, cum in sorted(buckets)]
            if cums != sorted(cums):
                raise ValueError(
                    f"histogram {family!r}{dict(key)}: cumulative bucket "
                    f"counts decrease")
    return families
