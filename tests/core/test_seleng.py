"""The compiled selection engine: cache semantics, stats, symmetry bounds."""

import numpy as np
import pytest

from repro.cluster import homogeneous_network, paper_network
from repro.core.mapper import ExhaustiveMapper, GreedyMapper
from repro.core.netmodel import NetworkModel
from repro.core.runtime import HMPIRuntimeState, run_hmpi
from repro.core.seleng import (
    SelectionStats,
    compile_trace,
    evaluate_mapping,
    evaluate_mappings,
)
from repro.perfmodel.builder import MatrixModel
from repro.util.errors import MappingError


def make_model(nproc=3, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    node = rng.uniform(10.0, 100.0, size=nproc) * scale
    links = rng.uniform(1e3, 1e5, size=(nproc, nproc))
    np.fill_diagonal(links, 0.0)
    return MatrixModel(node, links)


def make_state(cluster=None):
    cluster = cluster or paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    return HMPIRuntimeState(netmodel)


class TestCompiledTrace:
    def test_compile_is_cached_on_model(self):
        model = make_model()
        assert compile_trace(model) is compile_trace(model)

    def test_zero_and_self_transfers_dropped(self):
        links = np.zeros((3, 3))
        links[0, 1] = 4096.0

        def scheme(v):
            v.transfer(100.0, 0, 1)   # real
            v.transfer(100.0, 1, 2)   # zero bytes
            v.transfer(100.0, 2, 2)   # self
            v.compute(100.0, 0)

        model = MatrixModel(np.ones(3), links, scheme=scheme)
        ct = compile_trace(model)
        assert ct.npairs == 1
        assert ct.nevents == 2  # one transfer + one compute


class TestSelectionStats:
    def test_counters_and_reset(self):
        stats = SelectionStats()
        model = make_model()
        state = make_state()
        evaluate_mappings(model, state.netmodel, [(0, 1, 2), (3, 4, 5)], stats)
        assert stats.evaluations == 2
        assert stats.batches == 1
        stats.reset()
        assert stats.as_dict() == {
            "cache_hits": 0, "cache_misses": 0, "evaluations": 0,
            "batches": 0, "symmetry_skips": 0,
        }

    def test_mapper_select_reports_evaluations(self):
        state = make_state()
        stats = SelectionStats()
        GreedyMapper().select(
            make_model(), state.netmodel,
            list(range(state.netmodel.nprocs)), {0: 0}, stats=stats,
        )
        assert stats.evaluations >= 1


class TestSelectionCache:
    def test_repeat_select_hits_cache(self):
        state = make_state()
        model = make_model()
        first = state.select(model)
        again = state.select(model)
        assert again is first
        assert state.selection_stats.cache_hits == 1
        assert state.selection_stats.cache_misses == 1

    def test_speed_update_invalidates(self):
        state = make_state()
        model = make_model()
        before = state.select(model)
        # Slow the busiest machine far down: stale prediction would be wrong.
        for m in set(before.machines):
            state.netmodel.update_speed(m, 1.0)
        after = state.select(model)
        assert state.selection_stats.cache_misses == 2
        assert after.time != pytest.approx(before.time)
        assert after.time == pytest.approx(
            evaluate_mapping(model, state.netmodel, after.machines)
        )

    def test_explicit_invalidation(self):
        state = make_state()
        model = make_model()
        state.select(model)
        state.invalidate_selections()
        state.select(model)
        assert state.selection_stats.cache_hits == 0
        assert state.selection_stats.cache_misses == 2

    def test_string_spec_shares_cache_entry(self):
        """Registry strings resolve to a stable identity, so they cache."""
        state = make_state()
        model = make_model()
        state.select(model, "greedy")
        state.select(model, "greedy")
        assert state.selection_stats.cache_hits == 1

    def test_distinct_instances_do_not_share(self):
        state = make_state()
        model = make_model()
        state.select(model, GreedyMapper())
        state.select(model, GreedyMapper())
        assert state.selection_stats.cache_hits == 0
        assert state.selection_stats.cache_misses == 2

    def test_lru_bound(self):
        state = make_state()
        models = [make_model(seed=i) for i in range(state.SELECTION_CACHE_SIZE + 6)]
        for m in models:
            state.select(m, "greedy")
        assert len(state._selection_cache) <= state.SELECTION_CACHE_SIZE
        # The oldest entry was evicted: selecting it again is a miss.
        misses = state.selection_stats.cache_misses
        state.select(models[0], "greedy")
        assert state.selection_stats.cache_misses == misses + 1


class TestCacheAcrossRecon:
    def test_recon_refreshes_predictions(self, paper_cluster):
        """timeof answers from cache until recon bumps the speed epoch."""
        model = make_model(nproc=3, seed=3)

        def main(hmpi):
            if hmpi.is_host():
                t1 = hmpi.timeof(model)
                t2 = hmpi.timeof(model)
            hmpi.recon(volume=2.0)  # collective over the world
            if not hmpi.is_host():
                return None
            t3 = hmpi.timeof(model)
            s = hmpi.selection_stats
            return t1, t2, t3, s.cache_hits, s.cache_misses

        # Deliberately wrong initial speeds: recon measures the real ones,
        # so the post-recon prediction must differ.
        wrong = [s * 3.0 for s in paper_cluster.speeds()]
        res = run_hmpi(main, paper_cluster, initial_speeds=wrong)
        t1, t2, t3, hits, misses = res.results[0]
        assert t2 == t1          # served from cache
        assert hits == 1
        assert misses == 2       # initial miss + post-recon miss
        assert t3 != pytest.approx(t1)  # stale prediction was not reused


class TestExhaustiveSymmetry:
    def test_skips_counted_and_result_optimal(self):
        cluster = homogeneous_network(5)
        netmodel = NetworkModel(cluster, list(range(5)))
        model = make_model(nproc=3, seed=1)
        candidates = list(range(5))

        stats = SelectionStats()
        sym = ExhaustiveMapper(reduce_symmetry=True).select(
            model, netmodel, candidates, {0: 0}, stats=stats
        )
        full = ExhaustiveMapper(reduce_symmetry=False).select(
            model, netmodel, candidates, {0: 0}
        )
        assert stats.symmetry_skips > 0
        assert sym.time == pytest.approx(full.time)
        # On a homogeneous cluster all assignments price alike: symmetry
        # collapses 4P2 = 12 permutations into one evaluation.
        assert stats.evaluations + stats.symmetry_skips == 12

    def test_symmetry_skip_bound_raises(self):
        cluster = homogeneous_network(8)
        netmodel = NetworkModel(cluster, list(range(8)))
        model = make_model(nproc=4, seed=2)
        mapper = ExhaustiveMapper(reduce_symmetry=True, max_symmetry_skips=10)
        with pytest.raises(MappingError, match="symmetric permutations"):
            mapper.select(model, netmodel, list(range(8)), {0: 0})

    def test_evaluation_bound_raises(self):
        cluster = paper_network()
        netmodel = NetworkModel(cluster, list(range(9)))
        model = make_model(nproc=5, seed=4)
        mapper = ExhaustiveMapper(reduce_symmetry=False, max_evaluations=10)
        with pytest.raises(MappingError, match="exceeded 10 evaluations"):
            mapper.select(model, netmodel, list(range(9)), {0: 0})


class TestBatchConsistency:
    def test_batch_matches_singles_across_paths(self):
        from repro.core.seleng import BATCH_VECTOR_THRESHOLD

        model = make_model(nproc=4, seed=5)
        netmodel = NetworkModel(paper_network(), list(range(9)))
        rng = np.random.default_rng(9)
        mappings = [
            tuple(int(m) for m in rng.integers(0, 9, size=4))
            for _ in range(BATCH_VECTOR_THRESHOLD + 3)
        ]
        singles = np.asarray(
            [evaluate_mapping(model, netmodel, m) for m in mappings]
        )
        small = evaluate_mappings(model, netmodel, mappings[:4])
        large = evaluate_mappings(model, netmodel, mappings)
        assert np.array_equal(small, singles[:4])
        assert np.array_equal(large, singles)
