"""The paper's applications: EM3D (irregular) and matrix multiplication (regular)."""
