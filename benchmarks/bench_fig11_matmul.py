"""Figure 11 — matrix multiplication execution time and speedup.

Paper setup: r = l = 9 ("which have appeared optimal"), the 9-workstation
network, a sweep of matrix sizes; HMPI with the heterogeneous
generalized-block distribution is "almost 3 times faster" than the
homogeneous 2D block-cyclic MPI baseline (Figure 11(a) times, 11(b)
speedup).

We sweep the matrix size n (in r x r blocks; n must be a multiple of l)
with the paper's r = l = 9.
"""

import pytest

from repro.apps.matmul import run_matmul_hmpi, run_matmul_mpi
from repro.cluster import paper_network
from repro.core import GreedyMapper
from repro.obs import Observability
from repro.util.tables import Table

SIZES = [9, 18, 27, 36]   # n in r x r blocks -> matrices up to 324 x 324
R = 9
L = 9
M = 3
SEED = 11


def _sweep(obs=None):
    rows = []
    for n in SIZES:
        mpi = run_matmul_mpi(paper_network(), n=n, r=R, m=M, seed=SEED)
        hmpi = run_matmul_hmpi(paper_network(), n=n, r=R, m=M, l=L,
                               seed=SEED, mapper=GreedyMapper(), obs=obs)
        assert hmpi.checksum == pytest.approx(mpi.checksum, rel=1e-9)
        rows.append((n, n * R, mpi.algorithm_time, hmpi.algorithm_time,
                     hmpi.predicted_time))
    return rows


def test_fig11_matmul(benchmark, report):
    obs = Observability(tracer=False)
    rows = benchmark.pedantic(_sweep, args=(obs,), rounds=1, iterations=1)

    a = Table("n (blocks)", "matrix size", "t_MPI (s)", "t_HMPI (s)",
              "Timeof pred (s)",
              title=f"Figure 11(a) — MM execution time (r = l = {R})")
    b = Table("n (blocks)", "speedup",
              title="Figure 11(b) — speedup of HMPI over MPI (paper: ~3)")
    for n, size, t_mpi, t_hmpi, pred in rows:
        a.add(n, size, t_mpi, t_hmpi, pred)
        b.add(n, t_mpi / t_hmpi)
    report.emit(a.render())
    report.emit(b.render())

    snap = obs.snapshot()
    sel = Table("selection metric", "value",
                title="Selection engine over the sweep")
    for series in snap["metrics"]:
        if series["name"].startswith("hmpi.selection."):
            sel.add(series["name"].removeprefix("hmpi.selection."),
                    int(series["value"]))
    report.emit(sel.render())
    report.emit(obs.accuracy.render())

    # Shape: a decisive HMPI win at every size, growing with n as
    # computation (which the distribution balances) dominates
    # communication (which it cannot remove).
    speedups = [t_mpi / t_hmpi for _, _, t_mpi, t_hmpi, _ in rows]
    assert all(s > 2.0 for s in speedups)
    assert speedups[-1] >= speedups[0]
    for _, _, _, t_hmpi, pred in rows:
        assert pred == pytest.approx(t_hmpi, rel=0.1)
