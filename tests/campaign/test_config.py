"""Campaign config validation, expansion, and seed derivation."""

import json

import pytest

from repro.campaign import (
    EXECUTION_AXES,
    CampaignConfig,
    derive_seed,
    load_config,
)
from repro.util.errors import CampaignError, OptionError


def make(axes=None, fixed=None, **over):
    raw = {
        "name": "t",
        "app": "timeof_em3d",
        "axes": axes or {"mapper": ["greedy", "default"]},
    }
    if fixed is not None:
        raw["fixed"] = fixed
    raw.update(over)
    return raw


class TestValidation:
    def test_minimal_config(self):
        cfg = CampaignConfig(make())
        assert cfg.name == "t"
        assert cfg.driver.name == "timeof_em3d"
        assert cfg.n_runs == 2

    def test_campaign_error_is_an_option_error(self):
        # The CLI's exit-code-2 contract hangs on this subclassing.
        assert issubclass(CampaignError, OptionError)

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("name"),
        lambda r: r.update(name=""),
        lambda r: r.update(name=7),
        lambda r: r.pop("app"),
        lambda r: r.update(app="nope"),
        lambda r: r.update(seed="not-an-int"),
        lambda r: r.update(seed=True),
        lambda r: r.update(bogus_key=1),
        lambda r: r.update(axes={}),
        lambda r: r.update(axes={"mapper": []}),
        lambda r: r.update(axes={"mapper": "greedy"}),
        lambda r: r.update(axes={"no_such_param": [1]}),
        lambda r: r.update(fixed={"no_such_param": 1}),
        lambda r: r.update(fixed="nope"),
    ])
    def test_malformed_configs_raise(self, mutate):
        raw = make()
        mutate(raw)
        with pytest.raises(CampaignError):
            CampaignConfig(raw)

    def test_fixed_axes_overlap_rejected(self):
        raw = make(axes={"mapper": ["greedy"]}, fixed={"mapper": "default"})
        with pytest.raises(CampaignError, match="both"):
            CampaignConfig(raw)

    def test_not_a_dict(self):
        with pytest.raises(CampaignError):
            CampaignConfig(["nope"])


class TestExpansion:
    def test_cartesian_product(self):
        cfg = CampaignConfig(make(axes={
            "mapper": ["greedy", "default"],
            "k": [50, 100, 200],
        }))
        specs = cfg.expand()
        assert len(specs) == 6 == cfg.n_runs
        cells = {(s.cell["mapper"], s.cell["k"]) for s in specs}
        assert len(cells) == 6
        assert [s.index for s in specs] == list(range(6))

    def test_params_merge_fixed_and_cell(self):
        cfg = CampaignConfig(make(
            axes={"mapper": ["greedy"]}, fixed={"p": 3}))
        (spec,) = cfg.expand()
        assert spec.params["mapper"] == "greedy"
        assert spec.params["p"] == 3
        assert spec.cell == {"mapper": "greedy"}  # fixed stays out of cell

    def test_run_order_independent_of_axis_declaration_order(self):
        a = CampaignConfig(make(axes={"mapper": ["greedy"], "k": [1, 2]}))
        b = CampaignConfig(make(axes={"k": [1, 2], "mapper": ["greedy"]}))
        assert [s.cell for s in a.expand()] == [s.cell for s in b.expand()]


class TestSeeds:
    def test_axis_permutation_leaves_seeds_unchanged(self):
        a = CampaignConfig(make(axes={"mapper": ["greedy", "default"],
                                      "k": [50, 100]}))
        b = CampaignConfig(make(axes={"k": [50, 100],
                                      "mapper": ["greedy", "default"]}))
        sa = {tuple(sorted(s.cell.items())): s.seed for s in a.expand()}
        sb = {tuple(sorted(s.cell.items())): s.seed for s in b.expand()}
        assert sa == sb

    def test_moving_param_between_fixed_and_axis_keeps_seed(self):
        as_axis = CampaignConfig(make(axes={"mapper": ["greedy"],
                                            "k": [100]}))
        as_fixed = CampaignConfig(make(axes={"mapper": ["greedy"]},
                                       fixed={"k": 100}))
        assert as_axis.expand()[0].seed == as_fixed.expand()[0].seed

    def test_distinct_scenarios_get_distinct_seeds(self):
        cfg = CampaignConfig(make(axes={"mapper": ["greedy", "default"],
                                        "k": [50, 100]}))
        seeds = [s.seed for s in cfg.expand()]
        assert len(set(seeds)) == len(seeds)

    def test_campaign_seed_changes_every_run_seed(self):
        a = CampaignConfig(make(seed=1))
        b = CampaignConfig(make(seed=2))
        assert all(x.seed != y.seed
                   for x, y in zip(a.expand(), b.expand()))

    def test_execution_axes_excluded_from_seed(self):
        # engine / timeof_backend choose how to simulate, not what
        # happens: cells differing only there share the scenario seed.
        assert "engine" in EXECUTION_AXES
        base = {"policy": "never", "n": 24}
        with_engine = dict(base, engine="events")
        other_engine = dict(base, engine="threads")
        s0 = derive_seed(0, {k: v for k, v in with_engine.items()
                             if k not in EXECUTION_AXES})
        s1 = derive_seed(0, {k: v for k, v in other_engine.items()
                             if k not in EXECUTION_AXES})
        assert s0 == s1

    def test_derive_seed_is_pure(self):
        scenario = {"mapper": "greedy", "deaths": {"2": 0.04}}
        assert derive_seed(7, scenario) == derive_seed(7, scenario)


class TestLoadConfig:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(make()))
        cfg = load_config(path)
        assert cfg.n_runs == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign file"):
            load_config(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            load_config(path)
