"""Link calibration by ping-pong probing.

``HMPI_Recon`` refreshes the *processor-speed* half of the network model;
this module does the same for the *communication* half: a classic
ping-pong microbenchmark (in the spirit of mpptest/NetPIPE) measures the
round-trip time of messages of two sizes between a pair of ranks and fits
the Hockney parameters::

    t(n) = latency + n / bandwidth

Within the simulation this recovers the configured link parameters almost
exactly (the send-side CPU latency is part of the model), which the tests
assert — and it gives downstream users the realistic workflow: build the
network model from measurements, not from configuration files.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mpi.communicator import Comm
from ..util.errors import HMPIError

__all__ = ["LinkEstimate", "ping_pong", "probe_links"]

_PROBE_TAG = 900_000  # user-space tag band for probe traffic


@dataclass(frozen=True)
class LinkEstimate:
    """Fitted Hockney parameters of one directed machine pair."""

    latency: float      # seconds
    bandwidth: float    # bytes/second

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


def ping_pong(
    comm: Comm,
    peer: int,
    nbytes: int,
    repeats: int = 3,
    tag: int = _PROBE_TAG,
) -> float:
    """One-way time for ``nbytes`` to ``peer``, averaged over round trips.

    Both ranks of the pair must call with each other as ``peer``; the rank
    with the smaller id drives the measurement and returns the estimate,
    the other returns its echo count (the protocol is symmetric in
    messages, so clocks stay aligned).
    """
    if peer == comm.rank:
        raise HMPIError("cannot ping-pong with self")
    driver = comm.rank < peer
    total = 0.0
    for i in range(repeats):
        if driver:
            t0 = comm.wtime()
            comm.send(b"", peer, tag=tag + i, nbytes=nbytes)
            comm.recv(peer, tag=tag + i)
            total += (comm.wtime() - t0) / 2.0
        else:
            comm.recv(peer, tag=tag + i)
            comm.send(b"", peer, tag=tag + i, nbytes=nbytes)
    return total / repeats if driver else float(repeats)


def fit_hockney(t_small: float, n_small: int, t_large: float, n_large: int) -> LinkEstimate:
    """Two-point fit of latency/bandwidth."""
    if n_large <= n_small:
        raise HMPIError("need two distinct probe sizes")
    if t_large <= t_small:
        # Degenerate (e.g. loopback faster than clock resolution): treat the
        # whole time as latency with effectively infinite bandwidth.
        return LinkEstimate(latency=max(t_small, 0.0), bandwidth=1e18)
    bandwidth = (n_large - n_small) / (t_large - t_small)
    latency = t_small - n_small / bandwidth
    return LinkEstimate(latency=max(latency, 0.0), bandwidth=bandwidth)


def probe_links(
    env,
    small: int = 1024,
    large: int = 1 << 20,
    repeats: int = 3,
) -> dict[tuple[int, int], LinkEstimate]:
    """Measure every pair involving this rank's neighbours — collective.

    All world ranks call; pairs are probed one at a time in a fixed global
    order (rank i with rank j for i < j), every other rank idles through a
    barrier per pair so clocks stay aligned.  Returns, on every rank, the
    estimates for all ordered pairs (symmetric fit).
    """
    comm = env.comm_world
    size = comm.size
    estimates: dict[tuple[int, int], LinkEstimate] = {}
    for i in range(size):
        for j in range(i + 1, size):
            if comm.rank == i:
                t_small = ping_pong(comm, j, small, repeats)
                t_large = ping_pong(comm, j, large, repeats)
                fit = fit_hockney(t_small, small, t_large, large)
            elif comm.rank == j:
                ping_pong(comm, i, small, repeats)
                ping_pong(comm, i, large, repeats)
                fit = None
            else:
                fit = None
            fit = comm.bcast(fit, root=i)
            estimates[(i, j)] = fit
            estimates[(j, i)] = fit
            comm.barrier()
    return estimates
