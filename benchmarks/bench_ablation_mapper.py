"""Ablation — process-selection algorithms.

DESIGN.md calls out the mapper as a design choice the paper delegates to
the mpC runtime [7].  This bench compares the three implemented strategies
(and the exhaustive oracle) on the paper network for an EM3D instance:
solution quality (predicted execution time of the chosen group) and the
wall-clock cost of the selection itself.
"""

import time

import pytest

from repro.apps.em3d import bind_em3d_model, generate_problem
from repro.cluster import paper_network
from repro.core import (
    DefaultMapper,
    ExhaustiveMapper,
    GreedyMapper,
    NetworkModel,
    RefineMapper,
)
from repro.util.tables import Table

P = 7
K = 100


def _compare():
    problem = generate_problem(p=P, total_nodes=21_000, seed=5,
                               boundary_fraction=0.3)
    model = bind_em3d_model(problem, K)
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    candidates = list(range(cluster.size))
    fixed = {model.parent_index(): 0}

    mappers = [
        ("greedy", GreedyMapper()),
        ("refine(greedy)", RefineMapper(seed=GreedyMapper())),
        ("default", DefaultMapper()),
        ("exhaustive", ExhaustiveMapper()),
    ]
    rows = []
    for name, mapper in mappers:
        t0 = time.perf_counter()
        mapping = mapper.select(model, netmodel, candidates, fixed)
        wall = time.perf_counter() - t0
        rows.append((name, mapping.time, wall * 1000, mapping.processes))
    return rows


def test_ablation_mapper(benchmark, report):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)

    t = Table("mapper", "predicted time (s)", "selection cost (ms)",
              title=f"Ablation — mapping algorithms (EM3D, p={P}, paper network)")
    for name, pred, wall, _ in rows:
        t.add(name, pred, wall)
    report.emit(t.render())

    by_name = {name: pred for name, pred, _, _ in rows}
    oracle = by_name["exhaustive"]
    # Quality ladder: refinement never hurts the greedy seed; the default
    # lands within 10% of the oracle; nothing beats the oracle.
    assert by_name["refine(greedy)"] <= by_name["greedy"] + 1e-12
    assert by_name["default"] <= oracle * 1.10
    for name, pred, _, _ in rows:
        assert pred >= oracle - 1e-9
