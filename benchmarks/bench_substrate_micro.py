"""Substrate microbenchmarks — the simulator's own latency/bandwidth curves.

Not a paper figure: these characterise the virtual-time substrate the way
mpptest/NetPIPE characterise a real MPI installation, and pin its numbers
to the configured Hockney parameters.  If the substrate drifts from its
own cost model, every reproduced figure becomes untrustworthy — so this
bench asserts the agreement.
"""

import numpy as np
import pytest

from repro.cluster import TCP_100MBIT, homogeneous_network
from repro.mpi import run_mpi
from repro.util.tables import Table

SIZES = [0, 1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23]


def _pingpong_curve():
    rows = []
    for nbytes in SIZES:
        def app(env, n=nbytes):
            c = env.comm_world
            if env.rank == 0:
                t0 = env.wtime()
                c.send(b"", 1, tag=0, nbytes=n)
                c.recv(1, tag=0)
                return (env.wtime() - t0) / 2
            c.recv(0, tag=0)
            c.send(b"", 0, tag=0, nbytes=n)
            return None

        res = run_mpi(app, homogeneous_network(2))
        measured = res.results[0]
        theory = TCP_100MBIT.transfer_time(nbytes)
        rows.append((nbytes, measured * 1e3, theory * 1e3))
    return rows


def _collective_scaling():
    rows = []
    nbytes = 1 << 20
    for p in (2, 4, 8, 16):
        def app(env, n=nbytes):
            c = env.comm_world
            c.barrier()
            t0 = env.wtime()
            c.bcast(b"" if env.rank == 0 else None, root=0, nbytes=n)
            c.barrier()
            return env.wtime() - t0

        res = run_mpi(app, homogeneous_network(p))
        rows.append((p, max(res.results) * 1e3))
    return rows


def test_micro_pingpong(benchmark, report):
    rows = benchmark.pedantic(_pingpong_curve, rounds=1, iterations=1)
    t = Table("message bytes", "one-way time (ms)", "Hockney theory (ms)",
              title="Substrate microbenchmark — point-to-point curve "
                    "(100 Mbit TCP)")
    for nbytes, measured, theory in rows:
        t.add(nbytes, measured, theory)
    report.emit(t.render())
    for nbytes, measured, theory in rows:
        assert measured == pytest.approx(theory, rel=1e-9)


def test_micro_bcast_scaling(benchmark, report):
    rows = benchmark.pedantic(_collective_scaling, rounds=1, iterations=1)
    t = Table("processes", "bcast time (ms)",
              title="Substrate microbenchmark — 1 MiB binomial broadcast")
    for p, ms in rows:
        t.add(p, ms)
    report.emit(t.render())
    # Binomial tree: time grows with ceil(log2 p) hops of ~84 ms each
    # (the barrier adds latency-scale noise only).
    times = [ms for _, ms in rows]
    hop = TCP_100MBIT.transfer_time(1 << 20) * 1e3
    expected_hops = [1, 2, 3, 4]
    for ms, hops in zip(times, expected_hops):
        assert ms == pytest.approx(hops * hop, rel=0.05)
