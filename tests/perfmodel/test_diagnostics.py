"""The coded-diagnostics framework."""

import json

import pytest

from repro.perfmodel.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    register_rule,
    rule,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"

    def test_parse_roundtrip(self):
        for s in Severity:
            assert Severity.parse(str(s)) is s

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestRuleRegistry:
    def test_analyzer_rules_registered(self):
        import repro.perfmodel.analyze  # noqa: F401 — registers PM0xx
        import repro.perfmodel.lint    # noqa: F401 — registers PM07x
        for code in ["PM001", "PM010", "PM020", "PM030", "PM040", "PM050",
                     "PM060", "PM061", "PM062", "PM070", "PM074"]:
            assert code in RULES
            assert rule(code).code == code

    def test_duplicate_code_rejected(self):
        import repro.perfmodel.analyze  # noqa: F401
        with pytest.raises(ValueError):
            register_rule("PM010", "dup", Severity.ERROR, "duplicate")

    def test_rule_at_builds_diagnostic(self):
        import repro.perfmodel.analyze  # noqa: F401
        r = rule("PM010")
        d = r.at(7, "out of range")
        assert d.code == "PM010"
        assert d.line == 7
        assert d.severity is Severity.ERROR
        assert d.rule == r.slug

    def test_severity_override(self):
        import repro.perfmodel.analyze  # noqa: F401
        d = rule("PM011").at(3, "might escape", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING


class TestDiagnosticReport:
    def _report(self):
        rep = DiagnosticReport(target="m.pmdl")
        rep.add(Diagnostic("PM040", Severity.WARNING, 9, "unused"))
        rep.add(Diagnostic("PM010", Severity.ERROR, 4, "oob"))
        rep.add(Diagnostic("PM062", Severity.INFO, 2, "hotspot"))
        return rep

    def test_severity_views(self):
        rep = self._report()
        assert [d.code for d in rep.errors] == ["PM010"]
        assert [d.code for d in rep.warnings] == ["PM040"]
        assert [d.code for d in rep.infos] == ["PM062"]
        assert not rep.ok

    def test_sort_orders_by_line(self):
        rep = self._report()
        rep.sort()
        assert [d.line for d in rep.diagnostics] == [2, 4, 9]

    def test_exit_code_gating(self):
        rep = self._report()
        assert rep.exit_code() == 1
        warn_only = DiagnosticReport()
        warn_only.add(Diagnostic("PM040", Severity.WARNING, 1, "unused"))
        assert warn_only.exit_code() == 0
        assert warn_only.exit_code(strict=True) == 1
        assert DiagnosticReport().exit_code(strict=True) == 0

    def test_render_mentions_code_and_line(self):
        text = self._report().render()
        assert "m.pmdl" in text
        assert "line 4: error PM010: oob" in text

    def test_json_roundtrip(self):
        blob = json.loads(self._report().to_json())
        assert blob["target"] == "m.pmdl"
        assert blob["errors"] == 1
        codes = {d["code"] for d in blob["diagnostics"]}
        assert codes == {"PM010", "PM040", "PM062"}

    def test_hint_rendered(self):
        d = Diagnostic("PM062", Severity.INFO, 1, "hotspot", hint="see docs")
        assert "(see docs)" in d.render()
        assert d.to_dict()["hint"] == "see docs"
