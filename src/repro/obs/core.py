"""The unified observability bundle threaded through a run.

One :class:`Observability` object carries the four surfaces of the layer:

- ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  (counters/gauges/histograms, labelled, JSON snapshot);
- ``spans`` — the :class:`~repro.obs.spans.SpanLog` of runtime
  operations (``HMPI_Recon``/``Timeof``/``Group_create``/repair/
  checkpoint), nested parent/child;
- ``tracer`` — the engine's per-rank :class:`~repro.mpi.tracing.Tracer`
  (compute/send/recv/collective/fault events), created here unless the
  caller brings their own;
- ``accuracy`` — the :class:`~repro.obs.accuracy.PredictionTracker`
  pairing every ``Timeof`` estimate with the measured execution time.

Pass it to :func:`repro.core.runtime.run_hmpi` via ``obs=`` and every
layer records into the same bundle; afterwards ``snapshot()`` gives the
metrics JSON (selection-cache counters included) and ``chrome_trace()``
the Perfetto-loadable timeline.  A run without an ``Observability`` pays
one ``is None`` check per instrumented operation — the disabled-overhead
budget the benchmarks hold the layer to.
"""

from __future__ import annotations

from typing import Any

from ..mpi.tracing import Tracer
from .accuracy import PredictionTracker
from .chrometrace import chrome_trace as _chrome_trace
from .chrometrace import write_chrome_trace
from .metrics import MetricsRegistry
from .spans import SpanLog
from .telemetry import EventBus

__all__ = ["Observability"]


class Observability:
    """Bundle of the observability surfaces for one run.

    ``tracer=True`` (default) creates a fresh engine tracer; pass an
    existing :class:`Tracer` to share one, or ``tracer=None`` for
    runtime-only observability (spans/metrics/accuracy without per-rank
    substrate events).

    ``telemetry`` is the streaming side channel: ``None`` (default)
    keeps it off, ``True`` creates a default :class:`EventBus`, or pass
    a configured bus (custom capacity/sink/sampling) to share one — the
    engine, runtime, and campaign layers all emit into it when present.
    """

    def __init__(self, tracer: "Tracer | bool | None" = True,
                 telemetry: "EventBus | bool | None" = None):
        self.metrics = MetricsRegistry()
        self.spans = SpanLog()
        self.accuracy = PredictionTracker()
        if tracer is True:
            tracer = Tracer()
        elif tracer is False:
            tracer = None
        self.tracer: Tracer | None = tracer
        if telemetry is True:
            telemetry = EventBus()
        elif telemetry is False:
            telemetry = None
        self.telemetry: EventBus | None = telemetry
        # Live cumulative stats objects re-published at snapshot time:
        # list of (stats, labels).
        self._selection_stats: list[tuple[Any, dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_selection_stats(self, stats: Any, **labels: Any) -> None:
        """Adopt a live :class:`SelectionStats`; every :meth:`snapshot`
        re-publishes its current totals as ``hmpi.selection.*`` series.
        (This is how the registry absorbs the runtime's ad-hoc counters.)
        """
        self._selection_stats.append((stats, labels))

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Metrics snapshot (selection stats folded in) + accuracy report.

        Several runs may attach stats under the same labels (one bundle
        observing a whole sweep); their totals are summed per label set,
        not last-writer-wins.
        """
        merged: dict[tuple, dict[str, float]] = {}
        for stats, labels in self._selection_stats:
            acc = merged.setdefault(tuple(sorted(labels.items())), {})
            for fld, value in stats.as_dict().items():
                acc[fld] = acc.get(fld, 0.0) + value
        for key, fields in merged.items():
            labels = dict(key)
            for fld, value in fields.items():
                self.metrics.gauge(f"hmpi.selection.{fld}",
                                   **labels).set(float(value))
        snap = self.metrics.snapshot()
        snap["accuracy"] = self.accuracy.report()
        snap["spans"] = len(self.spans)
        snap["trace_events"] = 0 if self.tracer is None else len(self.tracer)
        if self.telemetry is not None:
            snap["telemetry"] = self.telemetry.stats()
        return snap

    def chrome_trace(self, metadata: dict[str, Any] | None = None) -> dict[str, Any]:
        """Trace Event Format document over the engine + runtime events."""
        return _chrome_trace(tracer=self.tracer, spans=self.spans,
                             metadata=metadata)

    def write_chrome_trace(self, path: str,
                           metadata: dict[str, Any] | None = None) -> None:
        write_chrome_trace(path, self.chrome_trace(metadata))

    # Convenience passthroughs so instrumented code reads naturally.
    def counter(self, name: str, **labels: Any):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any):
        return self.metrics.histogram(name, **labels)

    def span(self, name: str, rank: int, clock, **attrs: Any):
        return self.spans.span(name, rank, clock, **attrs)
