"""Fault schedule construction and injection."""

import pytest

from repro.cluster.faults import FaultSchedule, inject_faults, random_fault_schedule
from repro.cluster.presets import paper_network
from repro.util.errors import ClusterError


class TestFaultSchedule:
    def test_add_and_query(self):
        s = FaultSchedule({"ws01": 2.0})
        s.add("ws02", 3.0)
        assert s.fail_time("ws01") == 2.0
        assert s.fail_time("ws02") == 3.0
        assert s.fail_time("ws03") is None
        assert len(s) == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ClusterError):
            FaultSchedule({"x": -1.0})


class TestInjectFaults:
    def test_sets_fail_at(self):
        cluster = paper_network()
        inject_faults(cluster, FaultSchedule({"ws03": 1.5}))
        assert cluster.machine("ws03").fail_at == 1.5
        assert cluster.machine("ws04").fail_at is None

    def test_unknown_machine_rejected(self):
        with pytest.raises(ClusterError):
            inject_faults(paper_network(), FaultSchedule({"nope": 1.0}))


class TestRandomFaultSchedule:
    def test_deterministic(self):
        c = paper_network()
        a = dict(random_fault_schedule(c, 2, 10.0, seed=5).items())
        b = dict(random_fault_schedule(c, 2, 10.0, seed=5).items())
        assert a == b

    def test_respects_spare(self):
        c = paper_network()
        s = random_fault_schedule(c, 3, 10.0, seed=1, spare=frozenset({"ws00"}))
        assert "ws00" not in dict(s.items())

    def test_count_and_horizon(self):
        c = paper_network()
        s = random_fault_schedule(c, 4, 7.0, seed=2)
        assert len(s) == 4
        assert all(0.0 <= t <= 7.0 for _, t in s.items())

    def test_too_many_failures(self):
        c = paper_network()
        with pytest.raises(ClusterError):
            random_fault_schedule(c, 10, 1.0)
