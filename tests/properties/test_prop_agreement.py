"""Property: the Timeof estimator agrees with the execution engine.

The reproduction's central mechanism is that ``HMPI_Timeof`` predicts what
the virtual-time engine will measure, for *any* model whose program
performs exactly the modelled actions.  These tests generate random
models — random volumes, random sparse communication, random phase
structure — build the faithful program mechanically, run it, and compare.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_network
from repro.core.estimator import estimate_time
from repro.core.netmodel import NetworkModel
from repro.mpi import run_mpi
from repro.perfmodel.builder import CallableModel


def random_phase_model(rng, nproc):
    """A model with R phases; each phase has sparse transfers then computes.

    Returns (model, program) where `program(env, conc)` performs exactly the
    modelled actions through the substrate: per phase, every rank first
    sends its outgoing fractions, then receives its incoming ones, then
    computes its fraction of the node volume.
    """
    nphases = int(rng.integers(1, 4))
    node = rng.uniform(5.0, 60.0, size=nproc)
    links = np.zeros((nproc, nproc))
    # phase structure: list of (edges, compute_fraction) with fractions
    # summing to 1 across phases
    fractions = rng.dirichlet(np.ones(nphases))
    phases = []
    for k in range(nphases):
        edges = []
        for s in range(nproc):
            for d in range(nproc):
                if s != d and rng.random() < 0.4:
                    nbytes = float(rng.integers(10_000, 2_000_000))
                    links[s, d] += nbytes
                    edges.append((s, d, nbytes))
        phases.append((edges, float(fractions[k])))

    def scheme(v):
        for edges, frac in phases:
            for s, d, nbytes in edges:
                v.transfer(100.0 * nbytes / links[s, d], s, d)
            for i in range(nproc):
                v.compute(100.0 * frac, i)

    model = CallableModel(
        nproc,
        node_volume=lambda i: float(node[i]),
        link_volume=lambda s, d: float(links[s, d]),
        scheme=scheme,
        name="random-phases",
    )

    def program(env):
        me = env.rank
        for phase_idx, (edges, frac) in enumerate(phases):
            for s, d, nbytes in edges:
                if s == me:
                    env.comm_world.send(b"", d, tag=phase_idx,
                                        nbytes=int(nbytes))
            for s, d, nbytes in edges:
                if d == me:
                    env.comm_world.recv(s, tag=phase_idx)
            env.compute(frac * float(node[me]))
        return env.wtime()

    return model, program


class TestRandomModelAgreement:
    @given(seed=st.integers(0, 2**31 - 1), nproc=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_estimator(self, seed, nproc):
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(10.0, 300.0, size=nproc).tolist()
        cluster = uniform_network(speeds)
        netmodel = NetworkModel(cluster, list(range(nproc)))
        model, program = random_phase_model(rng, nproc)

        predicted = estimate_time(model, netmodel, list(range(nproc)))
        result = run_mpi(program, cluster, timeout=60)
        measured = max(result.results)
        assert measured == pytest.approx(predicted, rel=1e-6)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_agreement_survives_permuted_mapping(self, seed):
        """Prediction tracks execution for non-identity placements too."""
        rng = np.random.default_rng(seed)
        nproc = 4
        speeds = rng.uniform(10.0, 300.0, size=6).tolist()
        cluster = uniform_network(speeds)
        machines = rng.choice(6, size=nproc, replace=False).tolist()
        netmodel = NetworkModel(cluster, machines)
        model, program = random_phase_model(rng, nproc)

        predicted = estimate_time(model, netmodel, machines)
        result = run_mpi(program, cluster, placement=machines, timeout=60)
        measured = max(result.results)
        assert measured == pytest.approx(predicted, rel=1e-6)
