"""Group repair runtime: repair API, degraded-mode selection, cache
invalidation, free-pool drafting, and the flat HMPI_* wrappers."""

import numpy as np
import pytest

from repro.cluster import FaultSchedule, inject_faults, uniform_network
from repro.core import (
    HMPI_Group_create,
    HMPI_Group_repair,
    HMPI_Release_free,
    run_hmpi,
)
from repro.perfmodel.builder import MatrixModel
from repro.util.errors import (
    HMPIRepairError,
    OperationTimeoutError,
    RankFailedError,
)


def flat_model(nproc, volume=10.0):
    links = np.zeros((nproc, nproc))
    return MatrixModel([volume] * nproc, links)


def chatty_model(nproc, volume=10.0, comm=100.0):
    links = np.full((nproc, nproc), float(comm))
    np.fill_diagonal(links, 0.0)
    return MatrixModel([volume] * nproc, links)


class TestDegradedMode:
    def test_mark_dead_updates_network_model(self):
        cluster = uniform_network([100.0] * 4)

        def app(hmpi):
            if not hmpi.is_host():
                return None
            nm = hmpi.state.netmodel
            epoch0 = nm.speed_epoch
            hmpi.mark_dead(2)
            return (nm.degraded, nm.machine_dead(2), nm.speed_epoch > epoch0,
                    nm.alive_world_ranks(), hmpi.alive_ranks())

        res = run_hmpi(app, cluster)
        degraded, dead2, bumped, alive_nm, alive_rt = res.results[0]
        assert degraded and dead2 and bumped
        assert alive_nm == [0, 1, 3] and alive_rt == [0, 1, 3]

    def test_timeof_answers_over_survivors(self):
        """HMPI_Timeof in degraded mode: dead machines are excluded from
        selection, so losing the fast machines slows the prediction."""
        cluster = uniform_network([400.0, 200.0, 200.0, 100.0])

        def app(hmpi):
            if not hmpi.is_host():
                return None
            m = flat_model(2)
            before = hmpi.timeof(m)  # host + a 200-speed machine
            hmpi.mark_dead(1)
            hmpi.mark_dead(2)
            after = hmpi.timeof(m)   # host + the 100-speed straggler
            return (before, after)

        res = run_hmpi(app, cluster)
        before, after = res.results[0]
        assert after == pytest.approx(2 * before)

    def test_selection_cache_invalidated_on_membership_change(self):
        """A cached selection must never survive a machine death: the
        mapping itself has to change when its machine dies."""
        cluster = uniform_network([400.0, 300.0, 200.0, 100.0])

        def app(hmpi):
            if not hmpi.is_host():
                return None
            m = flat_model(2)
            first = hmpi.state.select(m)
            repeat = hmpi.state.select(m)
            stats_before = (hmpi.selection_stats.cache_hits,
                            hmpi.selection_stats.cache_misses)
            hmpi.mark_dead(1)  # the 300-speed machine was selected
            degraded = hmpi.state.select(m)
            stats_after = (hmpi.selection_stats.cache_hits,
                           hmpi.selection_stats.cache_misses)
            return (first, repeat, degraded, stats_before, stats_after)

        res = run_hmpi(app, cluster)
        first, repeat, degraded, (h0, m0), (h1, m1) = res.results[0]
        assert repeat == first          # warm cache before the death
        assert h0 >= 1
        assert 1 in first.processes     # fast non-host machine selected
        assert 1 not in degraded.processes
        assert m1 == m0 + 1             # the death forced a re-selection


class TestRepairProtocol:
    def test_repair_after_member_death(self):
        cluster = uniform_network([100.0] * 4)
        inject_faults(cluster, FaultSchedule({"m02": 0.05}))

        def app(hmpi):
            from repro.mpi.ops import SUM
            gid = hmpi.group_create(chatty_model(4))
            if gid is None or not gid.is_member:
                return None
            history = []
            for it in range(6):
                try:
                    hmpi.compute(5.0, gid.my_concurrency)
                    history.append(gid.comm.allreduce(1, SUM))
                except (RankFailedError, OperationTimeoutError) as exc:
                    gid = hmpi.group_repair(
                        gid, chatty_model(3),
                        dead=tuple(getattr(exc, "ranks", ())))
                    if not gid.is_member:
                        return ("dropped", history)
            if hmpi.is_host():
                hmpi.release_free()
            return ("done", history, gid.world_ranks)

        res = run_hmpi(app, cluster, timeout=30)
        host = res.results[0]
        assert host[0] == "done"
        assert 2 not in host[2] and len(host[2]) == 3
        # allreduce totals: 4 before the death, 3 after
        assert set(host[1]) <= {3, 4}
        assert 3 in host[1]

    def test_repair_drafts_free_replacement(self):
        """A free process is drafted to replace the dead member, keeping
        the group at full strength."""
        cluster = uniform_network([100.0] * 5)
        inject_faults(cluster, FaultSchedule({"m02": 0.05}))

        def model_for(navail):
            return chatty_model(min(4, navail))

        def app(hmpi):
            from repro.mpi.ops import SUM
            gid = hmpi.group_create(model_for if hmpi.is_host() else None)
            if gid is None:
                return ("released",)
            if not gid.is_member:
                # stay in the pool for the repair draft
                gid = hmpi.group_create(None)
                if gid is None:
                    return ("released",)
                if not gid.is_member:
                    return ("never-drafted",)
            totals = []
            for it in range(6):
                try:
                    hmpi.compute(5.0, gid.my_concurrency)
                    totals.append(gid.comm.allreduce(1, SUM))
                except (RankFailedError, OperationTimeoutError) as exc:
                    gid = hmpi.group_repair(
                        gid, model_for,
                        dead=tuple(getattr(exc, "ranks", ())))
                    if not gid.is_member:
                        return ("dropped",)
            if hmpi.is_host():
                hmpi.release_free()
            return ("done", totals, gid.world_ranks)

        res = run_hmpi(app, cluster, timeout=30)
        host = res.results[0]
        assert host[0] == "done"
        ranks = host[2]
        assert len(ranks) == 4 and 2 not in ranks and 4 in ranks

    def test_repair_infeasible_is_typed(self):
        """No silent wrong answer when repair cannot succeed: a model
        needing more processes than survive raises HMPIRepairError."""
        cluster = uniform_network([100.0] * 3)
        inject_faults(cluster, FaultSchedule({"m01": 0.05, "m02": 0.05}))

        def app(hmpi):
            from repro.mpi.ops import SUM
            gid = hmpi.group_create(chatty_model(3))
            if gid is None or not gid.is_member:
                return None
            try:
                for it in range(6):
                    hmpi.compute(5.0, gid.my_concurrency)
                    gid.comm.allreduce(1, SUM)
            except (RankFailedError, OperationTimeoutError) as exc:
                try:
                    hmpi.group_repair(gid, chatty_model(3),
                                      dead=tuple(getattr(exc, "ranks", ())))
                except HMPIRepairError as rerr:
                    return ("typed", str(rerr))
                return ("repaired-unexpectedly",)
            return ("no-failure",)

        res = run_hmpi(app, cluster, timeout=30)
        assert res.results[0][0] == "typed"

    def test_release_free_returns_none_from_group_create(self):
        cluster = uniform_network([100.0] * 4)

        def app(hmpi):
            if hmpi.is_host():
                gid = hmpi.group_create(chatty_model(2))
                gid.comm.barrier()
                hmpi.release_free()
                hmpi.group_free(gid)
                return "host"
            gid = hmpi.group_create(None)
            if gid is None:
                return "released"
            if gid.is_member:
                gid.comm.barrier()
                hmpi.group_free(gid)
                return "member"
            second = hmpi.group_create(None)
            return "released" if second is None else "unexpected"

        res = run_hmpi(app, cluster, timeout=30)
        assert res.results[0] == "host"
        assert res.results.count("member") == 1
        assert res.results.count("released") == 2


class TestFlatAPI:
    def test_flat_repair_wrappers(self):
        cluster = uniform_network([100.0] * 4)
        inject_faults(cluster, FaultSchedule({"m02": 0.05}))
        from repro.perfmodel import CallableModel

        def model(nproc):
            return CallableModel(nproc, lambda i: 10.0, lambda s, d: 100.0,
                                 name=f"flat-{nproc}")

        def app(hmpi):
            from repro.mpi.ops import SUM
            gid = HMPI_Group_create(hmpi, model(4))
            if gid is None or not gid.is_member:
                return None
            try:
                for _ in range(6):
                    hmpi.compute(5.0, gid.my_concurrency)
                    gid.comm.allreduce(1, SUM)
            except (RankFailedError, OperationTimeoutError) as exc:
                gid = HMPI_Group_repair(hmpi, gid, model(3),
                                        dead=tuple(getattr(exc, "ranks", ())))
                if not gid.is_member:
                    return ("dropped",)
            if hmpi.is_host():
                HMPI_Release_free(hmpi)
            return ("done", gid.world_ranks)

        res = run_hmpi(app, cluster, timeout=30)
        host = res.results[0]
        assert host[0] == "done" and 2 not in host[1]
