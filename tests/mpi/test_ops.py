"""Reduction operations."""

import numpy as np
import pytest

from repro.mpi.ops import (
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
)


class TestScalarOps:
    def test_sum_prod(self):
        assert SUM(2, 3) == 5
        assert PROD(2, 3) == 6

    def test_max_min(self):
        assert MAX(2, 3) == 3
        assert MIN(2, 3) == 2

    def test_logical(self):
        assert LAND(1, 0) is False
        assert LAND(1, 2) is True
        assert LOR(0, 0) is False
        assert LOR(0, 5) is True

    def test_bitwise(self):
        assert BAND(0b1100, 0b1010) == 0b1000
        assert BOR(0b1100, 0b1010) == 0b1110


class TestArrayOps:
    def test_elementwise_max(self):
        a = np.array([1, 5, 2])
        b = np.array([3, 1, 2])
        assert (MAX(a, b) == np.array([3, 5, 2])).all()

    def test_elementwise_min(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 1.0])
        assert (MIN(a, b) == np.array([1.0, 1.0])).all()

    def test_elementwise_logical(self):
        a = np.array([1, 0, 1])
        b = np.array([1, 1, 0])
        assert (LAND(a, b) == np.array([True, False, False])).all()
        assert (LOR(a, b) == np.array([True, True, True])).all()


class TestLocOps:
    def test_maxloc_picks_larger(self):
        assert MAXLOC((5, 0), (9, 1)) == (9, 1)

    def test_maxloc_tie_smaller_index(self):
        assert MAXLOC((9, 3), (9, 1)) == (9, 1)
        assert MAXLOC((9, 1), (9, 3)) == (9, 1)

    def test_minloc(self):
        assert MINLOC((5, 0), (9, 1)) == (5, 0)
        assert MINLOC((5, 2), (5, 0)) == (5, 0)

    def test_associativity_over_sequence(self):
        from functools import reduce

        values = [(4, 0), (9, 1), (9, 2), (1, 3)]
        assert reduce(MAXLOC, values) == (9, 1)
        assert reduce(MINLOC, values) == (1, 3)


class TestOpObject:
    def test_named(self):
        assert SUM.name == "MPI_SUM"
        assert MAXLOC.name == "MPI_MAXLOC"
