"""Span log: nesting, error capture, thread isolation."""

import threading

import pytest

from repro.obs.spans import SpanLog


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestSpanBasics:
    def test_records_extent_and_attrs(self):
        log = SpanLog()
        clock = FakeClock()
        with log.span("HMPI_Recon", rank=0, clock=clock, volume=2.0) as sp:
            sp.attrs["speed"] = 90.0
        assert len(log) == 1
        rec = log.spans[0]
        assert rec.name == "HMPI_Recon"
        assert rec.t0 == 1.0 and rec.t1 == 2.0
        assert rec.duration == 1.0
        assert rec.attrs == {"volume": 2.0, "speed": 90.0}
        assert rec.parent_id is None

    def test_nesting_links_parent(self):
        log = SpanLog()
        clock = FakeClock()
        with log.span("outer", rank=0, clock=clock) as outer:
            with log.span("inner", rank=0, clock=clock):
                pass
        inner, rec_outer = log.spans
        assert inner.name == "inner"
        assert inner.parent_id == rec_outer.span_id
        assert log.children_of(rec_outer) == [inner]

    def test_error_recorded_and_reraised(self):
        log = SpanLog()
        clock = FakeClock()
        with pytest.raises(RuntimeError):
            with log.span("repair", rank=1, clock=clock):
                raise RuntimeError("boom")
        assert len(log) == 1
        assert log.spans[0].attrs["error"] == "RuntimeError"
        assert log.spans[0].t1 > log.spans[0].t0

    def test_span_ids_unique(self):
        log = SpanLog()
        clock = FakeClock()
        for _ in range(5):
            with log.span("op", rank=0, clock=clock):
                pass
        ids = [s.span_id for s in log.spans]
        assert len(set(ids)) == 5


class TestThreadIsolation:
    def test_stacks_are_per_thread(self):
        # Two "ranks" (threads) open spans concurrently; neither becomes
        # the other's parent.
        log = SpanLog()
        barrier = threading.Barrier(2)

        def worker(rank):
            clock = FakeClock()
            with log.span("op", rank=rank, clock=clock):
                barrier.wait(timeout=5)
                with log.span("child", rank=rank, clock=clock):
                    pass

        threads = [threading.Thread(target=worker, args=(r,)) for r in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 4
        for rank in (0, 1):
            child, parent = log.of_rank(rank)[1], log.of_rank(rank)[0]
            by_name = {s.name: s for s in log.of_rank(rank)}
            assert by_name["child"].parent_id == by_name["op"].span_id


class TestQueries:
    def test_by_name_and_of_rank(self):
        log = SpanLog()
        clock = FakeClock()
        with log.span("a", rank=0, clock=clock):
            pass
        with log.span("b", rank=1, clock=clock):
            pass
        assert [s.name for s in log.by_name("a")] == ["a"]
        assert [s.rank for s in log.of_rank(1)] == [1]

    def test_as_dicts(self):
        log = SpanLog()
        clock = FakeClock()
        with log.span("a", rank=0, clock=clock, gid=3):
            pass
        (d,) = log.as_dicts()
        assert d["name"] == "a" and d["attrs"] == {"gid": 3}
