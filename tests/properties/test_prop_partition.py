"""Property-based tests for the distribution machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul.distribution import (
    heights_tensor,
    heterogeneous_distribution,
    partition_generalized_block,
    proportional_partition,
)

weights_strategy = st.lists(
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
    min_size=1, max_size=8,
)


class TestProportionalPartitionProperties:
    @given(weights=weights_strategy, extra=st.integers(0, 200))
    def test_exactness_and_minimum(self, weights, extra):
        k = len(weights)
        total = k + extra  # always feasible with minimum 1
        parts = proportional_partition(total, np.array(weights))
        assert parts.sum() == total
        assert (parts >= 1).all()

    @given(weights=weights_strategy, extra=st.integers(0, 200))
    def test_within_one_of_ideal_when_no_clamping(self, weights, extra):
        """Pure largest-remainder (no part hits the minimum clamp): every
        part is within 1 of its ideal proportional share."""
        k = len(weights)
        total = k + extra
        w = np.array(weights)
        ideal = w / w.sum() * total
        if (np.floor(ideal) < 1).any():
            return  # clamping active; the bound does not apply
        parts = proportional_partition(total, w)
        assert (np.abs(parts - ideal) <= 1.0 + 1e-9).all()

    @given(st.integers(2, 6), st.integers(0, 100), st.integers(0, 2**31 - 1))
    def test_permutation_equivariance(self, k, extra, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.5, 50.0, size=k)
        total = k + extra
        base = proportional_partition(total, w)
        # Reversing the weights must reverse the partition when weights are
        # distinct enough to avoid remainder ties.
        if len(set(np.round(w, 6))) == k and len(set(base.tolist())) == k:
            rev = proportional_partition(total, w[::-1].copy())
            assert sorted(rev.tolist()) == sorted(base.tolist())


grid_strategy = st.tuples(
    st.integers(2, 4),                       # m
    st.integers(0, 20),                      # l slack over m
    st.integers(0, 2**31 - 1),               # seed
)


class TestGeneralizedBlockProperties:
    @given(grid_strategy)
    @settings(max_examples=60)
    def test_partition_invariants(self, params):
        m, slack, seed = params
        l = m + slack
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(1.0, 100.0, size=(m, m))
        w, heights = partition_generalized_block(l, speeds)
        assert w.sum() == l
        assert (w >= 1).all()
        assert (heights.sum(axis=0) == l).all()
        assert (heights >= 1).all()

    @given(grid_strategy)
    @settings(max_examples=40)
    def test_heights_tensor_invariants(self, params):
        m, slack, seed = params
        l = m + slack
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(1.0, 100.0, size=(m, m))
        _, heights = partition_generalized_block(l, speeds)
        h4 = heights_tensor(heights)
        # own height on the "diagonal"
        for i in range(m):
            for j in range(m):
                assert h4[i, j, i, j] == heights[i, j]
        # symmetry under pair swap
        assert (h4 == h4.transpose(2, 3, 0, 1)).all()
        # overlaps with one column partition sum to the rectangle's height
        for i in range(m):
            for j in range(m):
                for other in range(m):
                    assert h4[i, j, :, other].sum() == heights[i, j]


class TestDistributionProperties:
    @given(st.integers(2, 3), st.integers(1, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_blocks_partition_exactly(self, m, gmult, seed):
        rng = np.random.default_rng(seed)
        l = m * 2
        n = l * gmult
        speeds = rng.uniform(1.0, 20.0, size=(m, m))
        dist = heterogeneous_distribution(n, l, speeds)
        all_blocks = []
        for g in range(m * m):
            blocks = dist.blocks_of(g)
            assert len(blocks) == dist.area(g)
            all_blocks.extend(blocks)
        assert len(all_blocks) == n * n
        assert len(set(all_blocks)) == n * n

    @given(st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_owner_agrees_with_blocks_of(self, m, seed):
        rng = np.random.default_rng(seed)
        l = m + int(rng.integers(0, 4))
        n = l * 2
        speeds = rng.uniform(1.0, 20.0, size=(m, m))
        dist = heterogeneous_distribution(n, l, speeds)
        for g in range(m * m):
            for (i, j) in dist.blocks_of(g):
                assert dist.owner_rank(i, j) == g
