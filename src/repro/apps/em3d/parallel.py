"""Parallel EM3D: the algorithm, the MPI baseline, and the HMPI version.

The algorithm (paper Section 3) per iteration and per sub-body:

1. receive the remote H boundary values the sub-body's E nodes depend on;
2. compute new E values;
3. receive the remote E boundary values the H nodes depend on;
4. compute new H values.

Sub-body ``i`` is always handled by **group rank i** — in the MPI baseline
that group is the first ``p`` processes of the world in rank order ("it is
only a pure chance if the MPI group executes the algorithm faster than any
other group"); in the HMPI version the group comes from
``HMPI_Group_create`` with the Figure 4 model, so big sub-bodies land on
fast machines.  The numerical work is identical in both, which the test
suite exploits: both runs must produce bit-identical field checksums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster.network import Cluster
from ...core.mapper import Mapper
from ...core.runtime import HMPI, run_hmpi
from ...mpi.communicator import Comm
from ...mpi.launcher import MPIEnv, run_mpi
from ...util.errors import ReproError
from .model import bind_em3d_model
from .problem import EM3DProblem, SubBody
from .serial import make_recon_benchmark, update_field

__all__ = ["EM3DRunResult", "em3d_algorithm", "run_em3d_mpi", "run_em3d_hmpi"]


@dataclass
class EM3DRunResult:
    """Outcome of one parallel EM3D execution."""

    algorithm_time: float      # virtual seconds for the timed region
    makespan: float            # full virtual time incl. setup/recon
    checksum: float            # global field checksum (correctness witness)
    group_world_ranks: tuple[int, ...]  # which processes executed it
    predicted_time: float | None = None  # HMPI's Timeof prediction, if any
    group_machines: tuple[int, ...] = ()  # machine index per group rank


def _copy_body(body: SubBody) -> SubBody:
    return SubBody(
        index=body.index,
        e_values=body.e_values.copy(),
        h_values=body.h_values.copy(),
        e_weights=body.e_weights,  # read-only in the kernel
        h_weights=body.h_weights,
    )


def em3d_algorithm(
    compute,
    comm: Comm,
    problem: EM3DProblem,
    niter: int,
    k: int,
) -> float:
    """Execute the algorithm on one member; returns the local field checksum.

    ``compute`` is the rank's modelled-computation hook
    (``env.compute``-compatible); communication goes through ``comm``,
    whose rank order must equal the sub-body order.
    """
    me = comm.rank
    p = problem.p
    if comm.size != p:
        raise ReproError(f"communicator size {comm.size} != sub-body count {p}")
    body = _copy_body(problem.bodies[me])
    dep_e = problem.dep_e
    dep_h = problem.dep_h

    for it in range(niter):
        # --- E phase: gather remote H boundary values -------------------
        for i in range(p):
            if i != me and dep_e[i, me] > 0:
                comm.send(body.h_values[: dep_e[i, me]].copy(), i, tag=2 * it)
        h_remote: list[np.ndarray] = []
        for j in range(p):
            if j != me and dep_e[me, j] > 0:
                h_remote.append(comm.recv(j, tag=2 * it))
        e_boundary = float(np.concatenate(h_remote).mean()) if h_remote else 0.0
        body.e_values = update_field(
            body.e_values, body.e_weights, body.h_values, e_boundary
        )
        compute(body.n_e / k)

        # --- H phase: gather remote E boundary values -------------------
        for i in range(p):
            if i != me and dep_h[i, me] > 0:
                comm.send(body.e_values[: dep_h[i, me]].copy(), i, tag=2 * it + 1)
        e_remote: list[np.ndarray] = []
        for j in range(p):
            if j != me and dep_h[me, j] > 0:
                e_remote.append(comm.recv(j, tag=2 * it + 1))
        h_boundary = float(np.concatenate(e_remote).mean()) if e_remote else 0.0
        body.h_values = update_field(
            body.h_values, body.h_weights, body.e_values, h_boundary
        )
        compute(body.n_h / k)

    return float(body.e_values.sum() + body.h_values.sum())


def _timed_region(comm: Comm, compute, problem, niter, k):
    """Barrier-bracketed algorithm execution; returns (checksum_sum, elapsed)."""
    comm.barrier()
    t0 = comm.wtime()
    local = em3d_algorithm(compute, comm, problem, niter, k)
    comm.barrier()
    elapsed = comm.wtime() - t0
    from ...mpi.ops import SUM

    total = comm.allreduce(local, SUM)
    return total, elapsed


def run_em3d_mpi(
    cluster: Cluster,
    problem: EM3DProblem,
    niter: int,
    k: int,
    timeout: float | None = 120.0,
    *,
    engine: str | None = None,
) -> EM3DRunResult:
    """The standard-MPI baseline of the paper's Figure 3.

    The first ``p`` world processes (one per machine, in host-file order)
    execute the algorithm via ``MPI_Comm_split`` — no knowledge of speeds.
    """
    p = problem.p
    if p > cluster.size:
        raise ReproError(f"problem has {p} sub-bodies but cluster only "
                         f"{cluster.size} machines")

    def app(env: MPIEnv):
        me = env.rank
        is_executing = 1 if me < p else 0
        em3dcomm = env.comm_world.split(is_executing, key=me)
        if not is_executing:
            return None
        total, elapsed = _timed_region(em3dcomm, env.compute, problem, niter, k)
        ranks = em3dcomm.group.world_ranks
        em3dcomm.free()
        return (total, elapsed, ranks)

    result = run_mpi(app, cluster, timeout=timeout, engine=engine)
    total, elapsed, ranks = result.results[0]
    return EM3DRunResult(
        algorithm_time=elapsed,
        makespan=result.makespan,
        checksum=total,
        group_world_ranks=tuple(ranks),
        group_machines=tuple(ranks),
    )


def run_em3d_hmpi(
    cluster: Cluster,
    problem: EM3DProblem,
    niter: int,
    k: int,
    mapper: Mapper | None = None,
    recon: bool = True,
    procs_per_machine: int = 1,
    timeout: float | None = 120.0,
    obs=None,
    *,
    engine: str | None = None,
) -> EM3DRunResult:
    """The HMPI version of the paper's Figure 5.

    Initialises the runtime, refreshes speeds with the ``Serial_em3d``
    benchmark, creates the optimal group for the Figure 4 model, and runs
    the identical algorithm on it.

    ``procs_per_machine > 1`` launches several world processes per machine
    (a normal HMPI deployment): the runtime can then co-locate sub-bodies
    on fast machines and leave very slow machines out of the group
    entirely, instead of being forced to use every machine once.
    """
    p = problem.p
    if procs_per_machine < 1:
        raise ReproError("procs_per_machine must be >= 1")
    if p > cluster.size * procs_per_machine:
        raise ReproError(f"problem has {p} sub-bodies but cluster only "
                         f"{cluster.size * procs_per_machine} process slots")

    def app(hmpi: HMPI):
        if recon:
            hmpi.recon(make_recon_benchmark(k))
        bound = bind_em3d_model(problem, k)
        predicted = hmpi.timeof(bound, iterations=niter) if hmpi.is_host() else None
        gid = hmpi.group_create(bound)
        out = None
        if gid.is_member:
            comm = gid.comm
            conc = gid.my_concurrency

            def member_compute(volume, _conc=conc):
                return hmpi.compute(volume, _conc)

            total, elapsed = _timed_region(comm, member_compute, problem, niter, k)
            if hmpi.is_host():
                # The model prices one iteration of the exchange.
                hmpi.record_measured(bound, elapsed / max(1, niter))
            out = (total, elapsed, gid.world_ranks, predicted,
                   gid.mapping.machines)
            hmpi.group_free(gid)
        return out

    placement = [m for m in range(cluster.size) for _ in range(procs_per_machine)]
    result = run_hmpi(app, cluster, placement=placement, mapper=mapper,
                      timeout=timeout, obs=obs, engine=engine)
    total, elapsed, ranks, predicted, machines = result.results[0]
    return EM3DRunResult(
        algorithm_time=elapsed,
        makespan=result.makespan,
        checksum=total,
        group_world_ranks=tuple(ranks),
        predicted_time=predicted,
        group_machines=tuple(machines),
    )
