"""PMDL parser over the paper's grammar."""

import pytest

from repro.perfmodel import ast
from repro.perfmodel.parser import parse, parse_expression
from repro.util.errors import PMDLSyntaxError

MINIMAL = """
algorithm A(int p) {
  coord I=p;
  node {I>=0: bench*(1);};
}
"""


class TestTopLevel:
    def test_minimal_algorithm(self):
        alg = parse(MINIMAL)[0]
        assert alg.name == "A"
        assert [p.name for p in alg.params] == ["p"]
        assert alg.coords[0].name == "I"
        assert len(alg.node_rules) == 1
        assert alg.parent is None and alg.scheme is None

    def test_typedef_then_algorithm(self):
        src = "typedef struct {int I; int J;} P;\n" + MINIMAL
        items = parse(src)
        assert isinstance(items[0], ast.StructDef)
        assert items[0].name == "P"
        assert [f.name for f in items[0].fields] == ["I", "J"]

    def test_junk_at_top_level(self):
        with pytest.raises(PMDLSyntaxError):
            parse("banana")

    def test_trailing_semicolon_after_algorithm(self):
        parse(MINIMAL.rstrip()[:-1] + "};")  # Fig 7 style '};'


class TestParams:
    def test_array_params_with_dims(self):
        src = """
        algorithm A(int p, int d[p], int dep[p][p]) {
          coord I=p;
          node {I>=0: bench*(d[I]);};
        }
        """
        alg = parse(src)[0]
        assert len(alg.params[1].dims) == 1
        assert len(alg.params[2].dims) == 2

    def test_param_type_required(self):
        with pytest.raises(PMDLSyntaxError):
            parse("algorithm A(p) { coord I=p; }")


class TestSections:
    def test_multi_coord(self):
        src = """
        algorithm A(int m) {
          coord I=m, J=m;
          node {I>=0: bench*(1);};
        }
        """
        alg = parse(src)[0]
        assert [c.name for c in alg.coords] == ["I", "J"]

    def test_link_with_vars_and_rules(self):
        src = """
        algorithm A(int p, int dep[p][p]) {
          coord I=p;
          node {I>=0: bench*(1);};
          link (L=p) {
            I!=L : length*(dep[I][L]*sizeof(double)) [L]->[I];
          };
          parent[0];
        }
        """
        alg = parse(src)[0]
        assert alg.link_vars[0].name == "L"
        rule = alg.link_rules[0]
        assert isinstance(rule.volume, ast.Binary)
        assert len(rule.src) == 1 and len(rule.dst) == 1
        assert alg.parent.coords[0].value == 0

    def test_parent_multi_coordinate(self):
        src = """
        algorithm A(int m) {
          coord I=m, J=m;
          node {I>=0: bench*(1);};
          parent[0,0];
        }
        """
        assert len(parse(src)[0].parent.coords) == 2

    def test_unknown_section(self):
        with pytest.raises(PMDLSyntaxError):
            parse("algorithm A(int p) { banana; }")


class TestSchemeStatements:
    def make(self, body):
        src = f"""
        algorithm A(int p) {{
          coord I=p;
          node {{I>=0: bench*(1);}};
          scheme {{ {body} }};
        }}
        """
        return parse(src)[0].scheme.body

    def test_compute_action(self):
        (stmt,) = self.make("100%%[0];")
        assert isinstance(stmt, ast.ComputeAction)
        assert stmt.percent.value == 100

    def test_transfer_action(self):
        (stmt,) = self.make("50%%[0]->[1];")
        assert isinstance(stmt, ast.TransferAction)

    def test_parenthesized_percent(self):
        (stmt,) = self.make("(100/p)%%[0];")
        assert isinstance(stmt.percent, ast.Binary)

    def test_par_loop_with_empty_update(self):
        (stmt,) = self.make("par (int i = 0; i < p; ) { i += 1; }")
        assert isinstance(stmt, ast.Par)
        assert stmt.update is None

    def test_for_loop(self):
        (stmt,) = self.make("for (int i = 0; i < p; i++) 100%%[i];")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.body, ast.ComputeAction)

    def test_if_else(self):
        (stmt,) = self.make("if (p > 1) 100%%[0]; else 100%%[0];")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_var_decl_multiple(self):
        (stmt,) = self.make("int a, b = 2, c;")
        assert isinstance(stmt, ast.VarDecl)
        assert [d.name for d in stmt.declarators] == ["a", "b", "c"]
        assert stmt.declarators[1].init.value == 2

    def test_while(self):
        (stmt,) = self.make("while (p > 0) p = p - 1;")
        assert isinstance(stmt, ast.While)

    def test_empty_statement(self):
        (stmt,) = self.make(";")
        assert isinstance(stmt, ast.EmptyStmt)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert e.right.op == "*"

    def test_comparison_precedence(self):
        e = parse_expression("a + 1 < b * 2")
        assert e.op == "<"

    def test_logical_precedence(self):
        e = parse_expression("a && b || c")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_assignment_right_associative(self):
        e = parse_expression("a = b = 1")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = parse_expression("a += 2")
        assert e.op == "+="

    def test_member_chain_and_index(self):
        e = parse_expression("h[Root.I][Root.J]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Index)
        assert isinstance(e.base.index, ast.Member)

    def test_postfix_increment(self):
        e = parse_expression("Receiver.I++")
        assert isinstance(e, ast.IncDec)
        assert isinstance(e.target, ast.Member)

    def test_address_of(self):
        e = parse_expression("&Root")
        assert isinstance(e, ast.AddrOf)

    def test_sizeof(self):
        e = parse_expression("sizeof(double)")
        assert isinstance(e, ast.Sizeof)
        assert e.type_name == "double"

    def test_sizeof_requires_type(self):
        with pytest.raises(PMDLSyntaxError):
            parse_expression("sizeof(banana)")

    def test_call_with_args(self):
        e = parse_expression("GetProcessor(r, c, m, h, w, &Root)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 6

    def test_ternary(self):
        e = parse_expression("a > b ? a : b")
        assert isinstance(e, ast.Conditional)

    def test_unary_minus_and_not(self):
        assert isinstance(parse_expression("-x"), ast.Unary)
        assert isinstance(parse_expression("!x"), ast.Unary)

    def test_trailing_garbage(self):
        with pytest.raises(PMDLSyntaxError):
            parse_expression("a + b c")
