"""Golden results and the schema-version bump guard.

Two freezes protect downstream consumers of campaign results:

* a byte-for-byte golden JSONL for the shipped mapper-ablation campaign
  (any drift in selection, seeding, or serialization shows up here), and
* a fingerprint of the row/summary field sets per schema version —
  changing the shape of a result without bumping ``SCHEMA_VERSION``
  fails loudly instead of silently breaking saved baselines.
"""

import pathlib

from repro.campaign import (
    RESULT_FIELDS,
    SCHEMA_VERSION,
    SUMMARY_FIELDS,
    load_config,
    run_campaign,
)

HERE = pathlib.Path(__file__).parent
GOLDEN = HERE / "golden" / "mapper_ablation.jsonl"
CONFIG = HERE.parent.parent / "examples" / "campaigns" / "mapper_ablation.json"

# Frozen field sets per schema version.  If the assertion below fires you
# changed the shape of results: bump SCHEMA_VERSION in
# src/repro/campaign/results.py, add the new fingerprint here, and
# regenerate golden files and committed baselines.
SCHEMA_FINGERPRINTS = {
    1: {
        "row": ("cell", "error", "metrics", "run", "schema", "seed",
                "status"),
        "summary": ("cells", "config_digest", "errors", "name", "ok",
                    "runs", "schema_version"),
    },
}


class TestSchemaGuard:
    def test_current_version_has_a_fingerprint(self):
        assert SCHEMA_VERSION in SCHEMA_FINGERPRINTS, (
            f"results schema version {SCHEMA_VERSION} has no frozen "
            f"fingerprint: record its field sets in SCHEMA_FINGERPRINTS "
            f"and regenerate golden files and committed baselines"
        )

    def test_fields_match_the_frozen_fingerprint(self):
        frozen = SCHEMA_FINGERPRINTS[SCHEMA_VERSION]
        assert (RESULT_FIELDS, SUMMARY_FIELDS) == (
            frozen["row"], frozen["summary"]), (
            f"result/summary fields changed without a schema bump: "
            f"saved baselines and golden files written as schema "
            f"{SCHEMA_VERSION} would silently mismatch.  Bump "
            f"SCHEMA_VERSION in src/repro/campaign/results.py, freeze "
            f"the new fingerprint in SCHEMA_FINGERPRINTS, and "
            f"regenerate the golden files"
        )


class TestGoldenResults:
    def test_mapper_ablation_matches_golden_bytes(self):
        writer = run_campaign(load_config(CONFIG))
        assert writer.jsonl() == GOLDEN.read_text(), (
            "campaign results drifted from the committed golden file; "
            "if the change is intentional, regenerate it with: "
            "PYTHONPATH=src python -m repro campaign run "
            "examples/campaigns/mapper_ablation.json --out /tmp/g && "
            "cp /tmp/g/results.jsonl tests/campaign/golden/"
            "mapper_ablation.jsonl"
        )
