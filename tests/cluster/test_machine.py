"""Machine speed/compute-time semantics."""

import pytest

from repro.cluster.load import ConstantLoad, StepLoad
from repro.cluster.machine import Machine
from repro.util.errors import ClusterError, MachineFailure


class TestConstruction:
    def test_defaults(self):
        m = Machine("ws00", 46.0)
        assert m.alive_at(1e9)
        assert m.effective_speed(0.0) == 46.0

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ClusterError):
            Machine("bad", 0.0)

    def test_rejects_negative_fail_time(self):
        with pytest.raises(ClusterError):
            Machine("bad", 1.0, fail_at=-1.0)


class TestEffectiveSpeed:
    def test_load_scales_speed(self):
        m = Machine("m", 100.0, load=ConstantLoad(0.5))
        assert m.effective_speed(0.0) == 50.0

    def test_sharing_divides_speed(self):
        m = Machine("m", 100.0)
        assert m.effective_speed(0.0, nprocs=4) == 25.0

    def test_rejects_zero_procs(self):
        with pytest.raises(ClusterError):
            Machine("m", 100.0).effective_speed(0.0, nprocs=0)


class TestComputeFinishTime:
    def test_simple(self):
        m = Machine("m", 100.0)
        assert m.compute_finish_time(0.0, 50.0) == pytest.approx(0.5)

    def test_starts_later(self):
        m = Machine("m", 100.0)
        assert m.compute_finish_time(2.0, 100.0) == pytest.approx(3.0)

    def test_zero_volume_is_instant(self):
        m = Machine("m", 100.0)
        assert m.compute_finish_time(1.5, 0.0) == 1.5

    def test_negative_volume_rejected(self):
        with pytest.raises(ClusterError):
            Machine("m", 100.0).compute_finish_time(0.0, -1.0)

    def test_integrates_step_load_exactly(self):
        # speed 100; share 1.0 until t=1, then 0.5.
        m = Machine("m", 100.0, load=StepLoad([(1.0, 0.5)]))
        # 150 units: 100 in the first second, remaining 50 at 50/s -> 1s more.
        assert m.compute_finish_time(0.0, 150.0) == pytest.approx(2.0)

    def test_sharing_integrates(self):
        m = Machine("m", 100.0)
        assert m.compute_finish_time(0.0, 100.0, nprocs=2) == pytest.approx(2.0)

    def test_duration_helper(self):
        m = Machine("m", 50.0)
        assert m.compute_duration(10.0, 25.0) == pytest.approx(0.5)


class TestFailure:
    def test_failure_during_compute(self):
        m = Machine("m", 100.0, fail_at=0.5)
        with pytest.raises(MachineFailure) as exc:
            m.compute_finish_time(0.0, 100.0)  # would take 1s
        assert exc.value.machine == "m"
        assert exc.value.vtime == pytest.approx(0.5)

    def test_compute_completing_before_failure(self):
        m = Machine("m", 100.0, fail_at=2.0)
        assert m.compute_finish_time(0.0, 100.0) == pytest.approx(1.0)

    def test_check_alive_after_failure(self):
        m = Machine("m", 100.0, fail_at=1.0)
        m.check_alive(0.99)
        with pytest.raises(MachineFailure):
            m.check_alive(1.0)

    def test_compute_starting_after_failure(self):
        m = Machine("m", 100.0, fail_at=1.0)
        with pytest.raises(MachineFailure):
            m.compute_finish_time(1.5, 1.0)

    def test_failure_with_step_load(self):
        m = Machine("m", 100.0, load=StepLoad([(1.0, 0.1)]), fail_at=3.0)
        # 100 units in first second; then 10/s — 300 more units would need
        # 30s but the machine dies at t=3.
        with pytest.raises(MachineFailure):
            m.compute_finish_time(0.0, 400.0)
