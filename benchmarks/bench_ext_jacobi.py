"""Extension — heterogeneous Jacobi iteration, HMPI vs MPI.

Not a paper figure: the same HMPI machinery applied to a third algorithm
shape (1-D nearest-neighbour chain; reference [6] of the paper concerns
exactly this class of linear-algebra workloads on heterogeneous networks).
Sweeps the grid size on the paper network and reports the same
MPI-vs-HMPI comparison as Figures 9/11.
"""

import numpy as np
import pytest

from repro.apps.jacobi import jacobi_reference, run_jacobi_hmpi, run_jacobi_mpi
from repro.cluster import paper_network
from repro.util.tables import Table

SIZES = [60, 120, 180]
P = 6
NITER = 8
SEED = 3


def _sweep():
    rows = []
    for n in SIZES:
        ref = jacobi_reference(n, NITER, SEED)
        mpi = run_jacobi_mpi(paper_network(), n=n, p=P, niter=NITER, seed=SEED)
        hmpi = run_jacobi_hmpi(paper_network(), n=n, p=P, niter=NITER, seed=SEED)
        assert np.array_equal(mpi.grid, ref)
        assert np.array_equal(hmpi.grid, ref)
        rows.append((n, mpi.algorithm_time, hmpi.algorithm_time,
                     hmpi.predicted_time))
    return rows


def test_ext_jacobi(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    t = Table("grid N", "t_MPI (s)", "t_HMPI (s)", "speedup", "Timeof pred",
              title=f"Extension — Jacobi iteration on the paper network "
                    f"(p={P}, {NITER} sweeps)")
    for n, t_mpi, t_hmpi, pred in rows:
        t.add(n, t_mpi, t_hmpi, t_mpi / t_hmpi, pred)
    report.emit(t.render())

    for n, t_mpi, t_hmpi, pred in rows:
        assert t_hmpi < t_mpi
        assert pred == pytest.approx(t_hmpi, rel=0.1)
