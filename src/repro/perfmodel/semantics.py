"""Static checks on parsed PMDL algorithms.

Run by the compiler before a :class:`PerformanceModel` is built; catches the
mistakes a C compiler would catch for mpC — unknown names, wrong coordinate
arity, duplicate declarations — so they surface at compile time rather than
somewhere inside an estimator run.
"""

from __future__ import annotations

from ..util.errors import PMDLSemanticError
from . import ast

__all__ = ["check_algorithm"]

_TYPE_KEYWORDS = {"int", "double", "float", "long", "char", "void"}


class _Scope:
    """Lexical scope mapping declared names to their static type name.

    The type is ``None`` when unknown; struct-typed names make ``Member``
    accesses checkable against the struct's declared fields.
    """

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, str | None] = {}

    def declare(self, name: str, type_name: str | None = None) -> None:
        self.names[name] = type_name

    def resolves(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False

    def type_of(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, alg: ast.Algorithm, structs: dict[str, ast.StructDef],
                 external_names: set[str]):
        self.alg = alg
        self.structs = structs
        self.external_names = external_names
        self.errors: list[str] = []

    def err(self, node: ast.Node, message: str) -> None:
        self.errors.append(f"line {node.line}: {message}")

    # ------------------------------------------------------------------
    def run(self) -> None:
        alg = self.alg
        seen: set[str] = set()
        top = _Scope()
        for p in alg.params:
            if p.name in seen:
                self.err(p, f"duplicate parameter {p.name!r}")
            seen.add(p.name)
            top.declare(p.name, p.type_name)
            dim_scope = _Scope(top)
            for dim in p.dims:
                self.check_expr(dim, dim_scope)

        if not alg.coords:
            self.err(alg, "algorithm needs at least one coord declaration")
        coord_scope = _Scope(top)
        for c in alg.coords:
            if c.name in seen:
                self.err(c, f"coordinate {c.name!r} shadows another declaration")
            seen.add(c.name)
            self.check_expr(c.extent, top)
            coord_scope.declare(c.name, "int")

        for rule in alg.node_rules:
            self.check_expr(rule.condition, coord_scope)
            self.check_expr(rule.volume, coord_scope)

        link_scope = _Scope(coord_scope)
        for lv in alg.link_vars:
            if lv.name in seen:
                self.err(lv, f"link variable {lv.name!r} shadows another declaration")
            seen.add(lv.name)
            self.check_expr(lv.extent, top)
            link_scope.declare(lv.name, "int")

        ncoords = len(alg.coords)
        for rule in alg.link_rules:
            self.check_expr(rule.condition, link_scope)
            self.check_expr(rule.volume, link_scope)
            for side, coords in (("source", rule.src), ("destination", rule.dst)):
                if len(coords) != ncoords:
                    self.err(rule, f"link {side} has {len(coords)} coordinates, "
                                   f"expected {ncoords}")
                for cexpr in coords:
                    self.check_expr(cexpr, link_scope)

        if alg.parent is not None:
            if len(alg.parent.coords) != ncoords:
                self.err(alg.parent,
                         f"parent has {len(alg.parent.coords)} coordinates, "
                         f"expected {ncoords}")
            for cexpr in alg.parent.coords:
                self.check_expr(cexpr, top)

        if alg.scheme is not None:
            scheme_scope = _Scope(top)
            self.check_stmts(alg.scheme.body, scheme_scope, ncoords)

    # ------------------------------------------------------------------
    def check_stmts(self, stmts: list[ast.Stmt], scope: _Scope, ncoords: int) -> None:
        inner = _Scope(scope)
        for stmt in stmts:
            self.check_stmt(stmt, inner, ncoords)

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope, ncoords: int) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.type_name not in _TYPE_KEYWORDS and stmt.type_name not in self.structs:
                self.err(stmt, f"unknown type {stmt.type_name!r}")
            for d in stmt.declarators:
                if d.init is not None:
                    self.check_expr(d.init, scope)
                scope.declare(d.name, stmt.type_name)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self.check_stmts(stmt.body, scope, ncoords)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond, scope)
            self.check_stmt(stmt.then, _Scope(scope), ncoords)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise, _Scope(scope), ncoords)
        elif isinstance(stmt, (ast.For, ast.Par)):
            loop_scope = _Scope(scope)
            if isinstance(stmt.init, ast.VarDecl):
                self.check_stmt(stmt.init, loop_scope, ncoords)
            elif stmt.init is not None:
                self.check_expr(stmt.init, loop_scope)
            if stmt.cond is not None:
                self.check_expr(stmt.cond, loop_scope)
            if stmt.update is not None:
                self.check_expr(stmt.update, loop_scope)
            self.check_stmt(stmt.body, loop_scope, ncoords)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond, scope)
            self.check_stmt(stmt.body, _Scope(scope), ncoords)
        elif isinstance(stmt, ast.ComputeAction):
            self.check_expr(stmt.percent, scope)
            if len(stmt.coords) != ncoords:
                self.err(stmt, f"compute action has {len(stmt.coords)} coordinates, "
                               f"expected {ncoords}")
            for c in stmt.coords:
                self.check_expr(c, scope)
        elif isinstance(stmt, ast.TransferAction):
            self.check_expr(stmt.percent, scope)
            for side, coords in (("source", stmt.src), ("destination", stmt.dst)):
                if len(coords) != ncoords:
                    self.err(stmt, f"transfer {side} has {len(coords)} coordinates, "
                                   f"expected {ncoords}")
                for c in coords:
                    self.check_expr(c, scope)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover - parser produces no other kinds
            self.err(stmt, f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.Sizeof)):
            return
        if isinstance(expr, ast.Name):
            if not scope.resolves(expr.ident):
                self.err(expr, f"undefined name {expr.ident!r}")
        elif isinstance(expr, ast.Index):
            self.check_expr(expr.base, scope)
            self.check_expr(expr.index, scope)
        elif isinstance(expr, ast.Member):
            self.check_expr(expr.base, scope)
            base_type = self.static_type(expr.base, scope)
            if base_type in self.structs:
                struct = self.structs[base_type]
                if expr.name not in {f.name for f in struct.fields}:
                    self.err(expr, f"struct {base_type!r} has no field "
                                   f"{expr.name!r}")
            elif base_type in _TYPE_KEYWORDS:
                self.err(expr, f"member access {expr.name!r} on non-struct "
                               f"value of type {base_type!r}")
        elif isinstance(expr, ast.Unary):
            self.check_expr(expr.operand, scope)
        elif isinstance(expr, ast.AddrOf):
            self.check_expr(expr.operand, scope)
        elif isinstance(expr, ast.Binary):
            self.check_expr(expr.left, scope)
            self.check_expr(expr.right, scope)
        elif isinstance(expr, ast.Conditional):
            self.check_expr(expr.cond, scope)
            self.check_expr(expr.then, scope)
            self.check_expr(expr.otherwise, scope)
        elif isinstance(expr, ast.Assign):
            self.check_expr(expr.target, scope)
            self.check_expr(expr.value, scope)
        elif isinstance(expr, ast.IncDec):
            self.check_expr(expr.target, scope)
        elif isinstance(expr, ast.Call):
            if expr.name not in self.external_names:
                self.err(expr, f"call to undeclared external function {expr.name!r}")
            for a in expr.args:
                self.check_expr(a, scope)
        else:  # pragma: no cover - parser produces no other kinds
            self.err(expr, f"unsupported expression {type(expr).__name__}")

    def static_type(self, expr: ast.Expr, scope: _Scope) -> str | None:
        """Best-effort static type name of an expression (None if unknown)."""
        if isinstance(expr, ast.Name):
            return scope.type_of(expr.ident)
        if isinstance(expr, ast.Member):
            base_type = self.static_type(expr.base, scope)
            if base_type in self.structs:
                for f in self.structs[base_type].fields:
                    if f.name == expr.name:
                        return f.type_name
            return None
        if isinstance(expr, ast.Index):
            # arrays are arrays of their element type (no nested arrays of
            # structs in PMDL), so indexing preserves the declared type
            return self.static_type(expr.base, scope)
        return None


def check_algorithm(
    alg: ast.Algorithm,
    structs: dict[str, ast.StructDef],
    external_names: set[str] | frozenset[str] = frozenset(),
) -> None:
    """Raise :class:`PMDLSemanticError` listing every problem found."""
    checker = _Checker(alg, structs, set(external_names))
    checker.run()
    if checker.errors:
        details = "\n  ".join(checker.errors)
        raise PMDLSemanticError(
            f"semantic errors in algorithm {alg.name!r}:\n  {details}"
        )
