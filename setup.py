"""Setup shim.

The offline environment lacks the `wheel` package, so PEP 660 editable
installs (`pip install -e .` with build isolation) fail; this shim lets the
legacy `setup.py develop` path work: `pip install -e . --no-build-isolation`
falls back to it automatically when PEP 517 editable support is missing.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
