#!/usr/bin/env python3
"""Quickstart: describe an algorithm's performance model, let HMPI pick the
best group of processes, and compare against a naive MPI group.

Run:  python examples/quickstart.py
"""

from repro.cluster import paper_network
from repro.core import run_hmpi
from repro.mpi import run_mpi
from repro.perfmodel import compile_model

# ----------------------------------------------------------------------
# 1. The algorithm: p independent workers with very uneven workloads that
#    exchange small boundary messages with their ring neighbours.
#    This is the paper's model-definition language (Figure 4 style).
# ----------------------------------------------------------------------
MODEL_SOURCE = """
algorithm RingWork(int p, int v[p], int msg) {
  coord I=p;
  node {I>=0: bench*(v[I]);};
  link (L=p) {
    L == (I+1)%p || I == (L+1)%p : length*(msg) [L]->[I];
  };
  parent[0];
  scheme {
    int owner, remote;
    par (owner = 0; owner < p; owner++)
      par (remote = 0; remote < p; remote++)
        if (remote == (owner+1)%p || owner == (remote+1)%p)
          100%%[remote]->[owner];
    par (owner = 0; owner < p; owner++) 100%%[owner];
  };
}
"""

VOLUMES = [120.0, 480.0, 240.0, 60.0]  # benchmark units per worker
MSG_BYTES = 64 * 1024


def ring_step(comm, compute, volumes, msg_bytes):
    """One round of the actual algorithm: exchange with neighbours, work."""
    me, p = comm.rank, comm.size
    left, right = (me - 1) % p, (me + 1) % p
    comm.send(b"x", left, tag=0, nbytes=msg_bytes)
    comm.send(b"x", right, tag=0, nbytes=msg_bytes)
    comm.recv(left, tag=0)
    comm.recv(right, tag=0)
    compute(volumes[me])


def hmpi_main(hmpi):
    """The HMPI program: recon -> model -> optimal group -> run."""
    hmpi.recon()  # refresh speed estimates with the unit benchmark
    model = compile_model(MODEL_SOURCE).bind(len(VOLUMES), VOLUMES, MSG_BYTES)
    predicted = hmpi.timeof(model) if hmpi.is_host() else None

    gid = hmpi.group_create(model)
    elapsed = None
    if gid.is_member:
        comm = gid.comm
        comm.barrier()
        t0 = comm.wtime()
        ring_step(comm, hmpi.compute, VOLUMES, MSG_BYTES)
        comm.barrier()
        elapsed = comm.wtime() - t0
        hmpi.group_free(gid)
    return predicted, elapsed, gid.world_ranks


def mpi_main(env):
    """The naive MPI version: the first p processes in rank order."""
    p = len(VOLUMES)
    comm = env.comm_world.split(0 if env.rank < p else 1, key=env.rank)
    elapsed = None
    if env.rank < p:
        comm.barrier()
        t0 = comm.wtime()
        ring_step(comm, env.compute, VOLUMES, MSG_BYTES)
        comm.barrier()
        elapsed = comm.wtime() - t0
    return elapsed


def main():
    cluster = paper_network()
    print(f"cluster: {cluster}")
    print(f"workloads (benchmark units): {VOLUMES}\n")

    mpi_result = run_mpi(mpi_main, paper_network())
    t_mpi = max(t for t in mpi_result.results if t is not None)
    print(f"naive MPI group (ranks 0..{len(VOLUMES)-1}):  {t_mpi:.4f} virtual s")

    hmpi_result = run_hmpi(hmpi_main, cluster)
    predicted, _, ranks = hmpi_result.results[0]
    t_hmpi = max(t for _, t, _ in hmpi_result.results if t is not None)
    print(f"HMPI-selected group {ranks}:    {t_hmpi:.4f} virtual s")
    print(f"HMPI_Timeof predicted:            {predicted:.4f} virtual s")
    print(f"\nspeedup of HMPI over naive MPI:  {t_mpi / t_hmpi:.2f}x")


if __name__ == "__main__":
    main()
