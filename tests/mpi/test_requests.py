"""Nonblocking requests."""

from repro.mpi import run_mpi
from repro.mpi.request import waitall
from repro.mpi.request import testall as check_all_done


class TestIsend:
    def test_isend_completes_immediately(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                req = c.isend("hello", 1)
                done, _, _ = req.test()
                assert done
                req.wait()
                return "sent"
            return c.recv(0)

        res = run_mpi(app, pair_cluster)
        assert res.results == ["sent", "hello"]


class TestIrecv:
    def test_wait_returns_value_and_status(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(123, 1, tag=7)
                return None
            req = c.irecv(0, 7)
            value, status = req.wait()
            return (value, status.source, status.tag)

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == (123, 0, 7)

    def test_posted_order_matching(self, pair_cluster):
        """Two irecvs posted before the sends must match in post order."""

        def app(env):
            c = env.comm_world
            if env.rank == 1:
                r1 = c.irecv(0, 5)
                r2 = c.irecv(0, 5)
                c.send("ready", 0, tag=0)
                v1, _ = r1.wait()
                v2, _ = r2.wait()
                return (v1, v2)
            c.recv(1, 0)
            c.send("first", 1, tag=5)
            c.send("second", 1, tag=5)
            return None

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == ("first", "second")

    def test_test_polls_without_blocking(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 1:
                req = c.irecv(0, 3)
                done_before, _, _ = req.test()
                c.send("go", 0, tag=1)
                value, _ = req.wait()
                done_after, value2, _ = req.test()
                return (done_before, value, done_after, value2)
            c.recv(1, 1)
            c.send("payload", 1, tag=3)
            return None

        res = run_mpi(app, pair_cluster)
        done_before, value, done_after, value2 = res.results[1]
        assert done_before is False
        assert value == "payload"
        assert done_after is True and value2 == "payload"


class TestWaitallTestall:
    def test_waitall_gathers_everything(self, small_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                reqs = [c.irecv(src, 2) for src in (1, 2, 3)]
                results = waitall(reqs)
                return sorted(v for v, _ in results)
            c.send(env.rank * 11, 0, tag=2)
            return None

        res = run_mpi(app, small_cluster)
        assert res.results[0] == [11, 22, 33]

    def test_testall_empty_list(self, pair_cluster):
        def app(env):
            return check_all_done([])

        res = run_mpi(app, pair_cluster)
        assert res.results == [True, True]
