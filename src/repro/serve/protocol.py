"""Wire protocol of the HMPI job server: request schema and digests.

A job is a JSON object POSTed to ``/v1/jobs``.  Required keys depend on
the operation:

``timeof`` / ``group_create``
    ``model`` (PMDL source text), ``params`` (bind values, by name or
    positional list), ``cluster`` (preset name, campaign cluster spec
    dict, or a full :func:`repro.cluster.serialize.cluster_to_dict`
    document).  Optional: ``algorithm`` (when the source defines several),
    ``mapper`` (registry string), ``timeof_backend``, ``iterations``
    (timeof only), ``speeds`` (per-machine estimates installed before
    selection).
``check``
    ``model``; optional ``net`` (run PM08x structural checks) and
    ``strict`` (warnings affect the reported exit code).
``campaign_cell``
    ``campaign`` (a full campaign config object) and ``cell`` (the
    expanded cell index to execute).

Common optional keys: ``tenant`` (quota accounting key, default
``"anonymous"``), ``wait`` (seconds the POST blocks for the result;
``0`` returns 202 immediately), ``timeout`` (job execution budget).

Results are pure functions of the request, so identical requests are
*coalesced*: the batch key is the (model-digest, cluster-digest,
shape-digest) triple — two tenants submitting the same model against the
same world with the same shape share one evaluation and one cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..core.mapper import available_mappers
from ..core.seleng import TIMEOF_BACKENDS
from ..util.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "SERVE_OPS",
    "ServeError",
    "BadRequest",
    "QuotaExceeded",
    "JobTimeout",
    "NotFound",
    "JobRequest",
    "validate_request",
    "canonical_digest",
    "cluster_digest",
]

PROTOCOL_VERSION = 1

#: Operations the server executes.  ``campaign-cell`` (the hyphenated
#: spelling) is accepted on the wire and normalised to ``campaign_cell``.
SERVE_OPS = ("timeof", "group_create", "check", "campaign_cell")

#: Ops whose result is a selection — these coalesce through the batcher.
SELECTION_OPS = ("timeof", "group_create")

_REQUEST_KEYS = frozenset({
    "op", "model", "algorithm", "params", "cluster", "mapper",
    "timeof_backend", "iterations", "speeds", "tenant", "wait",
    "timeout", "net", "strict", "campaign", "cell",
})

DEFAULT_TENANT = "anonymous"


class ServeError(ReproError):
    """A request the server refuses, carrying its HTTP status."""

    status = 500


class BadRequest(ServeError):
    """Malformed or invalid job request (HTTP 400)."""

    status = 400


class QuotaExceeded(ServeError):
    """Tenant or server capacity exhausted (HTTP 429)."""

    status = 429


class JobTimeout(ServeError):
    """The caller's wait or the job's budget expired (HTTP 504)."""

    status = 504


class NotFound(ServeError):
    """Unknown job id or route (HTTP 404)."""

    status = 404


def _bad(msg: str) -> BadRequest:
    return BadRequest(msg)


def canonical_digest(obj: Any) -> str:
    """sha256 hex of an object's canonical (sorted, compact) JSON form."""
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cluster_digest(spec: Any) -> str:
    """Digest identifying the world a request runs against."""
    return canonical_digest(spec)


@dataclass
class JobRequest:
    """A validated job, with its digests precomputed."""

    op: str
    tenant: str = DEFAULT_TENANT
    model: str | None = None
    algorithm: str | None = None
    params: Any = None
    cluster: Any = None
    mapper: str = "default"
    timeof_backend: str | None = None
    iterations: float = 1.0
    speeds: list[float] | None = None
    wait: float | None = None
    timeout: float | None = None
    net: bool = False
    strict: bool = False
    campaign: dict | None = None
    cell: int | None = None
    model_digest: str | None = None
    world_digest: str | None = None
    shape_digest: str | None = None
    batch_key: tuple = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form shipped to worker processes (picklable)."""
        return {
            "op": self.op, "tenant": self.tenant, "model": self.model,
            "algorithm": self.algorithm, "params": self.params,
            "cluster": self.cluster, "mapper": self.mapper,
            "timeof_backend": self.timeof_backend,
            "iterations": self.iterations, "speeds": self.speeds,
            "net": self.net, "strict": self.strict,
            "campaign": self.campaign, "cell": self.cell,
            "model_digest": self.model_digest,
            "world_digest": self.world_digest,
            "shape_digest": self.shape_digest,
        }


def _check_number(raw: dict, key: str, *, minimum: float = 0.0):
    value = raw.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{key!r} must be a number, got {value!r}")
    if value < minimum:
        raise _bad(f"{key!r} must be >= {minimum}, got {value!r}")
    return float(value)


def validate_request(raw: Any) -> JobRequest:
    """Validate a decoded JSON job request; raises :class:`BadRequest`.

    Validation is eager and total: every registry string (op, mapper,
    Timeof backend) is checked here, in the accept loop, so a typo fails
    with a 400 before a worker process ever sees the job.
    """
    from ..perfmodel import source_digest

    if not isinstance(raw, dict):
        raise _bad(f"job request must be a JSON object, "
                   f"got {type(raw).__name__}")
    unknown = set(raw) - _REQUEST_KEYS
    if unknown:
        raise _bad(f"unknown request key(s) {', '.join(sorted(unknown))}; "
                   f"expected a subset of {', '.join(sorted(_REQUEST_KEYS))}")

    op = raw.get("op")
    if isinstance(op, str):
        op = op.replace("-", "_")
    if op not in SERVE_OPS:
        raise _bad(f"unknown op {raw.get('op')!r}; "
                   f"expected one of {', '.join(SERVE_OPS)}")

    tenant = raw.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise _bad(f"'tenant' must be a non-empty string, got {tenant!r}")

    req = JobRequest(op=op, tenant=tenant)
    req.wait = _check_number(raw, "wait")
    req.timeout = _check_number(raw, "timeout")

    if op == "campaign_cell":
        campaign = raw.get("campaign")
        if not isinstance(campaign, dict):
            raise _bad("'campaign' must be a campaign config object")
        cell = raw.get("cell", 0)
        if isinstance(cell, bool) or not isinstance(cell, int) or cell < 0:
            raise _bad(f"'cell' must be a non-negative integer, got {cell!r}")
        req.campaign = campaign
        req.cell = cell
        req.world_digest = canonical_digest(campaign)
        req.shape_digest = canonical_digest({"op": op, "cell": cell})
        req.batch_key = ("campaign_cell", req.world_digest, req.shape_digest)
        return req

    model = raw.get("model")
    if not isinstance(model, str) or not model.strip():
        raise _bad("'model' must be non-empty PMDL source text")
    req.model = model
    req.model_digest = source_digest(model)

    algorithm = raw.get("algorithm")
    if algorithm is not None and (not isinstance(algorithm, str) or not algorithm):
        raise _bad(f"'algorithm' must be a non-empty string, got {algorithm!r}")
    req.algorithm = algorithm

    if op == "check":
        req.net = bool(raw.get("net", False))
        req.strict = bool(raw.get("strict", False))
        req.shape_digest = canonical_digest({
            "op": op, "algorithm": algorithm,
            "net": req.net, "strict": req.strict,
        })
        req.batch_key = ("check", req.model_digest, req.shape_digest)
        return req

    # timeof / group_create -------------------------------------------
    cluster = raw.get("cluster")
    if cluster is None:
        raise _bad(f"op {op!r} needs a 'cluster' "
                   "(preset name, spec dict, or serialized cluster)")
    if not isinstance(cluster, (str, dict)):
        raise _bad(f"'cluster' must be a string or object, got {cluster!r}")
    req.cluster = cluster
    req.world_digest = cluster_digest(cluster)

    params = raw.get("params")
    if params is not None and not isinstance(params, (dict, list)):
        raise _bad("'params' must be an object (by name) or a list "
                   f"(positional), got {params!r}")
    req.params = params

    mapper = raw.get("mapper", "default")
    if not isinstance(mapper, str):
        raise _bad(f"'mapper' must be a registry string, got {mapper!r}")
    known = set(available_mappers()) | {"anneal"}
    if mapper.lower() not in known:
        raise _bad(f"unknown mapper {mapper!r}; "
                   f"available: {', '.join(sorted(known))}")
    req.mapper = mapper.lower()

    backend = raw.get("timeof_backend")
    if backend is not None:
        if backend not in TIMEOF_BACKENDS:
            raise _bad(f"unknown timeof backend {backend!r}; "
                       f"expected one of {', '.join(TIMEOF_BACKENDS)}")
        req.timeof_backend = backend

    iterations = _check_number(raw, "iterations")
    req.iterations = 1.0 if iterations is None else iterations

    speeds = raw.get("speeds")
    if speeds is not None:
        if (not isinstance(speeds, list) or not speeds
                or any(isinstance(s, bool) or not isinstance(s, (int, float))
                       or s <= 0 for s in speeds)):
            raise _bad("'speeds' must be a non-empty list of positive numbers")
        req.speeds = [float(s) for s in speeds]

    # The shape digest covers everything that changes the *selection* —
    # two requests with equal (model, world, shape) digests share one
    # evaluation regardless of tenant, wait, or timeof iterations.
    req.shape_digest = canonical_digest({
        "algorithm": req.algorithm,
        "params": req.params,
        "mapper": req.mapper,
        "timeof_backend": req.timeof_backend,
        "speeds": req.speeds,
    })
    req.batch_key = ("select", req.model_digest, req.world_digest,
                     req.shape_digest)
    return req
