"""Flat C-style API mirroring the paper's function names.

For readers following the paper's listings (Figures 5 and 8), these
wrappers expose the exact ``HMPI_*`` spelling over the object API of
:mod:`repro.core.runtime`.  Each takes the per-rank :class:`HMPI`
environment as its first argument (the role the implicit process context
plays in the C binding).  Trailing options (``mapper``, ``iterations``,
``volume``) are keyword-only, mirroring the object API's keyword
arguments, and accept the same mapper registry strings.  See
``docs/API.md`` for the full two-layer API contract.

>>> def main(hmpi):                                 # doctest: +SKIP
...     if HMPI_Is_member(hmpi, HMPI_COMM_WORLD_GROUP):
...         HMPI_Recon(hmpi, my_benchmark)
...     if HMPI_Is_host(hmpi) or HMPI_Is_free(hmpi):
...         gid = HMPI_Group_create(hmpi, model)
...     if HMPI_Is_member(hmpi, gid):
...         comm = HMPI_Get_comm(hmpi, gid)
...         ...
...         HMPI_Group_free(hmpi, gid)
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from ..perfmodel.model import AbstractBoundModel, PerformanceModel
from ..util.errors import HMPIStateError
from .group import HMPIGroup
from .mapper import Mapper
from .runtime import HMPI

__all__ = [
    "HMPI_COMM_WORLD_GROUP",
    "HMPI_Recon",
    "HMPI_Timeof",
    "HMPI_Group_create",
    "HMPI_Group_repair",
    "HMPI_Group_free",
    "HMPI_Group_rank",
    "HMPI_Group_size",
    "HMPI_Get_comm",
    "HMPI_Is_host",
    "HMPI_Is_free",
    "HMPI_Is_member",
    "HMPI_Wtime",
    "HMPI_Release_free",
    "HMPI_Depart_machine",
    "HMPI_Admit_machine",
]

#: Sentinel for membership tests against the predefined world group
#: (every process is a member of HMPI_COMM_WORLD's group).
HMPI_COMM_WORLD_GROUP = object()


#: Bound models memoized per PerformanceModel (below); without this,
#: every flat-API call would create a fresh bound model, so repeated
#: ``HMPI_Timeof(hmpi, model, params)`` — the paper's Figure 8 loop —
#: could never hit the runtime's selection cache.
_BIND_CACHE_SIZE = 32


def _freeze(value: Any) -> Any:
    """Recursively hashable view of a parameter value (lists -> tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def _bind_if_needed(
    model: PerformanceModel | AbstractBoundModel,
    model_parameters: tuple | None,
) -> AbstractBoundModel:
    if isinstance(model, PerformanceModel):
        params = tuple(model_parameters or ())
        try:
            key = _freeze(params)
            hash(key)
        except TypeError:  # unhashable parameter type: bind fresh
            return model.bind(*params)
        cache = getattr(model, "_repro_bound_cache", None)
        if cache is None:
            cache = OrderedDict()
            try:
                model._repro_bound_cache = cache
            except AttributeError:  # models with __slots__
                return model.bind(*params)
        bound = cache.get(key)
        if bound is None:
            bound = cache[key] = model.bind(*params)
            while len(cache) > _BIND_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return bound
    if model_parameters:
        raise HMPIStateError(
            "model_parameters given with an already-bound model"
        )
    return model


def HMPI_Recon(
    hmpi: HMPI,
    benchmark: Callable | None = None,
    *,
    volume: float = 1.0,
) -> float:
    """Refresh processor-speed estimates (collective over the world)."""
    return hmpi.recon(benchmark, volume)


def HMPI_Timeof(
    hmpi: HMPI,
    perf_model: PerformanceModel | AbstractBoundModel,
    model_parameters: tuple | None = None,
    *,
    mapper: "Mapper | str | None" = None,
    iterations: float = 1.0,
) -> float:
    """Predict execution time without running (local operation).

    ``mapper`` — instance or registry string — mirrors ``hmpi.timeof`` so
    the two API layers stay congruent.
    """
    return hmpi.timeof(
        _bind_if_needed(perf_model, model_parameters),
        mapper=mapper,
        iterations=iterations,
    )


def HMPI_Group_create(
    hmpi: HMPI,
    perf_model: PerformanceModel | AbstractBoundModel,
    model_parameters: tuple | None = None,
    *,
    mapper: "Mapper | str | None" = None,
) -> HMPIGroup:
    """Create the group that executes the algorithm fastest (collective
    over the host and all free processes)."""
    return hmpi.group_create(_bind_if_needed(perf_model, model_parameters), mapper)


def HMPI_Group_repair(
    hmpi: HMPI,
    gid: HMPIGroup,
    perf_model: PerformanceModel | AbstractBoundModel,
    model_parameters: tuple | None = None,
    *,
    mapper: "Mapper | str | None" = None,
    dead: tuple = (),
) -> HMPIGroup:
    """Reform a broken group around its survivors (collective over them).

    Called after a typed failure (``RankFailedError`` & co.) on the
    group's communicator; ``dead`` passes the world ranks the caller
    observed to have failed (``error.ranks``).  Returns a fresh group
    selected over the surviving machines; raises ``HMPIRepairError`` when
    repair is impossible.
    """
    return hmpi.group_repair(
        gid, _bind_if_needed(perf_model, model_parameters),
        mapper=mapper, dead=dead,
    )


def HMPI_Group_free(hmpi: HMPI, gid: HMPIGroup) -> None:
    """Destroy a group (collective over its members)."""
    hmpi.group_free(gid)


def HMPI_Group_rank(hmpi: HMPI, gid: HMPIGroup) -> int:
    """Rank of the calling process within the group."""
    return gid.rank


def HMPI_Group_size(hmpi: HMPI, gid: HMPIGroup) -> int:
    """Number of processes in the group."""
    return gid.size


def HMPI_Get_comm(hmpi: HMPI, gid: HMPIGroup):
    """The MPI communicator over the group's processes (local)."""
    return gid.comm


def HMPI_Is_host(hmpi: HMPI) -> bool:
    """Whether the calling process is the host."""
    return hmpi.is_host()


def HMPI_Is_free(hmpi: HMPI) -> bool:
    """Whether the calling process belongs to no HMPI group."""
    return hmpi.is_free()


def HMPI_Is_member(hmpi: HMPI, gid: HMPIGroup | Any) -> bool:
    """Membership test; accepts HMPI_COMM_WORLD_GROUP."""
    if gid is HMPI_COMM_WORLD_GROUP:
        return True
    return hmpi.is_member(gid)


def HMPI_Wtime(hmpi: HMPI) -> float:
    """Current virtual time of the calling process."""
    return hmpi.wtime()


def HMPI_Release_free(hmpi: HMPI) -> None:
    """Dismiss the free processes waiting in ``HMPI_Group_create`` (host
    only); each receives None from its pending create call."""
    hmpi.release_free()


def HMPI_Depart_machine(hmpi: HMPI, machine_index: int) -> None:
    """Withdraw a healthy machine from future selections (churn "leave");
    its parked ranks stay alive and can be readmitted."""
    hmpi.depart_machine(machine_index)


def HMPI_Admit_machine(hmpi: HMPI, machine_index: int) -> None:
    """Readmit a departed machine (churn "join"); bumps the speed epoch
    so no cached selection predates the membership change."""
    hmpi.admit_machine(machine_index)
