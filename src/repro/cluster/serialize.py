"""Cluster configuration serialization (dict / JSON).

Experiment configurations should live in version-controlled files, not in
code.  This module round-trips a :class:`Cluster` — machines with speeds
and load models, explicit links with protocol sets and pinning, fault
times — through plain dictionaries, and therefore through JSON.

>>> blob = cluster_to_dict(paper_network())
>>> restored = cluster_from_dict(blob)
"""

from __future__ import annotations

import json
import math
from typing import Any

from ..util.errors import ClusterError
from .faults import TransientFaultConfig, TransientLinkFaults, attach_transient_faults
from .link import Link, Protocol
from .load import NO_LOAD, ConstantLoad, LoadModel, RandomWalkLoad, SquareWaveLoad, StepLoad
from .machine import Machine
from .network import Cluster
from .topology import topology_from_dict, topology_to_dict

__all__ = [
    "cluster_to_dict",
    "cluster_from_dict",
    "cluster_to_json",
    "cluster_from_json",
]


# ----------------------------------------------------------------------
# load models
# ----------------------------------------------------------------------

def _load_to_dict(load: LoadModel) -> dict[str, Any]:
    if isinstance(load, ConstantLoad):
        return {"kind": "constant", "share": load.share}
    if isinstance(load, StepLoad):
        return {
            "kind": "step",
            "steps": [[t, s] for t, s in zip(load._times, load._shares)],
            "initial": load._initial,
        }
    if isinstance(load, SquareWaveLoad):
        return {"kind": "square", "period": load.period, "high": load.high,
                "low": load.low, "phase": load.phase}
    if isinstance(load, RandomWalkLoad):
        raise ClusterError(
            "RandomWalkLoad carries generator state and cannot be "
            "serialized; reconstruct it from its seed instead"
        )
    raise ClusterError(f"cannot serialize load model {type(load).__name__}")


def _load_from_dict(blob: dict[str, Any]) -> LoadModel:
    kind = blob.get("kind")
    if kind == "constant":
        return ConstantLoad(blob["share"])
    if kind == "step":
        return StepLoad([(t, s) for t, s in blob["steps"]],
                        initial=blob.get("initial", 1.0))
    if kind == "square":
        return SquareWaveLoad(period=blob["period"], high=blob["high"],
                              low=blob["low"], phase=blob.get("phase", 0.0))
    raise ClusterError(f"unknown load model kind {kind!r}")


# ----------------------------------------------------------------------
# links
# ----------------------------------------------------------------------

def _protocol_to_dict(p: Protocol) -> dict[str, Any]:
    return {"name": p.name, "latency": p.latency, "bandwidth": p.bandwidth}


def _link_to_dict(link: Link) -> dict[str, Any]:
    return {
        "protocols": [_protocol_to_dict(p) for p in link.protocols],
        "pinned": link.pinned,
    }


def _link_from_dict(blob: dict[str, Any]) -> Link:
    protocols = [Protocol(**p) for p in blob["protocols"]]
    return Link(protocols, pinned=blob.get("pinned"))


# ----------------------------------------------------------------------
# transient link faults
# ----------------------------------------------------------------------

def _tf_config_to_dict(cfg: TransientFaultConfig) -> dict[str, Any]:
    blob: dict[str, Any] = {
        "drop_prob": cfg.drop_prob,
        "delay_prob": cfg.delay_prob,
        "delay": cfg.delay,
        "start": cfg.start,
    }
    if math.isfinite(cfg.stop):  # math.inf is not valid JSON
        blob["stop"] = cfg.stop
    return blob


def _tf_config_from_dict(blob: dict[str, Any]) -> TransientFaultConfig:
    return TransientFaultConfig(
        drop_prob=blob.get("drop_prob", 0.0),
        delay_prob=blob.get("delay_prob", 0.0),
        delay=blob.get("delay", 0.0),
        start=blob.get("start", 0.0),
        stop=blob.get("stop", math.inf),
    )


def _transient_faults_to_dict(tf: TransientLinkFaults) -> dict[str, Any]:
    blob: dict[str, Any] = {
        "seed": tf.seed,
        "default": _tf_config_to_dict(tf.default),
    }
    if tf.pair_configs:
        blob["pairs"] = [
            {"src": src, "dst": dst, **_tf_config_to_dict(cfg)}
            for (src, dst), cfg in sorted(tf.pair_configs.items())
        ]
    return blob


def _transient_faults_from_dict(blob: dict[str, Any]) -> TransientLinkFaults:
    pairs = {
        (entry["src"], entry["dst"]): _tf_config_from_dict(entry)
        for entry in blob.get("pairs", [])
    }
    return TransientLinkFaults(
        config=_tf_config_from_dict(blob.get("default", {})),
        seed=blob.get("seed", 0),
        pair_configs=pairs,
    )


# ----------------------------------------------------------------------
# clusters
# ----------------------------------------------------------------------

def cluster_to_dict(cluster: Cluster) -> dict[str, Any]:
    """Serialize a cluster to a JSON-compatible dictionary."""
    machines = []
    for m in cluster.machines:
        entry: dict[str, Any] = {"name": m.name, "speed": m.speed, "os": m.os}
        if m.load is not NO_LOAD:
            entry["load"] = _load_to_dict(m.load)
        if m.fail_at is not None:
            entry["fail_at"] = m.fail_at
        machines.append(entry)
    blob = {
        "single_port": cluster.single_port,
        "machines": machines,
        "default_protocols": [
            _protocol_to_dict(p) for p in cluster._default_protocols
        ],
        "loopback": _link_to_dict(cluster.loopback),
        "links": [
            {"src": i, "dst": j, **_link_to_dict(link)}
            for i, j, link in cluster.all_links()
        ],
    }
    if cluster.transient_faults is not None:
        blob["transient_faults"] = _transient_faults_to_dict(cluster.transient_faults)
    if cluster.topology is not None:
        blob["topology"] = topology_to_dict(cluster.topology)
    return blob


def cluster_from_dict(blob: dict[str, Any]) -> Cluster:
    """Rebuild a cluster from :func:`cluster_to_dict` output."""
    machines = []
    for entry in blob["machines"]:
        machines.append(Machine(
            name=entry["name"],
            speed=entry["speed"],
            os=entry.get("os", "linux"),
            load=_load_from_dict(entry["load"]) if "load" in entry else NO_LOAD,
            fail_at=entry.get("fail_at"),
        ))
    kwargs: dict[str, Any] = {}
    protos = tuple(Protocol(**p) for p in blob.get("default_protocols", []))
    if protos:
        kwargs["default_protocols"] = protos
    if "loopback" in blob:
        kwargs["loopback"] = _link_from_dict(blob["loopback"])
    kwargs["single_port"] = bool(blob.get("single_port", False))
    cluster = Cluster(machines, **kwargs)
    for entry in blob.get("links", []):
        cluster.set_link(entry["src"], entry["dst"],
                         _link_from_dict({k: entry[k] for k in ("protocols", "pinned")}),
                         symmetric=False)
    if "transient_faults" in blob:
        attach_transient_faults(
            cluster, _transient_faults_from_dict(blob["transient_faults"])
        )
    # Back-compat: blobs without a topology stay a flat pairwise mesh.
    if "topology" in blob:
        cluster.set_topology(topology_from_dict(blob["topology"]))
    return cluster


def cluster_to_json(cluster: Cluster, indent: int = 2) -> str:
    """JSON text of a cluster configuration."""
    return json.dumps(cluster_to_dict(cluster), indent=indent)


def cluster_from_json(text: str) -> Cluster:
    """Cluster from :func:`cluster_to_json` text."""
    return cluster_from_dict(json.loads(text))
