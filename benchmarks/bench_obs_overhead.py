"""Telemetry overhead — instrumentation must never tax the simulator.

The observability layer is opt-in at two levels: no registry/bus means
zero hooks on the hot path, and an attached bus costs one dict build +
ring append per event.  This bench pins both budgets on the workload
where per-event overhead cannot hide: the 1024-rank token ring from
``bench_engine_throughput`` (a strict dependency chain, so every event
passes through the scheduler with nothing to amortize against).

Budgets (asserted):

* **disabled** (no metrics, no bus — the default every experiment gets)
  must sit within run-to-run noise of the plain baseline;
* **enabled** (MetricsRegistry + EventBus streaming JSONL to disk) must
  cost <= 10% wall over the plain baseline (plus the observed noise
  spread, so slow shared runners don't flake).

With ``--smoke``, the same interleaved comparison runs at a reduced
ring size (256 ranks).
"""

import os
import tempfile
import time

from repro.cluster import uniform_network
from repro.mpi import run_mpi
from repro.obs import EventBus, MetricsRegistry
from repro.util.tables import Table

RANKS = 1024
ROUNDS = 4
MACHINES = 64
REPEATS = 3
OVERHEAD_BUDGET = 0.10  # enabled-mode wall-clock tax over plain


def ring_app(env, laps):
    """Token ring (see bench_engine_throughput): every receive blocks."""
    comm = env.comm_world
    nxt = (env.rank + 1) % env.size
    prv = (env.rank - 1) % env.size
    if env.rank == 0:
        for i in range(laps):
            comm.send(i, nxt, nbytes=64)
            comm.recv(prv)
    else:
        for i in range(laps):
            comm.send(comm.recv(prv), nxt, nbytes=64)
    return None


def _run(nranks, rounds, *, metrics=None, telemetry=None):
    """Wall seconds for one ring run with the given instrumentation."""
    cluster = uniform_network([100.0] * MACHINES)
    t0 = time.perf_counter()
    result = run_mpi(ring_app, cluster, nprocs=nranks, args=(rounds,),
                     engine="events", timeout=600.0,
                     metrics=metrics, telemetry=telemetry)
    wall = time.perf_counter() - t0
    assert not result.failed and all(e is None for e in result.exceptions)
    return wall


def test_obs_overhead(smoke, report):
    """Disabled at noise; enabled streaming within the 10% budget."""
    nranks = 256 if smoke else RANKS

    # Warm-up run absorbs import/alloc one-offs before anything is timed.
    _run(nranks, 1)

    fd, sink_path = tempfile.mkstemp(suffix=".jsonl", prefix="obs_bench_")
    os.close(fd)
    walls: dict[str, list] = {"plain": [], "disabled": [], "enabled": []}
    try:
        def instrumented():
            bus = EventBus(capacity=4096, sink=sink_path)
            try:
                return _run(nranks, ROUNDS,
                            metrics=MetricsRegistry(), telemetry=bus)
            finally:
                bus.close()

        # Interleave the three modes across rounds so slow machine-level
        # drift (GC pressure, CPU frequency) biases none of them.
        for _ in range(REPEATS):
            walls["plain"].append(_run(nranks, ROUNDS))
            walls["disabled"].append(_run(nranks, ROUNDS))
            walls["enabled"].append(instrumented())
        sink_bytes = os.path.getsize(sink_path)
    finally:
        os.unlink(sink_path)

    plain_best = min(walls["plain"])
    noise = max(walls["plain"]) - plain_best
    disabled_best = min(walls["disabled"])
    enabled_best = min(walls["enabled"])

    events = nranks * ROUNDS * 2
    t = Table("mode", "wall (s)", "ev/s", "tax vs plain",
              title=f"Telemetry overhead — {nranks}-rank token ring, "
                    f"{ROUNDS} laps ({events} events), best of {REPEATS}")
    for mode, wall in (("plain", plain_best),
                       ("disabled (default)", disabled_best),
                       ("enabled (metrics + JSONL bus)", enabled_best)):
        t.add(mode, f"{wall:.3f}", f"{events / wall:,.0f}",
              f"{(wall / plain_best - 1.0) * 100:+.1f}%")
    t.add("run-to-run noise", f"{noise:.3f}", "", "")
    t.add("JSONL sink", f"{sink_bytes} bytes", "", "")
    report.emit(t.render())

    # Disabled mode has no hooks at all: anything beyond measured noise
    # (plus a small floor for timer jitter on near-zero-noise runs)
    # means a hook leaked onto the default path.
    assert disabled_best <= plain_best + max(noise, 0.05 * plain_best), (
        f"disabled-mode run {disabled_best:.3f}s exceeds plain "
        f"{plain_best:.3f}s beyond noise {noise:.3f}s — the default "
        f"path grew an instrumentation hook"
    )
    budget = plain_best * (1.0 + OVERHEAD_BUDGET) + noise
    assert enabled_best <= budget, (
        f"enabled-mode run {enabled_best:.3f}s exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget over plain {plain_best:.3f}s "
        f"(+ noise {noise:.3f}s = {budget:.3f}s)"
    )
