#!/usr/bin/env python3
"""Dynamic self-scheduling vs HMPI's static model-driven balancing.

HMPI balances *statically*: describe the algorithm, let the runtime size
and place the work.  The classic alternative needs no model: keep a bag of
tasks and let every machine come back for more (master-worker).  This
example runs the same divisible workload both ways on the paper network
and shows the trade-off — the pool self-balances without any model but
pays a task-granularity floor, while HMPI hits the optimum when the model
is exact.

Run:  python examples/task_pool.py
"""

from repro.cluster import PAPER_SPEEDS, paper_network
from repro.core import run_hmpi
from repro.mpi import Task, run_mpi, run_task_pool
from repro.perfmodel import CallableModel
from repro.util.tables import Table

TOTAL_WORK = 800.0
NTASKS = 40


def pool_run():
    served = {}

    def app(env):
        tasks = [Task(TOTAL_WORK / NTASKS, payload=i, fn=None)
                 for i in range(NTASKS)]
        return run_task_pool(env, tasks)

    res = run_mpi(app, paper_network())
    for rank, count in enumerate(res.results[1:], start=1):
        served[rank] = count
    return res.makespan, served


def hmpi_run():
    def app(hmpi):
        speeds = hmpi.state.netmodel.speeds()
        host = hmpi.env.machine_index
        order = [host] + sorted(
            (i for i in range(len(speeds)) if i != host),
            key=lambda i: -speeds[i],
        )[:7]
        total_speed = sum(speeds[m] for m in order)
        shares = [TOTAL_WORK * speeds[m] / total_speed for m in order]
        model = CallableModel(8, lambda i: shares[i], lambda s, d: 64.0)
        gid = hmpi.group_create(model)
        elapsed = None
        if gid.is_member:
            comm = gid.comm
            comm.barrier()
            t0 = comm.wtime()
            hmpi.compute(shares[comm.rank], gid.my_concurrency)
            comm.barrier()
            elapsed = comm.wtime() - t0
            hmpi.group_free(gid)
        return elapsed

    res = run_hmpi(app, paper_network())
    return max(t for t in res.results if t is not None)


def main():
    t_pool, served = pool_run()
    t_hmpi = hmpi_run()

    print(f"{TOTAL_WORK:g} benchmark units in {NTASKS} equal tasks, "
          f"8 workers on the paper network\n")
    print("pool: tasks served per worker (dynamic self-scheduling):")
    for rank, count in served.items():
        print(f"  worker {rank} (ws{rank:02d}, speed "
              f"{PAPER_SPEEDS[rank]:>3g}): {'#' * count} {count}")

    t = Table("strategy", "makespan (virtual s)",
              title="\nstatic model vs dynamic bag-of-tasks")
    t.add("worker pool (no model needed)", t_pool)
    t.add("HMPI static shares (exact model)", t_hmpi)
    print(t.render())
    print("\nthe pool starves the speed-9 machine automatically, but one "
          "stray task\non it sets a granularity floor; HMPI's exact shares "
          "avoid both that and\nthe per-task dispatch round trips.")


if __name__ == "__main__":
    main()
