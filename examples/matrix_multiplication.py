#!/usr/bin/env python3
"""Parallel matrix multiplication: the paper's regular application
(Section 4) end to end.

Multiplies two dense square matrices on a 3x3 grid over the paper's
9-workstation network, comparing the homogeneous 2D block-cyclic MPI
baseline against the HMPI version with the heterogeneous generalized-block
distribution of Kalinov & Lastovetsky [6] — including the Figure 8 Timeof
sweep for the optimal generalized block size.

Run:  python examples/matrix_multiplication.py
"""

import numpy as np

from repro.apps.matmul import run_matmul_hmpi, run_matmul_mpi
from repro.cluster import PAPER_SPEEDS, paper_network
from repro.core import GreedyMapper
from repro.util.tables import Table


def main():
    n, r, m, seed = 18, 9, 3, 7  # (n*r) x (n*r) = 162 x 162 doubles

    print(f"multiplying two {n*r}x{n*r} matrices "
          f"({n}x{n} blocks of {r}x{r}) on a {m}x{m} grid")
    print("machine speeds:", list(PAPER_SPEEDS))
    print()

    mpi = run_matmul_mpi(paper_network(), n=n, r=r, m=m, seed=seed)
    hmpi = run_matmul_hmpi(paper_network(), n=n, r=r, m=m, seed=seed,
                           mapper=GreedyMapper())

    t = Table("variant", "distribution", "l", "time (virtual s)",
              title="C = A x B on the paper network")
    t.add("MPI", "homogeneous block-cyclic", mpi.block_size_l, mpi.algorithm_time)
    t.add("HMPI", "heterogeneous generalized-block", hmpi.block_size_l,
          hmpi.algorithm_time)
    print(t.render())
    print()
    print(f"HMPI chose generalized block size l = {hmpi.block_size_l} via "
          f"the HMPI_Timeof sweep (Figure 8)")
    print(f"HMPI_Timeof prediction: {hmpi.predicted_time:.4f} virtual s "
          f"(measured {hmpi.algorithm_time:.4f})")
    print(f"speedup: {mpi.algorithm_time / hmpi.algorithm_time:.2f}x "
          f"(paper Figure 11(b): ~3x)")
    assert np.isclose(mpi.checksum, hmpi.checksum), "results differ!"
    print(f"C checksum identical across variants: {hmpi.checksum:.6f}")

    # Show how the distribution allocated matrix area to processors.
    dist = hmpi.distribution
    print("\nheterogeneous distribution (blocks per processor):")
    for grid_rank, world_rank in enumerate(hmpi.group_world_ranks):
        I, J = divmod(grid_rank, m)
        print(f"  P{I}{J}: {dist.area(grid_rank):4d} blocks on "
              f"ws{world_rank:02d} (speed {PAPER_SPEEDS[world_rank]:g})")


if __name__ == "__main__":
    main()
