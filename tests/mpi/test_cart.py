"""Cartesian topologies."""

import pytest

from repro.cluster import homogeneous_network
from repro.mpi import PROC_NULL, run_mpi
from repro.mpi.cart import cart_create, dims_create
from repro.util.errors import MPICommError


class TestDimsCreate:
    @pytest.mark.parametrize("nnodes,ndims,expected", [
        (6, 2, [3, 2]),
        (9, 2, [3, 3]),
        (12, 2, [4, 3]),
        (12, 3, [3, 2, 2]),
        (7, 2, [7, 1]),
        (1, 3, [1, 1, 1]),
    ])
    def test_balanced_factorisation(self, nnodes, ndims, expected):
        assert dims_create(nnodes, ndims) == expected

    def test_product_invariant(self):
        import math

        for n in range(1, 40):
            for d in (1, 2, 3):
                assert math.prod(dims_create(n, d)) == n

    def test_bad_args(self):
        with pytest.raises(MPICommError):
            dims_create(0, 2)


class TestCartCreate:
    def test_grid_coords_roundtrip(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 3])
            assert cart is not None
            me = cart.coords
            assert cart.rank_of(me) == cart.rank
            return me

        res = run_mpi(app, homogeneous_network(6))
        assert res.results[0] == (0, 0)
        assert res.results[5] == (1, 2)

    def test_excess_ranks_get_none(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 2])
            return None if cart is None else cart.size

        res = run_mpi(app, homogeneous_network(6))
        assert res.results == [4, 4, 4, 4, None, None]

    def test_too_large_grid(self):
        def app(env):
            with pytest.raises(MPICommError):
                cart_create(env.comm_world, [3, 3])
            env.comm_world.barrier()
            return True

        run_mpi(app, homogeneous_network(4))

    def test_nonperiodic_out_of_range_rank_of(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 2])
            with pytest.raises(MPICommError):
                cart.rank_of([2, 0])
            cart.barrier()
            return True

        run_mpi(app, homogeneous_network(4))

    def test_periodic_wraps(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 2], periods=[True, True])
            return cart.rank_of([3, -1])  # wraps to (1, 1)

        res = run_mpi(app, homogeneous_network(4))
        assert res.results[0] == 3


class TestShift:
    def test_interior_shift(self):
        def app(env):
            cart = cart_create(env.comm_world, [3, 1])
            return cart.shift(0, 1)

        res = run_mpi(app, homogeneous_network(3))
        assert res.results[1] == (0, 2)  # source above, dest below

    def test_edges_get_proc_null(self):
        def app(env):
            cart = cart_create(env.comm_world, [3, 1])
            return cart.shift(0, 1)

        res = run_mpi(app, homogeneous_network(3))
        assert res.results[0] == (PROC_NULL, 1)
        assert res.results[2] == (1, PROC_NULL)

    def test_periodic_ring_shift_communicates(self):
        def app(env):
            cart = cart_create(env.comm_world, [4], periods=[True])
            src, dst = cart.shift(0, 1)
            return cart.sendrecv(cart.rank, dst, 0, src, 0)

        res = run_mpi(app, homogeneous_network(4))
        assert res.results == [3, 0, 1, 2]


class TestCartSub:
    def test_rows_and_columns(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 3])
            row = cart.sub([False, True])    # keep columns: row comms
            col = cart.sub([True, False])    # keep rows: column comms
            return (cart.coords, row.size, row.rank, col.size, col.rank)

        res = run_mpi(app, homogeneous_network(6))
        for coords, row_size, row_rank, col_size, col_rank in res.results:
            i, j = coords
            assert row_size == 3 and row_rank == j
            assert col_size == 2 and col_rank == i

    def test_sub_comms_isolate_traffic(self):
        from repro.mpi.ops import SUM

        def app(env):
            cart = cart_create(env.comm_world, [2, 2])
            row = cart.sub([False, True])
            return row.allreduce(cart.rank, SUM)

        res = run_mpi(app, homogeneous_network(4))
        # rows are {0,1} and {2,3}
        assert res.results == [1, 1, 5, 5]

    def test_drop_all_dims(self):
        def app(env):
            cart = cart_create(env.comm_world, [2, 2])
            solo = cart.sub([False, False])
            return (solo.size, solo.dims)

        res = run_mpi(app, homogeneous_network(4))
        assert all(r == (1, (1,)) for r in res.results)
