"""Automatic group-size selection (HeteroMPI direction)."""

import pytest

from repro.cluster import paper_network, uniform_network
from repro.core import run_hmpi
from repro.core.autotune import auto_create, tune_group_size
from repro.perfmodel import CallableModel
from repro.util.errors import MappingError

TOTAL_WORK = 600.0


def scalable_family(combine_cost):
    """Divisible work plus an Amdahl-style serial part: processor 0
    combines every other member's partial result at ``combine_cost``
    benchmark units each, so larger groups pay a growing serial tail."""

    def family(p):
        def node_volume(i):
            base = TOTAL_WORK / p
            return base + (combine_cost * (p - 1) if i == 0 else 0.0)

        return CallableModel(
            p,
            node_volume=node_volume,
            link_volume=lambda s, d: 1024.0 if d == 0 else 0.0,
            name=f"scalable-{p}",
        )

    return family


class TestTuneGroupSize:
    def test_no_serial_part_scales_out(self):
        """With no serial combine, more (useful) processes never hurt —
        the sweep should use many machines."""

        def app(hmpi):
            sweep = tune_group_size(hmpi, scalable_family(0.0), range(1, 10))
            return sweep.best_p, sweep.predictions

        res = run_hmpi(app, paper_network())
        best_p, predictions = res.results[0]
        assert best_p >= 7           # nearly all machines useful
        assert predictions[best_p] <= predictions[1]

    def test_serial_fraction_prefers_fewer(self):
        def app(hmpi):
            light = tune_group_size(hmpi, scalable_family(0.0), range(1, 10))
            heavy = tune_group_size(hmpi, scalable_family(30.0), range(1, 10))
            return light.best_p, heavy.best_p

        res = run_hmpi(app, paper_network())
        light_p, heavy_p = res.results[0]
        assert heavy_p < light_p

    def test_single_machine_limit(self):
        cluster = uniform_network([100.0, 100.0])

        def app(hmpi):
            sweep = tune_group_size(hmpi, scalable_family(0.0), range(1, 10))
            return sorted(sweep.predictions)

        res = run_hmpi(app, cluster)
        # candidates beyond the 2 available processes were skipped
        assert res.results[0] == [1, 2]

    def test_no_feasible_size(self):
        cluster = uniform_network([100.0])

        def app(hmpi):
            with pytest.raises(MappingError):
                tune_group_size(hmpi, scalable_family(0.0), [5, 9])
            return True

        res = run_hmpi(app, cluster)
        assert res.results[0]

    def test_bad_family_rejected(self):
        def bad_family(p):
            return CallableModel(p + 1, lambda i: 1.0, lambda s, d: 0.0)

        def app(hmpi):
            with pytest.raises(MappingError, match="nproc"):
                tune_group_size(hmpi, bad_family, [2])
            return True

        res = run_hmpi(app, paper_network())
        assert res.results[0]


class TestAutoCreate:
    def test_collective_creation_of_best_size(self):
        def app(hmpi):
            gid, best_p = auto_create(hmpi, scalable_family(10.0), range(1, 10))
            member = gid.is_member
            if member:
                gid.comm.barrier()
                hmpi.group_free(gid)
            return best_p, gid.size, member

        res = run_hmpi(app, paper_network())
        best_ps = {r[0] for r in res.results}
        assert len(best_ps) == 1           # everyone agrees
        best_p = best_ps.pop()
        assert all(r[1] == best_p for r in res.results)
        assert sum(1 for r in res.results if r[2]) == best_p

    def test_prediction_matches_execution(self):
        """The tuned group executes in the predicted time when the program
        performs exactly the modelled work."""

        def app(hmpi):
            family = scalable_family(0.0)
            if hmpi.is_host():
                sweep = tune_group_size(hmpi, family, range(1, 10))
                predicted = sweep.best_time
            else:
                predicted = None
            gid, best_p = auto_create(hmpi, family, range(1, 10))
            measured = None
            if gid.is_member:
                comm = gid.comm
                comm.barrier()
                t0 = comm.wtime()
                hmpi.compute(TOTAL_WORK / best_p, gid.my_concurrency)
                comm.barrier()
                measured = comm.wtime() - t0
                hmpi.group_free(gid)
            return predicted, measured

        res = run_hmpi(app, paper_network())
        predicted = res.results[0][0]
        measured = max(m for _, m in res.results if m is not None)
        assert measured == pytest.approx(predicted, rel=0.01)
