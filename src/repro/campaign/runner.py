"""Execute a campaign: every cell through its driver, into results.

The runner is deliberately dumb: expansion and seeding live in
:mod:`repro.campaign.config`, scenario construction in the drivers.  It
walks the expanded runs in order, gives each its own
``np.random.default_rng(spec.seed)`` stream, and records one result row
per run.  A run that ends in a typed library error
(:class:`~repro.util.errors.ReproError`) becomes a ``status="error"``
row naming the exception — the campaign completes with a typed result
for every cell, never a crash half-way through the sweep.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ReproError
from .config import CampaignConfig, RunSpec
from .drivers import resolve_driver
from .results import ResultsWriter

__all__ = ["run_campaign", "run_one"]


def run_one(config: CampaignConfig, spec: RunSpec) -> dict:
    """Execute a single expanded run; returns the driver's metrics dict."""
    driver = resolve_driver(config.driver)
    rng = np.random.default_rng(spec.seed)
    return driver.run(spec.params, rng)


def run_campaign(
    config: CampaignConfig,
    out_dir=None,
    *,
    progress=None,
) -> ResultsWriter:
    """Run every cell of ``config``; returns the filled ResultsWriter.

    ``progress`` is an optional callable ``(spec, row)`` invoked after
    each run (the CLI uses it to print one line per cell).
    """
    writer = ResultsWriter(out_dir)
    for spec in config.expand():
        try:
            metrics = run_one(config, spec)
            row = writer.add(spec.index, spec.seed, spec.cell, metrics)
        except ReproError as exc:
            row = writer.add(
                spec.index, spec.seed, spec.cell, {},
                status="error", error=f"{type(exc).__name__}: {exc}",
            )
        if progress is not None:
            progress(spec, row)
    writer.finish(config.name, config.to_dict())
    return writer
