"""Cartesian process topologies (MPI_Cart_* analogues).

The matrix-multiplication application arranges processes on an ``m x m``
grid; MPI expresses such arrangements through Cartesian communicators.
This module provides the standard operations over the substrate:
``cart_create`` (with optional periodicity per dimension), coordinate/rank
conversion, ``cart_shift`` displacement queries, and ``cart_sub`` to slice
the grid into row/column sub-communicators.

Rank order is row-major over the dimensions, matching both MPI's default
and the HMPI convention that group rank == abstract processor index.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..util.errors import MPICommError
from .communicator import Comm
from .status import PROC_NULL, UNDEFINED

__all__ = ["CartComm", "cart_create", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """MPI_Dims_create: factor ``nnodes`` into ``ndims`` balanced extents.

    Returns extents in non-increasing order whose product is ``nnodes``.
    """
    if nnodes < 1 or ndims < 1:
        raise MPICommError("nnodes and ndims must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly peel the largest factor onto the currently smallest dim.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims.sort()
        dims[0] *= factor
    dims.sort(reverse=True)
    return dims


class CartComm(Comm):
    """A communicator with Cartesian topology information attached."""

    def __init__(self, base: Comm, dims: Sequence[int], periods: Sequence[bool]):
        super().__init__(base._engine, base._group, base._context, base._world_rank)
        self._dims = tuple(int(d) for d in dims)
        self._periods = tuple(bool(p) for p in periods)
        # Adopt the base communicator's counters so collective tags keep
        # advancing consistently (the base handle should not be used after
        # topology attachment).
        self._coll_counter = base._coll_counter
        self._creation_counter = base._creation_counter

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def periods(self) -> tuple[bool, ...]:
        return self._periods

    @property
    def ndims(self) -> int:
        return len(self._dims)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """MPI_Cart_coords: grid coordinates of a communicator rank."""
        if not 0 <= rank < self.size:
            raise MPICommError(f"rank {rank} out of range")
        coords = []
        for extent in reversed(self._dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank: communicator rank of grid coordinates.

        Periodic dimensions wrap out-of-range coordinates; non-periodic
        out-of-range coordinates raise.
        """
        if len(coords) != self.ndims:
            raise MPICommError(
                f"expected {self.ndims} coordinates, got {len(coords)}"
            )
        rank = 0
        for c, extent, periodic in zip(coords, self._dims, self._periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise MPICommError(
                    f"coordinate {c} out of range for non-periodic extent {extent}"
                )
            rank = rank * extent + c
        return rank

    @property
    def coords(self) -> tuple[int, ...]:
        """This process's own grid coordinates."""
        return self.coords_of(self.rank)

    # ------------------------------------------------------------------
    # neighbourhood
    # ------------------------------------------------------------------
    def shift(self, dimension: int, displacement: int) -> tuple[int, int]:
        """MPI_Cart_shift: ``(source, dest)`` ranks for a displacement.

        Non-periodic edges yield PROC_NULL, so the result can be fed
        directly to ``sendrecv``.
        """
        if not 0 <= dimension < self.ndims:
            raise MPICommError(f"dimension {dimension} out of range")
        me = list(self.coords)

        def resolve(offset: int) -> int:
            target = me.copy()
            target[dimension] += offset
            extent = self._dims[dimension]
            if self._periods[dimension]:
                target[dimension] %= extent
            elif not 0 <= target[dimension] < extent:
                return PROC_NULL
            return self.rank_of(target)

        return resolve(-displacement), resolve(displacement)

    def sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """MPI_Cart_sub: slice the grid, keeping the flagged dimensions.

        Collective.  Processes sharing the coordinates of the *dropped*
        dimensions end up in the same sub-communicator.
        """
        if len(remain_dims) != self.ndims:
            raise MPICommError(
                f"remain_dims must have {self.ndims} entries"
            )
        me = self.coords
        color = 0
        for c, extent, keep in zip(me, self._dims, remain_dims):
            if not keep:
                color = color * extent + c
        key = 0
        for c, extent, keep in zip(me, self._dims, remain_dims):
            if keep:
                key = key * extent + c
        base = self.split(color, key)
        assert base is not None
        sub_dims = [d for d, keep in zip(self._dims, remain_dims) if keep]
        sub_periods = [p for p, keep in zip(self._periods, remain_dims) if keep]
        if not sub_dims:
            sub_dims, sub_periods = [1], [False]
        return CartComm(base, sub_dims, sub_periods)


def cart_create(
    comm: Comm,
    dims: Sequence[int],
    periods: Sequence[bool] | None = None,
    reorder: bool = False,
) -> CartComm | None:
    """MPI_Cart_create: attach a Cartesian topology (collective).

    Processes beyond ``prod(dims)`` receive None (as MPI returns
    MPI_COMM_NULL).  ``reorder`` is accepted for signature fidelity; the
    substrate never renumbers (HMPI's selection already placed ranks).
    """
    total = 1
    for d in dims:
        if d < 1:
            raise MPICommError(f"dimension extents must be >= 1, got {d}")
        total *= d
    if total > comm.size:
        raise MPICommError(
            f"grid of {total} processes exceeds communicator size {comm.size}"
        )
    if periods is None:
        periods = [False] * len(dims)
    if len(periods) != len(dims):
        raise MPICommError("periods must match dims in length")
    inside = comm.rank < total
    base = comm.split(0 if inside else UNDEFINED, key=comm.rank)
    if base is None:
        return None
    return CartComm(base, dims, periods)
