"""The HMPI runtime system.

One :class:`HMPIRuntimeState` is shared by all ranks of a run (the
algorithm-independent part of the runtime); each rank holds an
:class:`HMPI` environment (created by :func:`run_hmpi`) exposing the
paper's principal operations as methods:

===============================  =====================================
paper                            here
===============================  =====================================
``HMPI_Init / HMPI_Finalize``    ``run_hmpi`` brackets the app
``HMPI_COMM_WORLD``              ``hmpi.comm_world``
``HMPI_Is_host/Is_free/...``     ``hmpi.is_host()/is_free()/is_member``
``HMPI_Recon``                   ``hmpi.recon``
``HMPI_Timeof``                  ``hmpi.timeof``
``HMPI_Group_create``            ``hmpi.group_create``
``HMPI_Group_free``              ``hmpi.group_free``
``HMPI_Get_comm``                ``group.comm``
===============================  =====================================

(The flat C-style names are also provided, see :mod:`repro.core.api`.)

Group creation is collective over the parent (host) and all free
processes.  The host runs the selection algorithm against the network
model and distributes the chosen mapping point-to-point, so processes that
are busy in other groups are never touched — matching the paper's rule
that ``HMPI_Group_create`` "must be called by the parent and all the
processes, which are not members of any HMPI group".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from ..cluster.network import Cluster
from ..mpi.communicator import Comm
from ..mpi.group import Group
from ..mpi.launcher import MPIEnv, MPIRunResult, default_placement, run_mpi
from ..perfmodel.model import AbstractBoundModel
from ..util.errors import HMPIStateError
from .group import HMPIGroup
from .mapper import DefaultMapper, Mapper, Mapping, _supports_stats, resolve_mapper
from .netmodel import NetworkModel
from .seleng import SelectionStats

__all__ = ["HMPI", "HMPIRuntimeState", "run_hmpi", "HOST_RANK"]

#: World rank of the host process (the paper's dedicated host-processor).
HOST_RANK = 0

# Internal world-context tags (distinct from both user tags >= 0 and
# collective tags <= -1_000_000 by living in their own negative band).
_TAG_GROUP_CREATE = -2_000_000


class HMPIRuntimeState:
    """Shared, lock-protected state of one HMPI run.

    ``mapper`` may be a :class:`Mapper` instance or a registry string
    (``"default"``, ``"greedy"``, ...); ``None`` selects the runtime
    default.  The state also owns the **selection cache**: repeated
    ``timeof``/``group_create`` on the same model between ``recon``
    refreshes are answered in O(1), keyed by (model identity, mapper
    identity, network-model speed epoch, candidate set, pins).
    ``selection_stats`` counts cache hits/misses and engine evaluations.
    """

    #: Cached selections retained (LRU); stale epochs age out naturally.
    SELECTION_CACHE_SIZE = 64

    def __init__(self, netmodel: NetworkModel, mapper: "Mapper | str | None" = None):
        self.netmodel = netmodel
        self.mapper = resolve_mapper(mapper, default=None) or DefaultMapper()
        self.lock = threading.RLock()
        # Free = not a member of any HMPI group.  The host is permanently
        # the parent of the world group, so it is never "free" but always
        # participates in creation.
        self.free: set[int] = set(range(netmodel.nprocs)) - {HOST_RANK}
        self.creation_counter = 0
        self.dead: set[int] = set()  # world ranks on failed machines
        # Real-time rendezvous counters for group_free (gid -> arrivals).
        self.free_rendezvous: dict[int, int] = {}
        self.free_cond = threading.Condition(self.lock)
        self.selection_stats = SelectionStats()
        # key -> (Mapping, model ref, mapper ref); the refs keep the ids in
        # the key stable for the entry's lifetime.
        self._selection_cache: OrderedDict[tuple, tuple[Mapping, Any, Any]] = (
            OrderedDict()
        )

    def participants(self) -> list[int]:
        """Host plus free processes, excluding known-dead ranks."""
        with self.lock:
            alive_free = sorted(self.free - self.dead)
        return [HOST_RANK] + alive_free

    # ------------------------------------------------------------------
    # selection (with cache)
    # ------------------------------------------------------------------
    def select(
        self,
        model: AbstractBoundModel,
        mapper: "Mapper | str | None" = None,
        fixed: dict[int, int] | None = None,
    ) -> Mapping:
        """Solve (or recall) the selection problem for ``model``.

        Cached per (model, mapper, speed epoch, candidates, pins): the
        prediction stays valid until a ``recon`` bumps the network model's
        speed epoch or the pool of free processes changes.
        """
        with self.lock:
            netmodel = self.netmodel
            use_mapper = resolve_mapper(mapper, default=self.mapper)
            candidates = tuple(self.participants())
        if fixed is None:
            fixed = {model.parent_index(): HOST_RANK}
        key = (
            id(model),
            id(use_mapper),
            netmodel.speed_epoch,
            candidates,
            tuple(sorted(fixed.items())),
        )
        with self.lock:
            entry = self._selection_cache.get(key)
            if entry is not None:
                self._selection_cache.move_to_end(key)
                self.selection_stats.cache_hits += 1
                return entry[0]
            self.selection_stats.cache_misses += 1
            stats = self.selection_stats
        if _supports_stats(use_mapper):
            mapping = use_mapper.select(
                model, netmodel, list(candidates), fixed, stats=stats
            )
        else:
            mapping = use_mapper.select(model, netmodel, list(candidates), fixed)
        with self.lock:
            self._selection_cache[key] = (mapping, model, use_mapper)
            while len(self._selection_cache) > self.SELECTION_CACHE_SIZE:
                self._selection_cache.popitem(last=False)
        return mapping

    def invalidate_selections(self) -> None:
        """Drop every cached selection (speed-epoch bumps do this lazily)."""
        with self.lock:
            self._selection_cache.clear()


class HMPI:
    """Per-rank HMPI environment (wraps the rank's MPI environment)."""

    def __init__(self, env: MPIEnv, state: HMPIRuntimeState):
        self.env = env
        self.state = state
        self.comm_world = env.comm_world  # the paper's HMPI_COMM_WORLD

    # ------------------------------------------------------------------
    # identity predicates
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """World rank within HMPI_COMM_WORLD."""
        return self.env.rank

    @property
    def size(self) -> int:
        return self.env.size

    def is_host(self) -> bool:
        """HMPI_Is_host: whether this is the dedicated host process."""
        return self.rank == HOST_RANK

    def is_free(self) -> bool:
        """HMPI_Is_free: not a member of any HMPI group."""
        with self.state.lock:
            return self.rank in self.state.free

    def is_member(self, group: HMPIGroup) -> bool:
        """HMPI_Is_member for a created group handle."""
        return group.is_member

    # ------------------------------------------------------------------
    # computation / timing passthroughs
    # ------------------------------------------------------------------
    def compute(self, volume: float, concurrency: int | None = None) -> float:
        """Charge ``volume`` benchmark units of modelled computation.

        Pass ``concurrency=group.my_concurrency`` inside a group's
        algorithm so speed sharing matches what the selection assumed.
        """
        return self.env.compute(volume, concurrency)

    def wtime(self) -> float:
        return self.env.wtime()

    # ------------------------------------------------------------------
    # HMPI_Recon
    # ------------------------------------------------------------------
    def recon(
        self,
        benchmark: Callable[[MPIEnv], Any] | None = None,
        volume: float = 1.0,
    ) -> float:
        """Refresh the runtime's processor-speed estimates.

        Collective over HMPI_COMM_WORLD.  Every process executes the
        benchmark function (default: ``volume`` benchmark units of pure
        computation), the elapsed virtual times are allgathered, and the
        network model's speed estimates are replaced by what the benchmark
        actually observed — capturing external load, exactly as the paper
        prescribes for multi-user machines.

        Returns this process's own measured speed (benchmark units/sec).
        """
        t0 = self.env.wtime()
        if benchmark is None:
            self.env.compute(volume)
        else:
            benchmark(self.env)
        elapsed = self.env.wtime() - t0
        times = self.comm_world.allgather(elapsed)
        with self.state.lock:
            self.state.netmodel.update_speeds_from_benchmark(times, volume)
        return volume / elapsed

    # ------------------------------------------------------------------
    # HMPI_Timeof
    # ------------------------------------------------------------------
    def timeof(
        self,
        model: AbstractBoundModel,
        mapper: "Mapper | str | None" = None,
        iterations: float = 1.0,
    ) -> float:
        """Predict the execution time of ``model`` without running it.

        Local operation: runs the selection algorithm against the current
        network model and returns the predicted time of the best group,
        scaled by ``iterations`` (the model describes one scheme run; the
        paper's models describe one iteration/step sequence).  ``mapper``
        may be an instance or a registry string.  Selections are cached:
        repeated calls on the same model are O(1) until ``recon`` refreshes
        the speed estimates or the free-process pool changes.
        """
        mapping = self._select(model, mapper)
        return mapping.time * iterations

    @property
    def selection_stats(self) -> SelectionStats:
        """Selection-cache and engine counters of this run."""
        return self.state.selection_stats

    def _select(
        self, model: AbstractBoundModel, mapper: "Mapper | str | None"
    ) -> Mapping:
        return self.state.select(model, mapper)

    # ------------------------------------------------------------------
    # HMPI_Group_create / HMPI_Group_free
    # ------------------------------------------------------------------
    def group_create(
        self,
        model: AbstractBoundModel,
        mapper: "Mapper | str | None" = None,
    ) -> HMPIGroup:
        """Create the group predicted to execute ``model`` fastest.

        Collective over the host and all free processes.  The host solves
        the selection problem and distributes the mapping; members obtain a
        communicator whose rank order equals the model's abstract-processor
        order.
        """
        world = self.comm_world
        if self.is_host():
            with self.state.lock:
                counter = self.state.creation_counter
                self.state.creation_counter += 1
                others = [r for r in self.state.participants() if r != HOST_RANK]
            mapping = self._select(model, mapper)
            payload = (counter, mapping.processes, mapping.machines, mapping.time)
            for r in others:
                world._send_internal(payload, r, _TAG_GROUP_CREATE)
        else:
            if not self.is_free():
                raise HMPIStateError(
                    f"HMPI_Group_create called by busy non-host process "
                    f"(world rank {self.rank})"
                )
            # The payload carries the creation counter; a constant tag is
            # safe because messages between a fixed pair never overtake
            # each other, so consecutive creations match in order.
            payload, _ = world._recv_internal(HOST_RANK, _TAG_GROUP_CREATE)
            counter, processes, machines, time = payload
            mapping = Mapping(tuple(processes), tuple(machines), time)
            with self.state.lock:
                self.state.creation_counter = max(
                    self.state.creation_counter, counter + 1
                )

        # Build the member communicator deterministically.
        comm = None
        if self.rank in mapping.processes:
            ctx = world._engine.allocate_context(("hmpi-group", counter))
            comm = Comm(world._engine, Group(mapping.processes), ctx, self.rank)
            with self.state.lock:
                self.state.free.discard(self.rank)
        group = HMPIGroup(
            gid=counter,
            mapping=mapping,
            comm=comm,
            parent_world_rank=HOST_RANK,
            my_world_rank=self.rank,
        )
        return group

    def group_free(self, group: HMPIGroup) -> None:
        """Free the group (collective over its members).

        Members synchronise on the group communicator (virtual time), mark
        themselves free, and then rendezvous in real time so that when any
        member — in particular the host, which is a member of every group
        via the pinned parent — returns, the whole membership change is
        visible to a subsequent ``group_create``.
        """
        if group.is_member:
            size = group.size
            gid = group.gid
            group.comm.barrier()
            state = self.state
            with state.free_cond:
                if self.rank != HOST_RANK:
                    state.free.add(self.rank)
                state.free_rendezvous[gid] = state.free_rendezvous.get(gid, 0) + 1
                if state.free_rendezvous[gid] >= size:
                    state.free_cond.notify_all()
                else:
                    while state.free_rendezvous.get(gid, 0) < size:
                        state.free_cond.wait()
        group._mark_freed()

    # ------------------------------------------------------------------
    # fault handling hooks (FT direction named in the paper's conclusion)
    # ------------------------------------------------------------------
    def mark_dead(self, world_rank: int) -> None:
        """Exclude a rank (on a failed machine) from future selections."""
        with self.state.lock:
            self.state.dead.add(world_rank)
            self.state.free.discard(world_rank)

    def get_comm(self, group: HMPIGroup):
        """HMPI_Get_comm: the MPI communicator behind a group handle."""
        return group.comm


def run_hmpi(
    app: Callable[..., Any],
    cluster: Cluster,
    placement: Sequence[int] | None = None,
    nprocs: int | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    mapper: "Mapper | str | None" = None,
    initial_speeds: Sequence[float] | None = None,
    timeout: float | None = 120.0,
    tracer: Any = None,
) -> MPIRunResult:
    """Run ``app(hmpi, *args, **kwargs)`` SPMD with the HMPI runtime.

    This brackets the application with ``HMPI_Init``/``HMPI_Finalize``: it
    builds the shared runtime state (network model seeded with nominal
    machine speeds unless ``initial_speeds`` is given) and hands every rank
    an :class:`HMPI` environment.  ``mapper`` may be a :class:`Mapper`
    instance or a registry string such as ``"default"`` or ``"greedy"``.
    ``tracer`` is forwarded to the engine (see
    :class:`repro.mpi.tracing.Tracer`).
    """
    if placement is None:
        placement = default_placement(cluster, nprocs)
    netmodel = NetworkModel(cluster, placement, initial_speeds)
    state = HMPIRuntimeState(netmodel, mapper)

    def wrapped(env: MPIEnv, *a: Any, **kw: Any) -> Any:
        return app(HMPI(env, state), *a, **kw)

    return run_mpi(
        wrapped, cluster, placement=placement,
        args=args, kwargs=kwargs, timeout=timeout, tracer=tracer,
    )
