"""Campaign telemetry is a pure side channel: identical results bytes
with or without a bus attached, progress events carry done/total/ETA."""

from repro.campaign import CampaignConfig, run_campaign
from repro.obs import EventBus

RAW = {
    "name": "t", "app": "timeof_em3d",
    "fixed": {"p": 3, "total_nodes": 600},
    "axes": {"mapper": ["greedy", "default"]},
}


class TestResultsPurity:
    def test_results_bytes_identical_with_and_without_bus(self):
        plain = run_campaign(CampaignConfig(RAW))
        bus = EventBus()
        monitored = run_campaign(CampaignConfig(RAW), telemetry=bus)
        bus.close()
        assert monitored.jsonl() == plain.jsonl(), (
            "attaching a telemetry bus changed the canonical results — "
            "wall-clock or monitor state leaked into a result row"
        )

    def test_written_results_file_identical(self, tmp_path):
        run_campaign(CampaignConfig(RAW), tmp_path / "plain")
        bus = EventBus()
        run_campaign(CampaignConfig(RAW), tmp_path / "mon", telemetry=bus)
        bus.close()
        assert (tmp_path / "plain" / "results.jsonl").read_bytes() == \
            (tmp_path / "mon" / "results.jsonl").read_bytes()


class TestProgressEvents:
    def run_with_bus(self):
        bus = EventBus()
        run_campaign(CampaignConfig(RAW), telemetry=bus)
        events = bus.tail()
        bus.close()
        return events

    def test_event_sequence(self):
        names = [(e.category, e.name) for e in self.run_with_bus()]
        assert names == [
            ("campaign", "start"),
            ("campaign", "cell.start"), ("campaign", "cell.finish"),
            ("campaign", "cell.start"), ("campaign", "cell.finish"),
            ("campaign", "finish"),
        ]

    def test_start_event_names_campaign_and_driver(self):
        start = self.run_with_bus()[0]
        assert start.payload["campaign"] == "t"
        assert start.payload["driver"] == "timeof_em3d"
        assert start.payload["total"] == 2

    def test_cell_finish_carries_wall_and_eta(self):
        events = self.run_with_bus()
        finishes = [e for e in events if e.name == "cell.finish"]
        first, last = finishes
        assert first.payload["done"] == 1 and first.payload["total"] == 2
        assert first.payload["status"] == "ok"
        assert first.payload["wall_seconds"] > 0.0
        # One cell left, mean wall == the one sample.
        assert first.payload["eta_seconds"] > 0.0
        assert last.payload["done"] == 2
        assert last.payload["eta_seconds"] == 0.0

    def test_finish_event_totals(self):
        finish = self.run_with_bus()[-1]
        assert finish.payload["runs"] == 2
        assert finish.payload["errors"] == 0
        assert finish.payload["wall_seconds"] > 0.0
