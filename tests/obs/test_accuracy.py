"""Prediction-accuracy tracker: pairing, error stats, rendering."""

import json
import math

import pytest

from repro.obs.accuracy import PredictionTracker, model_key


class TestModelKey:
    def test_string_passthrough(self):
        assert model_key("Jacobi") == "Jacobi"

    def test_named_model(self):
        class M:
            name = "ParallelAxB"

        assert model_key(M()) == "ParallelAxB"

    def test_bound_pmdl_model_uses_algorithm_name(self):
        from repro.apps.jacobi.model import bind_jacobi_model

        m = bind_jacobi_model(3, 100, 30, [10, 10, 8])
        assert model_key(m) == "Jacobi"

    def test_fallback_type_name(self):
        assert model_key(3.5) == "float"


class TestPairing:
    def test_measure_resolves_prediction(self):
        t = PredictionTracker()
        t.predict("mm", 2.0, vtime=1.0, mapper="GreedyMapper")
        rec = t.measure("mm", 2.2)
        assert rec is not None
        assert rec.measured == 2.2
        assert rec.rel_error == pytest.approx((2.0 - 2.2) / 2.2)

    def test_lifo_pairs_most_recent_prediction(self):
        # A Timeof sweep prices many block sizes under one model name;
        # the group-create selection predicts last, and that is the one
        # the measured run corresponds to.
        t = PredictionTracker()
        t.predict("mm", 10.0)   # sweep candidate
        t.predict("mm", 20.0)   # sweep candidate
        t.predict("mm", 2.0)    # the chosen selection
        rec = t.measure("mm", 2.1)
        assert rec.predicted == 2.0
        assert len(t.pairs("mm")) == 1

    def test_unmatched_measurement_kept_visible(self):
        t = PredictionTracker()
        assert t.measure("mm", 1.0) is None
        assert len(t) == 1
        assert math.isnan(t.records[0].predicted)
        # NaN-predicted records never count as pairs.
        assert t.pairs() == []

    def test_keys_do_not_cross(self):
        t = PredictionTracker()
        t.predict("a", 1.0)
        t.predict("b", 5.0)
        rec = t.measure("a", 1.1)
        assert rec.predicted == 1.0


class TestReport:
    def test_error_distribution(self):
        t = PredictionTracker()
        t.predict("m", 1.0)
        t.measure("m", 2.0)    # rel error -0.5
        t.predict("m", 3.0)
        t.measure("m", 2.0)    # rel error +0.5
        t.predict("m", 99.0)   # unresolved
        row = t.report()["m"]
        assert row["predictions"] == 3
        assert row["measured"] == 2
        assert row["mean_abs_rel_error"] == pytest.approx(0.5)
        assert row["max_abs_rel_error"] == pytest.approx(0.5)
        assert row["mean_rel_error"] == pytest.approx(0.0)

    def test_empty_report(self):
        assert PredictionTracker().report() == {}

    def test_to_json_round_trips(self):
        t = PredictionTracker()
        t.predict("m", 1.0, vtime=0.5, mapper="GreedyMapper")
        t.measure("m", 1.25)
        blob = json.loads(t.to_json())
        assert blob["report"]["m"]["measured"] == 1
        assert blob["records"][0]["mapper"] == "GreedyMapper"

    def test_render_table(self):
        t = PredictionTracker()
        t.predict("m", 1.0)
        t.measure("m", 1.0)
        out = t.render()
        assert "Timeof prediction accuracy" in out
        assert "m" in out
        assert "0.00%" in out
