"""Scenario builders: clusters, loads, faults, churn specs."""

import numpy as np
import pytest

from repro.campaign import (
    build_cluster,
    build_load_model,
    apply_scenario,
    normalize_churn,
)
from repro.cluster.load import (
    ConstantLoad,
    DiurnalLoad,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
)
from repro.util.errors import CampaignError


def rng():
    return np.random.default_rng(0)


class TestBuildCluster:
    def test_presets(self):
        assert build_cluster("paper").size == 9
        assert build_cluster("two_site").topology is not None

    def test_uniform(self):
        c = build_cluster({"kind": "uniform", "speeds": [10, 20]})
        assert [m.speed for m in c.machines] == [10.0, 20.0]

    def test_homogeneous_and_random(self):
        assert build_cluster({"kind": "homogeneous", "n": 3}).size == 3
        a = build_cluster({"kind": "random", "n": 4, "seed": 1})
        b = build_cluster({"kind": "random", "n": 4, "seed": 1})
        assert [m.speed for m in a.machines] == [m.speed for m in b.machines]

    def test_topology_two_site(self):
        c = build_cluster({"kind": "topology", "preset": "two_site",
                           "machines_per_site": 3, "speed": 50.0})
        assert c.size == 6
        assert c.topology is not None
        assert all(m.speed == 50.0 for m in c.machines)

    def test_topology_clusters_of_clusters(self):
        c = build_cluster({
            "kind": "topology", "preset": "clusters_of_clusters",
            "sites": 2, "subnets_per_site": 2, "machines_per_subnet": 2,
            "speeds": [10, 20, 30, 40, 50, 60, 70, 80]})
        assert c.size == 8
        assert [m.speed for m in c.machines] == [
            10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]
        # Three levels: the DCA of two sites is the WAN root.
        assert c.topology.root.kind == "site"

    def test_topology_defaults_match_the_presets(self):
        from repro.cluster.presets import clusters_of_clusters, two_site_network
        a = build_cluster({"kind": "topology", "preset": "two_site"})
        assert a.size == two_site_network().size
        b = build_cluster({"kind": "topology",
                           "preset": "clusters_of_clusters"})
        assert b.size == clusters_of_clusters().size

    @pytest.mark.parametrize("bad", [
        "no_such_preset",
        42,
        {"kind": "nope"},
        {"kind": "uniform", "speeds": []},
        {"kind": "uniform"},
        {"kind": "uniform", "speeds": ["x"]},
        {"kind": "topology"},
        {"kind": "topology", "preset": "nope"},
        {"kind": "topology", "preset": "two_site", "sites": 3},
        {"kind": "topology", "preset": "two_site", "machines_per_site": 1},
        {"kind": "topology", "preset": "clusters_of_clusters",
         "speeds": []},
        {"kind": "topology", "preset": "clusters_of_clusters",
         "speeds": [100.0]},
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(CampaignError):
            build_cluster(bad)


class TestBuildLoadModel:
    def test_kinds(self):
        assert isinstance(
            build_load_model({"kind": "constant", "share": 0.5}, rng()),
            ConstantLoad)
        assert isinstance(
            build_load_model({"kind": "step", "steps": [[1.0, 0.5]]}, rng()),
            StepLoad)
        assert isinstance(
            build_load_model({"kind": "square", "period": 2.0}, rng()),
            SquareWaveLoad)
        assert isinstance(
            build_load_model({"kind": "random_walk", "interval": 1.0,
                              "seed": 3}, rng()),
            RandomWalkLoad)
        assert isinstance(
            build_load_model({"kind": "diurnal"}, rng()),
            DiurnalLoad)

    def test_diurnal_spec_fields(self):
        load = build_load_model(
            {"kind": "diurnal", "day": 12.0, "phase": 0.5,
             "profile": [[0.0, 1.0], [0.5, 0.5]]}, rng())
        assert load.day == 12.0
        assert load.share_at(0.0) == 0.5   # phase=0.5 starts mid-day
        assert load.share_at(6.0) == 1.0

    def test_diurnal_is_deterministic_without_rng(self):
        a = build_load_model({"kind": "diurnal"}, np.random.default_rng(1))
        b = build_load_model({"kind": "diurnal"}, np.random.default_rng(2))
        assert [a.share_at(t) for t in (0.0, 9.0, 13.0)] \
            == [b.share_at(t) for t in (0.0, 9.0, 13.0)]

    def test_random_walk_seed_from_run_rng_is_deterministic(self):
        a = build_load_model({"kind": "random_walk", "interval": 1.0},
                             np.random.default_rng(5))
        b = build_load_model({"kind": "random_walk", "interval": 1.0},
                             np.random.default_rng(5))
        assert [a.share_at(t) for t in (0.5, 1.5, 2.5)] \
            == [b.share_at(t) for t in (0.5, 1.5, 2.5)]

    @pytest.mark.parametrize("bad", [
        {"kind": "nope"},
        {"kind": "square"},                      # missing period
        {"kind": "random_walk"},                 # missing interval
        {"kind": "constant", "share": 2.0},
        {"kind": "diurnal", "day": -1.0},
        {"kind": "diurnal", "profile": [[0.2, 0.5]]},
        "not-a-dict",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(CampaignError):
            build_load_model(bad, rng())


class TestApplyScenario:
    def test_deaths_and_loads(self):
        c = build_cluster({"kind": "uniform", "speeds": [100.0] * 3})
        apply_scenario(c, rng(), deaths={"2": 0.04},
                       loads={"1": {"kind": "constant", "share": 0.5}})
        assert c.machines[2].fail_at == 0.04
        assert c.machines[1].load.share_at(0.0) == 0.5

    def test_transient_attaches_with_derived_seed(self):
        c = build_cluster({"kind": "uniform", "speeds": [100.0] * 3})
        apply_scenario(c, np.random.default_rng(9),
                       transient={"drop_prob": 0.2})
        assert c.transient_faults is not None
        d = build_cluster({"kind": "uniform", "speeds": [100.0] * 3})
        apply_scenario(d, np.random.default_rng(9),
                       transient={"drop_prob": 0.2})
        assert c.transient_faults.seed == d.transient_faults.seed

    @pytest.mark.parametrize("kwargs", [
        {"deaths": {"9": 0.1}},                  # out of range
        {"deaths": {"x": 0.1}},                  # not an index
        {"transient": {"drop_prob": 7.0}},       # invalid config
        {"loads": {"0": {"kind": "nope"}}},
    ])
    def test_bad_specs_raise(self, kwargs):
        c = build_cluster({"kind": "uniform", "speeds": [100.0] * 3})
        with pytest.raises(CampaignError):
            apply_scenario(c, rng(), **kwargs)


class TestNormalizeChurn:
    def test_sorted_by_time(self):
        events = normalize_churn([
            {"t": 0.5, "op": "join", "machine": 2},
            {"t": 0.1, "op": "leave", "machine": 2},
        ], 4)
        assert [e.op for e in events] == ["leave", "join"]

    def test_none_is_empty(self):
        assert normalize_churn(None, 4) == []

    @pytest.mark.parametrize("bad", [
        "not-a-list",
        [{"t": 0.1, "op": "leave"}],                        # missing key
        [{"t": 0.1, "op": "explode", "machine": 1}],
        [{"t": 0.1, "op": "leave", "machine": 9}],          # out of range
        [{"t": 0.1, "op": "leave", "machine": 0}],          # host machine
        [{"t": -1.0, "op": "leave", "machine": 1}],
        [{"t": "x", "op": "leave", "machine": 1}],
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(CampaignError):
            normalize_churn(bad, 4)
