"""EM3D: the paper's irregular application (Section 3)."""

from .model import EM3D_MODEL_SOURCE, bind_em3d_model, em3d_model
from .parallel import EM3DRunResult, em3d_algorithm, run_em3d_hmpi, run_em3d_mpi
from .problem import EM3DProblem, SubBody, generate_problem
from .serial import em3d_step_local, make_recon_benchmark, serial_em3d, update_field

__all__ = [
    "EM3DProblem",
    "SubBody",
    "generate_problem",
    "update_field",
    "em3d_step_local",
    "serial_em3d",
    "make_recon_benchmark",
    "EM3D_MODEL_SOURCE",
    "em3d_model",
    "bind_em3d_model",
    "em3d_algorithm",
    "run_em3d_mpi",
    "run_em3d_hmpi",
    "EM3DRunResult",
]
