"""Repair overhead — fault-tolerant Jacobi vs fault-free runs.

Not a paper figure: quantifies the cost of surviving a machine death with
``HMPI_Group_repair`` + checkpoint rollback.  For each death time the
sweep reports the virtual makespan of the faulty run against the
fault-free baseline, splitting the overhead into lost work (the sweeps
between the last checkpoint and the death, redone after rollback) and
the repair protocol itself.  The checkpoint-interval column shows the
classic trade-off: frequent checkpoints cost transfer time up front but
bound the rollback.
"""

import numpy as np
import pytest

from repro.apps.jacobi import jacobi_reference, run_jacobi_ft
from repro.cluster import FaultSchedule, inject_faults, uniform_network
from repro.util.tables import Table

N = 30
NITER = 16
K = 100
SPEEDS = [100.0] * 4
DEATH_TIMES = [0.02, 0.08, 0.16]
CHECKPOINT_EVERY = [1, 2, 4]


def _cluster(death_at=None):
    cluster = uniform_network(list(SPEEDS))
    if death_at is not None:
        inject_faults(cluster, FaultSchedule({"m02": death_at}))
    return cluster


def _run(death_at=None, checkpoint_every=2):
    return run_jacobi_ft(
        _cluster(death_at), n=N, p=len(SPEEDS), niter=NITER, k=K,
        checkpoint_every=checkpoint_every, timeout=120,
    )


def _sweep():
    ref = jacobi_reference(N, NITER)
    rows = []
    for every in CHECKPOINT_EVERY:
        clean = _run(checkpoint_every=every)
        assert np.array_equal(clean.grid, ref)
        for death_at in DEATH_TIMES:
            faulty = _run(death_at, checkpoint_every=every)
            assert faulty.grid is not None, faulty.error
            assert np.array_equal(faulty.grid, ref)
            assert faulty.repairs >= 1
            rows.append((every, death_at, clean.makespan, faulty.makespan,
                         faulty.repairs, faulty.checkpoint_restores))
    return rows


def test_ft_repair_overhead(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    t = Table("ckpt every", "death at (s)", "t_clean (s)", "t_faulty (s)",
              "overhead", "repairs", "restores",
              title=f"Repair overhead — FT Jacobi n={N}, {NITER} sweeps, "
                    f"{len(SPEEDS)} machines, one death")
    for every, death_at, t_clean, t_faulty, repairs, restores in rows:
        t.add(every, death_at, t_clean, t_faulty,
              f"{(t_faulty / t_clean - 1.0) * 100:+.0f}%", repairs, restores)
    report.emit(t.render())

    for every, death_at, t_clean, t_faulty, repairs, restores in rows:
        # Surviving a death is never free, but must stay bounded: the
        # rollback redoes at most `every` sweeps plus the repair protocol.
        assert t_faulty > t_clean
        assert t_faulty < 5.0 * t_clean, (
            f"repair overhead exploded: {t_faulty} vs {t_clean} "
            f"(ckpt={every}, death={death_at})"
        )
