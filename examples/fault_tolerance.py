#!/usr/bin/env python3
"""Surviving a machine failure and regrouping.

The paper names resource failures as an HNOC challenge and, in its
conclusion, envisions a library combining HMPI's heterogeneity support
with FT-MPI-style fault tolerance.  This example exercises the
reproduction's fault-injection path: a machine dies mid-run, the affected
rank drops out, the survivors mark it dead and create a fresh (smaller)
group that excludes the dead machine.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import FaultSchedule, inject_faults, paper_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel
from repro.util.errors import MachineFailure

WORK = 300.0
DOOMED_RANK = 6  # one world process per machine: rank 6 is on ws06


def model(nproc):
    return CallableModel(nproc, lambda i: WORK, lambda s, d: 8192.0,
                         name=f"work-{nproc}")


def app(hmpi):
    # Phase 1: everyone tries a chunk of work; the rank on the doomed
    # machine dies inside compute() with MachineFailure.
    try:
        hmpi.compute(50.0)
    except MachineFailure as failure:
        return {"status": "lost", "failure": str(failure)}

    # Survivors agree on who is gone (in a real deployment this comes from
    # a failure detector; here every survivor knows the schedule).
    hmpi.mark_dead(DOOMED_RANK)

    # Phase 2: regroup on the survivors and finish the job.
    gid = hmpi.group_create(model(4))
    out = {"status": "not-selected", "group": gid.world_ranks}
    if gid.is_member:
        comm = gid.comm
        comm.barrier()
        t0 = comm.wtime()
        hmpi.compute(WORK, gid.my_concurrency)
        comm.barrier()
        out = {
            "status": "finished",
            "group": gid.world_ranks,
            "group_rank": comm.rank,
            "elapsed": comm.wtime() - t0,
        }
        hmpi.group_free(gid)
    return out


def main():
    cluster = paper_network()
    # ws06 (the fastest machine) dies almost immediately.
    inject_faults(cluster, FaultSchedule({"ws06": 0.05}))

    result = run_hmpi(app, cluster, timeout=30)
    print("injected failure: ws06 at t=0.05 virtual s\n")
    group = None
    for rank, out in enumerate(result.results):
        if out["status"] == "lost":
            print(f"  rank {rank}: LOST — {out['failure']}")
        elif out["status"] == "finished":
            group = out["group"]
            print(f"  rank {rank}: finished as group rank "
                  f"{out['group_rank']} in {out['elapsed']:.3f} virtual s")
        else:
            print(f"  rank {rank}: survived, not selected")

    assert group is not None
    assert DOOMED_RANK not in group, "dead machine reused!"
    print(f"\nregrouped computation ran on world ranks {group} — the dead")
    print("machine was excluded from selection and never touched again.")


if __name__ == "__main__":
    main()
