"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig09_defaults(self):
        args = build_parser().parse_args(["fig09"])
        assert args.slots == 2
        assert args.niter == 8


class TestCommands:
    def test_fig09_small(self, capsys):
        assert main(["fig09", "--sizes", "4500", "--niter", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "4500" in out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--sizes", "9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "speedup" in out

    def test_cluster_json(self, capsys):
        assert main(["cluster", "--preset", "paper"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert len(blob["machines"]) == 9
        assert blob["machines"][6]["speed"] == 176

    def test_compile_model_file(self, tmp_path, capsys):
        model = tmp_path / "ring.mpc"
        model.write_text("""
        algorithm Ring(int p, int v[p]) {
          coord I=p;
          node {I>=0: bench*(v[I]);};
          link (L=p) { L == (I+1)%p : length*(64) [L]->[I]; };
          parent[0];
        }
        """)
        assert main(["compile", str(model)]) == 0
        out = capsys.readouterr().out
        assert "compiled 1 algorithm(s): Ring" in out
        assert "algorithm Ring" in out

    def test_compile_with_external_call(self, tmp_path, capsys):
        model = tmp_path / "ext.mpc"
        model.write_text("""
        algorithm Ext(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme { Helper(p); };
        }
        """)
        assert main(["compile", str(model)]) == 0
        assert "Ext" in capsys.readouterr().out
