"""Figure 9 — EM3D execution time and speedup, HMPI vs MPI.

Paper setup: 9 Solaris/Linux workstations, speeds 46x6/176/106/9, 100 Mbit
switched Ethernet; execution times averaged over problem sizes, HMPI
"almost 1.5 times faster" (Figure 9(a) times, 9(b) speedup).

Here we sweep the total node count on the same simulated network.  Two
HMPI configurations are reported: one process slot per machine (the
selection can only permute sub-bodies) and two slots per machine (the
runtime may co-locate sub-bodies on fast machines and skip the speed-9
workstation — closer to a real HMPI deployment, and where the benefit
stabilises).
"""

import pytest

from repro.apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from repro.cluster import paper_network
from repro.util.tables import Table

NODE_COUNTS = [9_000, 18_000, 27_000, 36_000]
NITER = 8
K = 100
SEED = 42


def _sweep():
    rows = []
    for total in NODE_COUNTS:
        problem = generate_problem(p=9, total_nodes=total, seed=SEED)
        mpi = run_em3d_mpi(paper_network(), problem, niter=NITER, k=K)
        h1 = run_em3d_hmpi(paper_network(), problem, niter=NITER, k=K,
                           procs_per_machine=1)
        h2 = run_em3d_hmpi(paper_network(), problem, niter=NITER, k=K,
                           procs_per_machine=2)
        assert mpi.checksum == h1.checksum == h2.checksum
        rows.append((total, mpi.algorithm_time, h1.algorithm_time,
                     h2.algorithm_time, h2.predicted_time))
    return rows


def test_fig09_em3d(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    a = Table("total nodes", "t_MPI (s)", "t_HMPI 1/mach (s)",
              "t_HMPI 2/mach (s)", "Timeof pred (s)",
              title="Figure 9(a) — EM3D execution time (virtual seconds)")
    b = Table("total nodes", "speedup 1/mach", "speedup 2/mach",
              title="Figure 9(b) — speedup of HMPI over MPI (paper: ~1.5)")
    for total, t_mpi, t_h1, t_h2, pred in rows:
        a.add(total, t_mpi, t_h1, t_h2, pred)
        b.add(total, t_mpi / t_h1, t_mpi / t_h2)
    report.emit(a.render())
    report.emit(b.render())

    # Shape assertions: HMPI never loses, and with deployment freedom the
    # win is decisive on every problem size.
    for total, t_mpi, t_h1, t_h2, pred in rows:
        assert t_h1 <= t_mpi * 1.001
        assert t_mpi / t_h2 > 1.3
        assert pred == pytest.approx(t_h2, rel=0.1)
