"""The HMPI runtime system.

One :class:`HMPIRuntimeState` is shared by all ranks of a run (the
algorithm-independent part of the runtime); each rank holds an
:class:`HMPI` environment (created by :func:`run_hmpi`) exposing the
paper's principal operations as methods:

===============================  =====================================
paper                            here
===============================  =====================================
``HMPI_Init / HMPI_Finalize``    ``run_hmpi`` brackets the app
``HMPI_COMM_WORLD``              ``hmpi.comm_world``
``HMPI_Is_host/Is_free/...``     ``hmpi.is_host()/is_free()/is_member``
``HMPI_Recon``                   ``hmpi.recon``
``HMPI_Timeof``                  ``hmpi.timeof``
``HMPI_Group_create``            ``hmpi.group_create``
``HMPI_Group_free``              ``hmpi.group_free``
``HMPI_Get_comm``                ``group.comm``
===============================  =====================================

(The flat C-style names are also provided, see :mod:`repro.core.api`.)

Group creation is collective over the parent (host) and all free
processes.  The host runs the selection algorithm against the network
model and distributes the chosen mapping point-to-point, so processes that
are busy in other groups are never touched — matching the paper's rule
that ``HMPI_Group_create`` "must be called by the parent and all the
processes, which are not members of any HMPI group".

**Fault tolerance** (the direction the paper's conclusion names, FT-MPI
style).  The creation exchange is a two-phase *map/commit* protocol so a
mid-exchange machine death can never leave participants with divergent
mappings; ``group_repair`` reforms a group around the survivors of a
broken one, marking dead machines in the network model (which bumps the
speed epoch, so every cached selection and ``HMPI_Timeof`` answer is
recomputed over the surviving subset — degraded mode).  See
``docs/FAULTS.md`` for the walkthrough.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Any

from ..cluster.network import Cluster
from ..mpi.communicator import Comm
from ..mpi.engine import FTConfig
from ..mpi.group import Group
from ..mpi.launcher import MPIEnv, MPIRunResult, default_placement, run_mpi
from ..perfmodel.model import AbstractBoundModel
from ..util.errors import (
    HMPIRepairError,
    HMPIStateError,
    MachineFailure,
    MappingError,
    OptionError,
    RankFailedError,
)
from ..util.options import check_choice
from .group import HMPIGroup
from .mapper import (
    DefaultMapper,
    Mapper,
    Mapping,
    _supports_backend,
    _supports_stats,
    resolve_mapper,
)
from .netmodel import NetworkModel
from .seleng import TIMEOF_BACKENDS, SelectionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.core import Observability

__all__ = ["HMPI", "HMPIRuntimeState", "run_hmpi", "HOST_RANK"]

#: World rank of the host process (the paper's dedicated host-processor).
HOST_RANK = 0

# Internal world-context tags (distinct from both user tags >= 0 and
# collective tags <= -1_000_000 by living in their own negative band).
_TAG_GROUP_CREATE = -2_000_000
_TAG_REPAIR = -2_000_001

#: Bound on protocol-level receive retries after a spurious wake (stall
#: resolution may wake a waiter as collateral damage of an unrelated
#: failure); guarantees real-time termination of the exchange loops.  A
#: free process can sit through several repairs it takes no part in, each
#: contributing a few collateral wakes, so the bound is generous.
_MAX_PROTO_RETRIES = 64


class HMPIRuntimeState:
    """Shared, lock-protected state of one HMPI run.

    ``mapper`` may be a :class:`Mapper` instance or a registry string
    (``"default"``, ``"greedy"``, ...); ``None`` selects the runtime
    default.  The state also owns the **selection cache**: repeated
    ``timeof``/``group_create`` on the same model between ``recon``
    refreshes are answered in O(1), keyed by (model identity, mapper
    identity, network-model speed epoch, candidate set, pins).
    ``selection_stats`` counts cache hits/misses and engine evaluations.
    """

    #: Cached selections retained (LRU); stale epochs age out naturally.
    SELECTION_CACHE_SIZE = 64

    def __init__(self, netmodel: NetworkModel, mapper: "Mapper | str | None" = None,
                 obs: "Observability | None" = None,
                 timeof_backend: str | None = None):
        self.netmodel = netmodel
        self.mapper = resolve_mapper(mapper, default=None) or DefaultMapper()
        # Timeof pricing backend (seleng.TIMEOF_BACKENDS), validated
        # eagerly so a typo fails at construction, not first selection.
        # Constant for the state's lifetime, so it needs no slot in the
        # selection-cache key.
        self.timeof_backend = check_choice(
            "timeof backend", timeof_backend or "trace", TIMEOF_BACKENDS,
            OptionError,
        )
        # Observability bundle (metrics/spans/accuracy); None = off, and
        # every instrumented path then costs a single attribute check.
        self.obs = obs
        self.lock = threading.RLock()
        # Free = not a member of any HMPI group.  The host is permanently
        # the parent of the world group, so it is never "free" but always
        # participates in creation.
        self.free: set[int] = set(range(netmodel.nprocs)) - {HOST_RANK}
        self.creation_counter = 0
        self.dead: set[int] = set()  # world ranks on failed machines
        # World ranks administratively withdrawn (machine churn "leave"):
        # excluded from selection like dead ranks, but their machines are
        # healthy and they can be readmitted (churn "join") — see
        # HMPI.depart_machine / HMPI.admit_machine.
        self.departed: set[int] = set()
        # Rendezvous counters for group_free (gid -> arrivals); waiters
        # block in the engine (wait_until), not on a real-time condition.
        self.free_rendezvous: dict[int, int] = {}
        self.selection_stats = SelectionStats()
        # key -> (Mapping, model ref, mapper ref); the refs keep the ids in
        # the key stable for the entry's lifetime.
        self._selection_cache: OrderedDict[tuple, tuple[Mapping, Any, Any]] = (
            OrderedDict()
        )
        if obs is not None:
            # The registry absorbs the ad-hoc SelectionStats: snapshots
            # re-publish its live totals as hmpi.selection.* series.
            obs.attach_selection_stats(self.selection_stats)

    def _emit(self, category: str, name: str, **payload: Any) -> None:
        """Stream a telemetry event when the obs bundle carries a bus.

        Costs two attribute checks when telemetry is off; hot categories
        (``selection``) are tamed by the bus's per-category sampling, not
        by the emitter.
        """
        obs = self.obs
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.emit(category, name, **payload)

    def participants(self) -> list[int]:
        """Host plus free processes, excluding dead and departed ranks."""
        with self.lock:
            alive_free = sorted(self.free - self.dead - self.departed)
        return [HOST_RANK] + alive_free

    # ------------------------------------------------------------------
    # selection (with cache)
    # ------------------------------------------------------------------
    def select(
        self,
        model: AbstractBoundModel,
        mapper: "Mapper | str | None" = None,
        fixed: dict[int, int] | None = None,
        candidates: Sequence[int] | None = None,
        info: dict | None = None,
    ) -> Mapping:
        """Solve (or recall) the selection problem for ``model``.

        Cached per (model, mapper, speed epoch, candidates, pins): the
        prediction stays valid until a ``recon`` bumps the network model's
        speed epoch, a machine failure is recorded (same epoch mechanism),
        or the pool of free processes changes.  ``candidates`` overrides
        the default pool (host + free − dead) — group repair passes the
        survivor set explicitly.  ``info``, when given, is filled with how
        the answer was obtained (``cache`` hit/miss, candidate count,
        engine ``evaluations`` spent) for span attributes and debugging.
        """
        with self.lock:
            netmodel = self.netmodel
            use_mapper = resolve_mapper(mapper, default=self.mapper)
            if candidates is None:
                candidates = tuple(self.participants())
            else:
                candidates = tuple(candidates)
        if fixed is None:
            fixed = {model.parent_index(): HOST_RANK}
        if info is not None:
            info["candidates"] = len(candidates)
        key = (
            id(model),
            id(use_mapper),
            netmodel.speed_epoch,
            candidates,
            tuple(sorted(fixed.items())),
        )
        with self.lock:
            entry = self._selection_cache.get(key)
            if entry is not None:
                self._selection_cache.move_to_end(key)
                self.selection_stats.cache_hits += 1
                if info is not None:
                    info["cache"] = "hit"
                    info["evaluations"] = 0
                self._emit("selection", "cache.hit",
                           candidates=len(candidates))
                return entry[0]
            self.selection_stats.cache_misses += 1
            self._emit("selection", "cache.miss",
                       candidates=len(candidates),
                       epoch=netmodel.speed_epoch)
            stats = self.selection_stats
            evals_before = stats.evaluations
            if info is not None:
                info["cache"] = "miss"
        kwargs: dict[str, Any] = {}
        if _supports_stats(use_mapper):
            kwargs["stats"] = stats
        if self.timeof_backend != "trace" and _supports_backend(use_mapper):
            kwargs["backend"] = self.timeof_backend
        mapping = use_mapper.select(
            model, netmodel, list(candidates), fixed, **kwargs
        )
        with self.lock:
            if info is not None:
                info["evaluations"] = stats.evaluations - evals_before
            self._selection_cache[key] = (mapping, model, use_mapper)
            while len(self._selection_cache) > self.SELECTION_CACHE_SIZE:
                self._selection_cache.popitem(last=False)
        return mapping

    def invalidate_selections(self) -> None:
        """Drop every cached selection (speed-epoch bumps do this lazily)."""
        with self.lock:
            self._selection_cache.clear()


class HMPI:
    """Per-rank HMPI environment (wraps the rank's MPI environment)."""

    def __init__(self, env: MPIEnv, state: HMPIRuntimeState):
        self.env = env
        self.state = state
        self.comm_world = env.comm_world  # the paper's HMPI_COMM_WORLD

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    @property
    def obs(self) -> "Observability | None":
        """The run's observability bundle (None when not instrumented)."""
        return self.state.obs

    def _span(self, name: str, **attrs: Any):
        """Span context around a runtime operation; no-op without obs."""
        obs = self.state.obs
        if obs is None:
            return nullcontext()
        return obs.spans.span(name, self.rank, self.env.wtime, **attrs)

    def _count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        obs = self.state.obs
        if obs is not None:
            obs.metrics.counter(name, **labels).inc(amount)
            obs.metrics.mark_vtime(self.env.wtime())

    def record_measured(self, model: "AbstractBoundModel | str",
                        seconds: float) -> None:
        """Report the engine-measured execution time of ``model``'s region.

        Resolves the most recent unresolved ``Timeof``/selection estimate
        of the same model (see
        :class:`repro.obs.accuracy.PredictionTracker`), feeding the
        predicted-vs-measured accuracy report.  No-op without obs.
        """
        obs = self.state.obs
        if obs is None:
            return
        from ..obs.accuracy import model_key

        key = model if isinstance(model, str) else model_key(model)
        obs.accuracy.measure(key, seconds)

    # ------------------------------------------------------------------
    # identity predicates
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """World rank within HMPI_COMM_WORLD."""
        return self.env.rank

    @property
    def size(self) -> int:
        return self.env.size

    def is_host(self) -> bool:
        """HMPI_Is_host: whether this is the dedicated host process."""
        return self.rank == HOST_RANK

    def is_free(self) -> bool:
        """HMPI_Is_free: not a member of any HMPI group."""
        with self.state.lock:
            return self.rank in self.state.free

    def is_member(self, group: HMPIGroup) -> bool:
        """HMPI_Is_member for a created group handle."""
        return group.is_member

    # ------------------------------------------------------------------
    # computation / timing passthroughs
    # ------------------------------------------------------------------
    def compute(self, volume: float, concurrency: int | None = None) -> float:
        """Charge ``volume`` benchmark units of modelled computation.

        Pass ``concurrency=group.my_concurrency`` inside a group's
        algorithm so speed sharing matches what the selection assumed.
        """
        return self.env.compute(volume, concurrency)

    def wtime(self) -> float:
        return self.env.wtime()

    # ------------------------------------------------------------------
    # HMPI_Recon
    # ------------------------------------------------------------------
    def recon(
        self,
        benchmark: Callable[[MPIEnv], Any] | None = None,
        volume: float = 1.0,
    ) -> float:
        """Refresh the runtime's processor-speed estimates.

        Collective over HMPI_COMM_WORLD.  Every process executes the
        benchmark function (default: ``volume`` benchmark units of pure
        computation), the elapsed virtual times are allgathered, and the
        network model's speed estimates are replaced by what the benchmark
        actually observed — capturing external load, exactly as the paper
        prescribes for multi-user machines.

        Returns this process's own measured speed (benchmark units/sec).
        """
        with self._span("HMPI_Recon", volume=volume) as sp:
            t0 = self.env.wtime()
            if benchmark is None:
                self.env.compute(volume)
            else:
                benchmark(self.env)
            elapsed = self.env.wtime() - t0
            times = self.comm_world.allgather(elapsed)
            with self.state.lock:
                self.state.netmodel.update_speeds_from_benchmark(times, volume)
            if sp is not None:
                sp.attrs["elapsed"] = elapsed
                sp.attrs["speed"] = volume / elapsed
            self._count("hmpi.recon.calls")
        return volume / elapsed

    # ------------------------------------------------------------------
    # HMPI_Timeof
    # ------------------------------------------------------------------
    def timeof(
        self,
        model: AbstractBoundModel,
        mapper: "Mapper | str | None" = None,
        iterations: float = 1.0,
    ) -> float:
        """Predict the execution time of ``model`` without running it.

        Local operation: runs the selection algorithm against the current
        network model and returns the predicted time of the best group,
        scaled by ``iterations`` (the model describes one scheme run; the
        paper's models describe one iteration/step sequence).  ``mapper``
        may be an instance or a registry string.  Selections are cached:
        repeated calls on the same model are O(1) until ``recon`` refreshes
        the speed estimates or the free-process pool changes.
        """
        obs = self.state.obs
        if obs is None:
            return self.state.select(model, mapper).time * iterations
        from ..obs.accuracy import model_key

        info: dict = {}
        with self._span("HMPI_Timeof", model=model_key(model)) as sp:
            mapping = self.state.select(model, mapper, info=info)
            predicted = mapping.time * iterations
            sp.attrs.update(info, predicted=predicted)
            obs.accuracy.predict(
                model_key(model), predicted, vtime=self.env.wtime(),
                mapper=type(resolve_mapper(mapper,
                                           default=self.state.mapper)).__name__,
            )
            self._count("hmpi.timeof.calls")
        return predicted

    @property
    def selection_stats(self) -> SelectionStats:
        """Selection-cache and engine counters of this run."""
        return self.state.selection_stats

    def _select(
        self, model: AbstractBoundModel, mapper: "Mapper | str | None"
    ) -> Mapping:
        return self.state.select(model, mapper)

    # ------------------------------------------------------------------
    # HMPI_Group_create / HMPI_Group_free
    # ------------------------------------------------------------------
    def group_create(
        self,
        model: "AbstractBoundModel | Callable[[int], AbstractBoundModel]",
        mapper: "Mapper | str | None" = None,
    ) -> HMPIGroup | None:
        """Create the group predicted to execute ``model`` fastest.

        Collective over the host and all free processes.  The host solves
        the selection problem and distributes the mapping; members obtain a
        communicator whose rank order equals the model's abstract-processor
        order.  ``model`` is consulted only on the host and may be a
        callable ``n_candidates -> bound model`` (fault-tolerant callers
        size the group to however many processes survive).

        Failure-aware: the exchange is a two-phase *map/commit* protocol.
        The host resends an updated mapping (with the dead rank excluded
        and the selection recomputed) if a participant dies before the
        commit goes out, so no participant can act on a superseded
        mapping.  Returns None at a free process the host released with
        :meth:`release_free`.
        """
        world = self.comm_world
        with self._span("HMPI_Group_create",
                        role="host" if self.is_host() else "free") as sp:
            if self.is_host():
                with self.state.lock:
                    counter = self.state.creation_counter
                    self.state.creation_counter += 1
                recipients = {r: _TAG_GROUP_CREATE for r in self._free_pool()}
                mapping = self._host_distribute(counter, model, mapper,
                                                recipients, span=sp)
                self._count("hmpi.groups.created")
            else:
                if not self.is_free():
                    self._raise_if_doomed()
                    raise HMPIStateError(
                        f"HMPI_Group_create called by busy non-host process "
                        f"(world rank {self.rank})"
                    )
                got = self._await_mapping(_TAG_GROUP_CREATE)
                if got is None:  # released by the host
                    if sp is not None:
                        sp.attrs["released"] = True
                    return None
                counter, mapping = got
                with self.state.lock:
                    self.state.creation_counter = max(
                        self.state.creation_counter, counter + 1
                    )
            if sp is not None:
                sp.attrs.update(gid=counter, size=len(mapping.processes),
                                predicted=mapping.time,
                                member=self.rank in mapping.processes)
            return self._materialize(counter, mapping)

    # -- creation/repair exchange internals ----------------------------

    def _free_pool(self, include_departed: bool = False) -> list[int]:
        """Free, alive, still-running ranks able to join a new group.

        Departed ranks (administrative churn "leave") are excluded from
        selection exchanges; ``release_free`` passes
        ``include_departed=True`` so ranks parked through an absence still
        receive their release sentinel at the end of the run.
        """
        engine = self.comm_world._engine
        with self.state.lock:
            pool = self.state.free - self.state.dead
            if not include_departed:
                pool -= self.state.departed
        return [r for r in sorted(pool) if not engine.procs[r].finished]

    def _host_distribute(
        self,
        counter: int,
        model: "AbstractBoundModel | Callable[[int], AbstractBoundModel]",
        mapper: "Mapper | str | None",
        recipients: dict[int, int],
        span: Any = None,
    ) -> Mapping:
        """Two-phase mapping exchange, host side (``rank -> tag`` targets).

        Phase 1 sends ``("map", counter, attempt, ...)`` to every living
        recipient; phase 2 sends ``("commit", counter, attempt)``.  A send
        failure in phase 1 marks the rank dead, re-runs the selection over
        the survivors and restarts with ``attempt + 1`` — per-pair message
        ordering guarantees every recipient sees that map before its
        commit.  A phase-2 failure only marks the rank dead: if it was a
        selected member the group is born broken and the first operation
        on it surfaces a typed error, escalating to ``group_repair``.

        ``model`` may be a callable ``n_candidates -> bound model`` so a
        death *during* the exchange can shrink the requested group instead
        of making the selection infeasible.
        """
        world = self.comm_world
        attempt = 0
        while True:
            with self.state.lock:
                targets = [r for r in sorted(recipients)
                           if r not in self.state.dead]
            candidates = [HOST_RANK] + targets
            use_model = model
            if callable(model) and not isinstance(model, AbstractBoundModel):
                use_model = model(len(candidates))
            info: dict | None = {} if span is not None else None
            try:
                mapping = self.state.select(use_model, mapper,
                                            candidates=candidates, info=info)
            except MappingError:
                for r in targets:
                    try:
                        world._send_internal(("abort", counter, attempt),
                                             r, recipients[r])
                    except RankFailedError:
                        pass
                raise
            payload = ("map", counter, attempt,
                       mapping.processes, mapping.machines, mapping.time)
            restart = False
            for r in targets:
                try:
                    world._send_internal(payload, r, recipients[r])
                except RankFailedError as exc:
                    self._mark_ranks_dead(set(exc.ranks) | {r})
                    restart = True
                    break
            if restart:
                attempt += 1
                continue
            for r in targets:
                try:
                    world._send_internal(("commit", counter, attempt),
                                         r, recipients[r])
                except RankFailedError as exc:
                    # Too late to reselect (earlier recipients may already
                    # be committed); the group may be born broken.
                    self._mark_ranks_dead(set(exc.ranks) | {r})
            obs = self.state.obs
            if obs is not None:
                from ..obs.accuracy import model_key

                if span is not None:
                    span.attrs.update(info or {}, attempts=attempt + 1,
                                      model=model_key(use_model))
                # The selection's own estimate is a prediction of this
                # group's execution time; the app resolves it by calling
                # record_measured after running the algorithm.
                obs.accuracy.predict(
                    model_key(use_model), mapping.time,
                    vtime=self.env.wtime(),
                    mapper=type(resolve_mapper(
                        mapper, default=self.state.mapper)).__name__,
                )
            return mapping

    def _await_mapping(self, tag: int) -> "tuple[int, Mapping] | None":
        """Two-phase mapping exchange, recipient side.

        Keeps the *latest* map and returns on the commit matching it; maps
        superseded before their commit are simply overwritten.  Spurious
        wakes (collateral :class:`RankFailedError` from stall resolution
        while the host is alive and mid-repair) retry, bounded.  Returns
        None on a ``release`` sentinel, raises :class:`HMPIRepairError`
        on ``abort`` or host death.
        """
        world = self.comm_world
        last: tuple | None = None
        retries = 0
        while True:
            try:
                payload, _ = world._recv_internal(HOST_RANK, tag)
            except RankFailedError as exc:
                if HOST_RANK in exc.ranks:
                    raise HMPIRepairError(
                        "host failed during group formation"
                    ) from exc
                # We may BE the casualty everyone is being woken about: a
                # process on a doomed machine, skipped by the host, would
                # otherwise spin here on collateral wakes.
                self._raise_if_doomed()
                retries += 1
                if retries > _MAX_PROTO_RETRIES:
                    raise
                continue
            kind = payload[0]
            if kind == "map":
                last = payload
            elif kind == "release":
                return None
            elif kind == "abort":
                raise HMPIRepairError(
                    f"host aborted group formation {payload[1]}: "
                    f"no feasible mapping over the survivors"
                )
            elif kind == "commit":
                _, counter, attempt = payload
                if last is not None and last[1] == counter and last[2] == attempt:
                    mapping = Mapping(tuple(last[3]), tuple(last[4]), last[5])
                    return counter, mapping
                # Commit of a superseded attempt: ignore (cannot normally
                # happen — commits follow their own map on the ordered
                # channel — but harmless to skip).

    def _materialize(self, counter: int, mapping: Mapping,
                     from_repair: bool = False) -> HMPIGroup:
        """Build the per-rank group handle and update free-set membership."""
        world = self.comm_world
        comm = None
        if self.rank in mapping.processes:
            ctx = world._engine.allocate_context(("hmpi-group", counter))
            comm = Comm(world._engine, Group(mapping.processes), ctx, self.rank)
            with self.state.lock:
                self.state.free.discard(self.rank)
        elif from_repair and self.rank != HOST_RANK:
            # A survivor the new selection left out returns to the free pool.
            with self.state.lock:
                self.state.free.add(self.rank)
            world._engine.poke()
        return HMPIGroup(
            gid=counter,
            mapping=mapping,
            comm=comm,
            parent_world_rank=HOST_RANK,
            my_world_rank=self.rank,
        )

    def group_free(self, group: HMPIGroup) -> None:
        """Free the group (collective over its members).

        Members synchronise on the group communicator (virtual time), mark
        themselves free, and then rendezvous in real time so that when any
        member — in particular the host, which is a member of every group
        via the pinned parent — returns, the whole membership change is
        visible to a subsequent ``group_create``.
        """
        if group.is_member:
            size = group.size
            gid = group.gid
            group.comm.barrier()
            state = self.state
            engine = self.comm_world._engine
            with state.lock:
                if self.rank != HOST_RANK:
                    state.free.add(self.rank)
                state.free_rendezvous[gid] = state.free_rendezvous.get(gid, 0) + 1
                arrived = state.free_rendezvous[gid]
            if arrived >= size:
                # Last member in: wake the engine-blocked early arrivers.
                engine.poke()
            else:
                # Engine-level wait (not a real-time condition), so the
                # rendezvous participates in stall/failure accounting and
                # cooperative backends can schedule other ranks meanwhile.
                # The predicate reads the counter without state.lock: it
                # runs under the engine lock, and lock-ordering with
                # paths that hold state.lock while poking the engine
                # forbids taking state.lock here.  The counter only grows
                # (per gid), so a lock-free read is safe.
                engine.wait_until(
                    self.rank,
                    lambda: state.free_rendezvous.get(gid, 0) >= size,
                    label=f"group_free({gid}) rendezvous",
                )
        group._mark_freed()

    # ------------------------------------------------------------------
    # fault handling (FT direction named in the paper's conclusion)
    # ------------------------------------------------------------------
    def mark_dead(self, world_rank: int) -> None:
        """Exclude a rank (on a failed machine) from future selections.

        Also marks the rank's machine dead in the network model, which
        bumps the speed epoch: every cached selection is invalidated, and
        subsequent ``HMPI_Timeof``/``HMPI_Group_create`` answer over the
        surviving subset (degraded mode).
        """
        with self.state.lock:
            if world_rank in self.state.dead:
                return
            self.state.dead.add(world_rank)
            self.state.free.discard(world_rank)
            self.state.netmodel.mark_machine_dead(
                self.state.netmodel.machine_of(world_rank)
            )
        self._count("hmpi.ranks.dead")
        self.state._emit("fault", "rank.dead", rank=world_rank,
                         vtime=self.env.wtime())
        # Blocked ranks (external waits in particular) may care.
        self.comm_world._engine.poke()

    def _mark_ranks_dead(self, ranks) -> None:
        for r in sorted(ranks):
            self.mark_dead(r)

    # ------------------------------------------------------------------
    # machine churn (administrative join/leave, beyond FT deaths)
    # ------------------------------------------------------------------
    def depart_machine(self, machine_index: int) -> None:
        """Withdraw a healthy machine from the network (churn "leave").

        Administrative counterpart of a failure: every free rank placed on
        the machine is excluded from future selections and the machine is
        flagged in the network model — bumping the speed epoch, so cached
        selections and ``HMPI_Timeof`` answers are recomputed over the
        remaining machines.  Unlike :meth:`mark_dead` the ranks stay
        alive: they keep waiting in ``HMPI_Group_create``, still receive
        the final ``release_free``, and :meth:`admit_machine` brings them
        back.  Ranks currently busy in a group are not interrupted; the
        withdrawal takes effect at the next selection.

        The host's machine cannot depart (the paper's host-processor is
        the permanent parent of every group).
        """
        with self.state.lock:
            host_machine = self.state.netmodel.machine_of(HOST_RANK)
            if machine_index == host_machine:
                raise HMPIStateError(
                    f"machine {machine_index} hosts the HMPI host process "
                    f"and cannot depart"
                )
            for r in range(self.state.netmodel.nprocs):
                if self.state.netmodel.machine_of(r) == machine_index:
                    self.state.departed.add(r)
            self.state.netmodel.mark_machine_dead(machine_index)
        self._count("hmpi.churn.departs")
        self.state._emit("churn", "machine.depart", machine=machine_index,
                         vtime=self.env.wtime())
        self.comm_world._engine.poke()

    def admit_machine(self, machine_index: int) -> None:
        """Readmit a departed machine to the network (churn "join").

        The counterpart of :meth:`depart_machine` (and, at the network-
        model level, of ``mark_machine_dead``): the machine is unflagged —
        bumping the speed epoch so stale cached selections can never be
        served — and its parked ranks rejoin the candidate pool for the
        next ``HMPI_Group_create``.  An FT death is permanent: admitting
        a machine whose ranks actually died (:meth:`mark_dead`) raises
        :class:`HMPIStateError` rather than resurrecting it.
        """
        with self.state.lock:
            for r in range(self.state.netmodel.nprocs):
                if (self.state.netmodel.machine_of(r) == machine_index
                        and r in self.state.dead):
                    raise HMPIStateError(
                        f"machine {machine_index} has failed and cannot "
                        f"be readmitted"
                    )
            self.state.netmodel.admit_machine(machine_index)
            for r in range(self.state.netmodel.nprocs):
                if self.state.netmodel.machine_of(r) == machine_index:
                    self.state.departed.discard(r)
        self._count("hmpi.churn.admits")
        self.state._emit("churn", "machine.join", machine=machine_index,
                         vtime=self.env.wtime())
        self.comm_world._engine.poke()

    def _raise_if_doomed(self) -> None:
        """Die of :class:`MachineFailure` if this process has been marked
        dead — its machine is scheduled to fail before it could make any
        further progress, so behave as the hardware will."""
        with self.state.lock:
            doomed = self.rank in self.state.dead
        if doomed:
            mach = self.env.machine
            vtime = mach.fail_at if mach.fail_at is not None else self.wtime()
            raise MachineFailure(mach.name, vtime)

    def detect_failures(self, at_vtime: float | None = None) -> set[int]:
        """Mark ranks the engine knows to be failed; return the new ones.

        Static detection against the fault schedule at ``at_vtime``
        (default: the caller's current virtual time) plus ranks whose
        threads already died of :class:`MachineFailure` — deterministic
        with respect to real-time thread interleaving for scheduled
        faults.
        """
        t = self.wtime() if at_vtime is None else at_vtime
        failed = self.comm_world._engine.failed_ranks(t)
        with self.state.lock:
            newly = failed - self.state.dead
        self._mark_ranks_dead(newly)
        return newly

    def alive_ranks(self) -> list[int]:
        """World ranks not marked dead (degraded-mode membership view)."""
        with self.state.lock:
            return [r for r in range(self.size) if r not in self.state.dead]

    def group_repair(
        self,
        broken: HMPIGroup,
        model: "AbstractBoundModel | Callable[[int], AbstractBoundModel]",
        mapper: "Mapper | str | None" = None,
        dead: Sequence[int] = (),
    ) -> HMPIGroup:
        """Reform a broken group around its survivors (HMPI_Group_repair).

        Collective over the survivors of ``broken`` — every member whose
        machine is alive must call this after observing a typed failure
        (:class:`RankFailedError` & co.) on the group, passing the world
        ranks it knows to be dead (``error.ranks``).  ``model`` is only
        consulted on the host and may be a callable ``n_candidates ->
        bound model``, invoked once the survivor count is known — the
        repaired group's size usually depends on how many processes are
        left.

        Protocol: survivors report their dead-sets to the host, which
        recv-fails (typed, deterministically) on members that are actually
        dead; the host then marks the union dead — invalidating the
        selection cache via the network model's epoch — re-runs selection
        over the survivors plus any still-waiting free processes, and runs
        the same two-phase map/commit exchange as ``group_create``.  The
        broken handle is freed on every path; survivors excluded from the
        new mapping return to the free pool (their handle reports
        non-membership).  Raises :class:`HMPIRepairError` when repair is
        impossible (host dead, or no feasible mapping over survivors).
        """
        if not broken.is_member and self.rank not in broken.mapping.processes:
            raise HMPIStateError(
                f"group_repair called by non-member (world rank {self.rank}) "
                f"of HMPI group {broken.gid}"
            )
        engine = self.comm_world._engine
        t0 = self.env.wtime()
        try:
            with self._span("HMPI_Group_repair", gid=broken.gid,
                            role="host" if self.is_host() else "member",
                            reported_dead=tuple(dead)) as sp:
                repaired = self._group_repair_exchange(broken, model, mapper,
                                                       dead, sp)
                self._count("hmpi.repairs")
                self.state._emit(
                    "fault", "group.repair", gid=broken.gid, rank=self.rank,
                    reported_dead=len(dead), vtime=self.env.wtime())
                return repaired
        finally:
            if engine.tracer is not None:
                from ..mpi.tracing import TraceEvent

                engine.tracer.record(TraceEvent(
                    rank=self.rank, kind="repair", t0=t0,
                    t1=self.env.wtime(), label=f"gid {broken.gid}",
                ))

    def _group_repair_exchange(
        self,
        broken: HMPIGroup,
        model: "AbstractBoundModel | Callable[[int], AbstractBoundModel]",
        mapper: "Mapper | str | None",
        dead: Sequence[int],
        sp: Any = None,
    ) -> HMPIGroup:
        """The survivor-census / re-selection exchange of ``group_repair``
        (split out so the public method can instrument every exit path)."""
        world = self.comm_world
        self._mark_ranks_dead(dead)
        self.detect_failures()
        if self.is_host():
            members = [r for r in broken.mapping.processes if r != HOST_RANK]
            survivors: list[int] = []
            for r in members:
                with self.state.lock:
                    if r in self.state.dead:
                        continue
                collected = False
                for _ in range(_MAX_PROTO_RETRIES):
                    try:
                        payload, _ = world._recv_internal(r, _TAG_REPAIR)
                    except RankFailedError as exc:
                        self._mark_ranks_dead(exc.ranks)
                        with self.state.lock:
                            if r in self.state.dead:
                                break
                        continue  # collateral wake; r is alive, retry
                    self._mark_ranks_dead(payload[2])
                    survivors.append(r)
                    collected = True
                    break
                if not collected:
                    # Unreachable within the retry budget: treat as lost.
                    self.mark_dead(r)
            with self.state.lock:
                counter = self.state.creation_counter
                self.state.creation_counter += 1
            recipients = {r: _TAG_REPAIR for r in survivors}
            for r in self._free_pool():
                recipients.setdefault(r, _TAG_GROUP_CREATE)
            if sp is not None:
                sp.attrs["survivors"] = tuple(survivors)
                sp.attrs["drafted"] = tuple(
                    r for r, tag in recipients.items()
                    if tag == _TAG_GROUP_CREATE
                )
            try:
                mapping = self._host_distribute(counter, model, mapper,
                                                recipients, span=sp)
            except MappingError as exc:
                broken._mark_freed()
                raise HMPIRepairError(
                    f"cannot repair group {broken.gid}: {exc}"
                ) from exc
        else:
            with self.state.lock:
                known_dead = tuple(sorted(self.state.dead))
            try:
                world._send_internal(("report", broken.gid, known_dead),
                                     HOST_RANK, _TAG_REPAIR)
            except RankFailedError as exc:
                if HOST_RANK in exc.ranks:
                    broken._mark_freed()
                    raise HMPIRepairError(
                        "host failed during group repair"
                    ) from exc
                raise
            got = self._await_mapping(_TAG_REPAIR)
            if got is None:  # release cannot arrive on the repair tag
                broken._mark_freed()
                raise HMPIRepairError("unexpected release during repair")
            counter, mapping = got
            with self.state.lock:
                self.state.creation_counter = max(
                    self.state.creation_counter, counter + 1
                )
        broken._mark_freed()
        if sp is not None:
            sp.attrs.update(new_gid=counter, size=len(mapping.processes),
                            member=self.rank in mapping.processes)
        return self._materialize(counter, mapping, from_repair=True)

    def release_free(self) -> None:
        """Dismiss the waiting free processes (host only).

        Each free process blocked in ``group_create`` receives a release
        sentinel and returns None from it, letting SPMD main functions end
        cleanly once the host knows no further group will be created.
        """
        if not self.is_host():
            raise HMPIStateError("release_free may only be called by the host")
        world = self.comm_world
        for r in self._free_pool(include_departed=True):
            try:
                world._send_internal(("release",), r, _TAG_GROUP_CREATE)
            except RankFailedError:
                self.mark_dead(r)

    def get_comm(self, group: HMPIGroup):
        """HMPI_Get_comm: the MPI communicator behind a group handle."""
        return group.comm


def run_hmpi(
    app: Callable[..., Any],
    cluster: Cluster,
    placement: Sequence[int] | None = None,
    *,
    nprocs: int | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    mapper: "Mapper | str | None" = None,
    initial_speeds: Sequence[float] | None = None,
    timeout: float | None = 120.0,
    tracer: Any = None,
    ft: "FTConfig | dict | None" = None,
    obs: "Observability | None" = None,
    engine: str | None = None,
    timeof_backend: str | None = None,
) -> MPIRunResult:
    """Run ``app(hmpi, *args, **kwargs)`` SPMD with the HMPI runtime.

    This brackets the application with ``HMPI_Init``/``HMPI_Finalize``: it
    builds the shared runtime state (network model seeded with nominal
    machine speeds unless ``initial_speeds`` is given) and hands every rank
    an :class:`HMPI` environment.  Options after ``placement`` are
    keyword-only and uniform across entry points (``run_mpi``,
    ``run_hmpi``, the session facade, the CLI); bad registry strings raise
    :class:`~repro.util.errors.OptionError` (engine backends) or the
    owning layer's established error type (mappers, algorithms).
    ``mapper`` may be a :class:`Mapper` instance or a registry string such
    as ``"default"`` or ``"greedy"``.  ``tracer`` and ``ft``
    (fault-tolerance knobs; an :class:`FTConfig` or a dict of its fields)
    are forwarded to the engine (see :class:`repro.mpi.tracing.Tracer`,
    :class:`repro.mpi.engine.FTConfig`), as is ``engine`` — the
    scheduling backend, ``"events"`` or ``"threads"``.
    ``timeof_backend`` picks the candidate-pricing backend used by
    ``timeof``/``group_create`` — one of
    :data:`repro.core.seleng.TIMEOF_BACKENDS` (``"trace"`` replays the
    compiled trace, ``"net"`` runs longest-path over the unrolled
    communication net's timing DAG, ``"interp"`` re-interprets the
    scheme per candidate); predictions are identical across backends.  ``obs`` turns on
    the unified observability layer (:class:`repro.obs.Observability`):
    runtime spans, metrics, and prediction-accuracy tracking record into
    it, and its tracer (when it has one) collects the engine events
    unless an explicit ``tracer`` is also given.
    """
    if placement is None:
        placement = default_placement(cluster, nprocs)
    if obs is not None:
        if tracer is None:
            tracer = obs.tracer
        else:
            obs.tracer = tracer  # adopt, so exports see the engine events
    netmodel = NetworkModel(cluster, placement, initial_speeds)
    state = HMPIRuntimeState(netmodel, mapper, obs=obs,
                             timeof_backend=timeof_backend)

    def wrapped(env: MPIEnv, *a: Any, **kw: Any) -> Any:
        return app(HMPI(env, state), *a, **kw)

    return run_mpi(
        wrapped, cluster, placement=placement,
        args=args, kwargs=kwargs, timeout=timeout, tracer=tracer, ft=ft,
        metrics=obs.metrics if obs is not None else None,
        engine=engine,
        telemetry=obs.telemetry if obs is not None else None,
    )
