"""SPMD launcher: the ``mpirun`` of the simulated substrate.

An application is a Python callable ``app(env, *args, **kwargs)`` executed
once per rank.  The :class:`MPIEnv` handed to it provides the world
communicator, the rank's machine, ``compute(volume)`` for charging modelled
computation, and ``wtime()`` for virtual-time measurement — everything a
real MPI program obtains from its runtime plus the simulation's explicit
cost hook.

>>> from repro.cluster import paper_network
>>> def app(env):
...     env.compute(10.0)                  # 10 benchmark units of work
...     return env.comm_world.allreduce(env.rank, repro_mpi_ops.SUM)
>>> result = run_mpi(app, paper_network())       # doctest: +SKIP
>>> result.makespan                              # doctest: +SKIP
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..cluster.machine import Machine
from ..cluster.network import Cluster
from ..util.errors import MachineFailure, MPIError
from .communicator import Comm
from .engine import Engine, FTConfig, WORLD_CONTEXT
from .group import Group

__all__ = ["MPIEnv", "MPIRunResult", "run_mpi", "default_placement"]


class MPIEnv:
    """Per-rank execution environment passed to the application function."""

    def __init__(self, engine: Engine, world_rank: int,
                 world_group: Group | None = None):
        self._engine = engine
        self._world_rank = world_rank
        # The world group is immutable and identical for every rank; the
        # launcher passes one shared instance so setup stays O(n), not
        # O(n²) (building a fresh n-member group per rank dominates
        # start-up beyond ~1k ranks).
        if world_group is None:
            world_group = Group(range(engine.nprocs))
        self.comm_world = Comm(engine, world_group, WORLD_CONTEXT, world_rank)

    @property
    def rank(self) -> int:
        """World rank of this process."""
        return self._world_rank

    @property
    def size(self) -> int:
        """Total number of processes in the run."""
        return self._engine.nprocs

    @property
    def machine_index(self) -> int:
        """Index (within the cluster) of the machine this rank runs on."""
        return self._engine.placement[self._world_rank]

    @property
    def machine(self) -> Machine:
        """The machine this rank runs on."""
        return self._engine.cluster.machine(self.machine_index)

    @property
    def cluster(self) -> Cluster:
        return self._engine.cluster

    @property
    def placement(self) -> list[int]:
        """machine index per world rank (shared, read-only by convention)."""
        return self._engine.placement

    def compute(self, volume: float, concurrency: int | None = None) -> float:
        """Perform ``volume`` benchmark units of modelled computation.

        Advances this rank's virtual clock by the machine's load-integrated
        execution time and returns the new clock value.  ``concurrency``
        overrides how many ranks share the machine's CPU (default: every
        rank placed on it); pass the co-located *active* count when idle
        ranks are parked on the machine.
        """
        return self._engine.compute(self._world_rank, volume, concurrency)

    def wtime(self) -> float:
        """Current virtual time of this rank (MPI_Wtime)."""
        return self._engine.vtime(self._world_rank)

    def elapse(self, seconds: float) -> float:
        """Advance the clock by raw seconds (I/O stalls, fixed overheads)."""
        return self._engine.advance_clock(self._world_rank, seconds)


@dataclass
class MPIRunResult:
    """Outcome of one SPMD run.

    ``makespan`` is the virtual time at which the last rank finished — the
    quantity the paper's figures plot as "execution time".
    """

    results: list[Any]
    finish_times: list[float]
    failures: list[MachineFailure] = field(default_factory=list)
    placement: list[int] = field(default_factory=list)
    #: Per-rank terminal exception (None for ranks that returned normally).
    #: Includes fault fallout — RankFailedError, LinkFaultError,
    #: OperationTimeoutError — that ``Engine.run`` records but does not
    #: re-raise, so fault campaigns can assert on typed outcomes.
    exceptions: list[BaseException | None] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    def result_of(self, rank: int) -> Any:
        return self.results[rank]

    def exception_of(self, rank: int) -> BaseException | None:
        return self.exceptions[rank] if self.exceptions else None


def default_placement(cluster: Cluster, nprocs: int | None = None) -> list[int]:
    """One process per machine; extra ranks wrap around round-robin.

    This mirrors a plain ``mpirun -np N`` over a host file listing each
    machine once.
    """
    n = cluster.size if nprocs is None else nprocs
    if n < 1:
        raise MPIError("need at least one process")
    return [i % cluster.size for i in range(n)]


def run_mpi(
    app: Callable[..., Any],
    cluster: Cluster,
    placement: Sequence[int] | None = None,
    *,
    nprocs: int | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    timeout: float | None = 120.0,
    tracer: Any = None,
    ft: "FTConfig | dict | None" = None,
    metrics: Any = None,
    engine: str | None = None,
    telemetry: Any = None,
) -> MPIRunResult:
    """Run ``app(env, *args, **kwargs)`` SPMD over the cluster.

    Options after ``placement`` are keyword-only and uniform across entry
    points (``run_mpi``, ``run_hmpi``, the session facade, the CLI); bad
    values raise :class:`~repro.util.errors.OptionError`.

    Parameters
    ----------
    placement:
        machine index per world rank; default one rank per machine
        (``nprocs`` ranks round-robin if given).
    timeout:
        real-time safety net per rank join, for runaway programs.
    tracer:
        optional :class:`repro.mpi.tracing.Tracer` collecting per-rank
        compute/send/recv events for Gantt rendering and validation.
    ft:
        fault-tolerance knobs (retransmission budget/backoff, default
        receive timeout, fail-fast sends): an :class:`FTConfig`, or a dict
        of its fields; default :class:`FTConfig`.
    metrics:
        optional :class:`repro.obs.MetricsRegistry`; collectives record
        which algorithm fired (and at which topology level) into it.
    engine:
        scheduling backend, ``"events"`` (single-threaded discrete-event
        core, the default) or ``"threads"`` (preemptive thread per rank);
        None resolves via ``REPRO_ENGINE`` / the library default.
    telemetry:
        optional :class:`repro.obs.EventBus`; the engine streams
        lifecycle events (``engine.run.start``/``run.finish`` with the
        scheduler's host-side self-profile) into it.
    """
    if placement is None:
        placement = default_placement(cluster, nprocs)
    engine = Engine(cluster, placement, tracer=tracer, ft=ft, metrics=metrics,
                    engine=engine, telemetry=telemetry)
    kw = kwargs or {}
    world_group = Group(range(engine.nprocs))

    def target(rank: int) -> Any:
        env = MPIEnv(engine, rank, world_group)
        return app(env, *args, **kw)

    engine.run(target, timeout=timeout)
    return MPIRunResult(
        results=[p.result for p in engine.procs],
        finish_times=[p.clock for p in engine.procs],
        failures=list(engine.failures),
        placement=list(placement),
        exceptions=[p.exception for p in engine.procs],
    )
