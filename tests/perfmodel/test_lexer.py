"""PMDL tokenizer."""

import pytest

from repro.perfmodel.lexer import tokenize
from repro.perfmodel.tokens import TokenKind
from repro.util.errors import PMDLSyntaxError


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.EOF

    def test_identifier_vs_keyword(self):
        assert kinds("algorithm foo") == [
            (TokenKind.KEYWORD, "algorithm"),
            (TokenKind.IDENT, "foo"),
        ]

    def test_all_section_keywords(self):
        for kw in ("coord", "node", "link", "parent", "scheme", "bench",
                   "length", "par", "sizeof", "typedef", "struct"):
            assert kinds(kw)[0] == (TokenKind.KEYWORD, kw)

    def test_underscored_identifier(self):
        assert kinds("_my_var2")[0] == (TokenKind.IDENT, "_my_var2")


class TestNumbers:
    def test_int(self):
        assert kinds("42")[0] == (TokenKind.INT, "42")

    def test_float(self):
        assert kinds("3.25")[0] == (TokenKind.FLOAT, "3.25")

    def test_exponent(self):
        assert kinds("1e6")[0] == (TokenKind.FLOAT, "1e6")
        assert kinds("2.5e-3")[0] == (TokenKind.FLOAT, "2.5e-3")

    def test_int_then_member_not_float(self):
        # "100%%" must not eat the percent signs
        toks = kinds("100%%")
        assert toks == [(TokenKind.INT, "100"), (TokenKind.PUNCT, "%%")]


class TestPunctuation:
    def test_longest_match(self):
        assert kinds("->")[0] == (TokenKind.PUNCT, "->")
        assert kinds("- >") == [(TokenKind.PUNCT, "-"), (TokenKind.PUNCT, ">")]

    def test_double_percent_vs_single(self):
        assert kinds("%%")[0] == (TokenKind.PUNCT, "%%")
        assert kinds("% %") == [(TokenKind.PUNCT, "%"), (TokenKind.PUNCT, "%")]

    def test_increment(self):
        assert kinds("i++") == [(TokenKind.IDENT, "i"), (TokenKind.PUNCT, "++")]

    def test_logical_operators(self):
        assert [t for _, t in kinds("&& || == != <= >=")] == [
            "&&", "||", "==", "!=", "<=", ">=",
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(PMDLSyntaxError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_block_comment_advances_lines(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(PMDLSyntaxError, match="unexpected character"):
            tokenize("a @ b")
