"""End-to-end application drivers (Figures 3/5 and 8 programs)."""

import numpy as np
import pytest

from repro.apps.matmul import (
    candidate_block_sizes,
    run_matmul_hmpi,
    run_matmul_mpi,
    speed_grid,
)
from repro.cluster import paper_network
from repro.core import GreedyMapper
from repro.util.errors import ReproError


class TestSpeedGrid:
    def test_host_at_origin(self):
        speeds = [46.0] * 6 + [176.0, 106.0, 9.0]
        grid = speed_grid(speeds, 3, host_machine=0)
        assert grid[0, 0] == 46.0
        assert grid[0, 1] == 176.0  # fastest non-host next
        assert grid.flatten()[-1] == 9.0

    def test_needs_enough_machines(self):
        with pytest.raises(ReproError):
            speed_grid([1.0, 2.0], 2)


class TestCandidateBlockSizes:
    def test_divisors_only(self):
        assert candidate_block_sizes(12, 3) == [3, 4, 6, 12]

    def test_lower_bound_m(self):
        assert candidate_block_sizes(12, 6) == [6, 12]


@pytest.mark.slow
class TestMatmulDrivers:
    @pytest.fixture(scope="class")
    def runs(self):
        cluster = paper_network()
        mpi = run_matmul_mpi(cluster, n=12, r=6, m=3, seed=4)
        hmpi = run_matmul_hmpi(
            paper_network(), n=12, r=6, m=3, seed=4, mapper=GreedyMapper()
        )
        return mpi, hmpi

    def test_identical_checksums(self, runs):
        mpi, hmpi = runs
        assert mpi.checksum == pytest.approx(hmpi.checksum, rel=1e-12)

    def test_hmpi_faster_on_paper_network(self, runs):
        mpi, hmpi = runs
        # Paper Figure 11(b): ~3x.  Require a clear win.
        assert mpi.algorithm_time / hmpi.algorithm_time > 2.0

    def test_prediction_close(self, runs):
        _, hmpi = runs
        assert hmpi.predicted_time == pytest.approx(hmpi.algorithm_time, rel=0.2)

    def test_block_size_chosen_from_candidates(self, runs):
        _, hmpi = runs
        assert hmpi.block_size_l in candidate_block_sizes(12, 3)

    def test_explicit_block_size_honoured(self):
        hmpi = run_matmul_hmpi(
            paper_network(), n=12, r=4, m=3, l=6, seed=1, mapper=GreedyMapper()
        )
        assert hmpi.block_size_l == 6
        assert hmpi.distribution.l == 6

    def test_grid_too_large_rejected(self):
        from repro.cluster import homogeneous_network

        with pytest.raises(ReproError):
            run_matmul_mpi(homogeneous_network(4), n=9, r=4, m=3)
