"""MPI process groups with the full set-like and range constructor algebra.

HMPI deliberately provides *no* analog of these constructors (its only group
constructor is ``HMPI_Group_create``), but the paper points out that
programmers can still perform them by obtaining the MPI group behind
``HMPI_Get_comm``.  The substrate therefore implements the complete MPI-1
group interface so that escape hatch actually works.

A group is an immutable ordered sequence of **world ranks** without
duplicates.  Set-like operations follow the MPI standard's ordering rules:
``union`` keeps all of the first group followed by the elements of the
second not in the first; ``intersection`` and ``difference`` keep the order
of the first group.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..util.errors import MPIGroupError
from .status import UNDEFINED

__all__ = ["Group", "GROUP_EMPTY", "IDENT", "SIMILAR", "UNEQUAL"]

# Group comparison results (MPI_IDENT / MPI_SIMILAR / MPI_UNEQUAL).
IDENT = 0
SIMILAR = 1
UNEQUAL = 2


class Group:
    """Immutable ordered set of world ranks."""

    __slots__ = ("_ranks", "_position")

    def __init__(self, ranks: Iterable[int] = ()):
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise MPIGroupError(f"duplicate ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise MPIGroupError(f"negative rank in group: {ranks}")
        self._ranks = ranks
        self._position = {r: i for i, r in enumerate(ranks)}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of processes in the group (MPI_Group_size)."""
        return len(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __iter__(self):
        return iter(self._ranks)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._position

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """The members as world ranks, in group-rank order."""
        return self._ranks

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank, or UNDEFINED (MPI_Group_rank)."""
        return self._position.get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """World rank of a group rank."""
        try:
            return self._ranks[group_rank]
        except IndexError:
            raise MPIGroupError(
                f"group rank {group_rank} out of range for size {self.size}"
            ) from None

    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> list[int]:
        """MPI_Group_translate_ranks: my group ranks -> other's group ranks."""
        out = []
        for r in ranks:
            wr = self.world_rank(r)
            out.append(other.rank_of(wr))
        return out

    def compare(self, other: "Group") -> int:
        """MPI_Group_compare: IDENT, SIMILAR (same members, order differs), or UNEQUAL."""
        if self._ranks == other._ranks:
            return IDENT
        if set(self._ranks) == set(other._ranks):
            return SIMILAR
        return UNEQUAL

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    # ------------------------------------------------------------------
    # set-like constructors
    # ------------------------------------------------------------------
    def union(self, other: "Group") -> "Group":
        """All of self, then members of other not already present."""
        extra = [r for r in other._ranks if r not in self._position]
        return Group(self._ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        """Members of self that are also in other, in self's order."""
        return Group(r for r in self._ranks if r in other._position)

    def difference(self, other: "Group") -> "Group":
        """Members of self not in other, in self's order."""
        return Group(r for r in self._ranks if r not in other._position)

    # ------------------------------------------------------------------
    # inclusion/exclusion constructors
    # ------------------------------------------------------------------
    def incl(self, group_ranks: Sequence[int]) -> "Group":
        """New group of the listed group ranks, in the listed order."""
        return Group(self.world_rank(r) for r in group_ranks)

    def excl(self, group_ranks: Sequence[int]) -> "Group":
        """New group without the listed group ranks, original order kept."""
        drop = set(group_ranks)
        for r in drop:
            self.world_rank(r)  # validate
        return Group(wr for i, wr in enumerate(self._ranks) if i not in drop)

    @staticmethod
    def _expand_ranges(ranges: Sequence[tuple[int, int, int]]) -> list[int]:
        out: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MPIGroupError("range stride must be nonzero")
            if stride > 0:
                out.extend(range(first, last + 1, stride))
            else:
                out.extend(range(first, last - 1, stride))
        return out

    def range_incl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_incl: include ``(first, last, stride)`` triplets."""
        return self.incl(self._expand_ranges(ranges))

    def range_excl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_excl: exclude ``(first, last, stride)`` triplets."""
        return self.excl(self._expand_ranges(ranges))

    def __repr__(self) -> str:
        return f"Group{self._ranks}"


GROUP_EMPTY = Group(())
