"""Engine throughput — events/sec of the two scheduling backends.

The single-threaded discrete-event core exists so the simulator's
capacity is set by the cost model, not by OS thread context-switching.
This bench pins that claim on the workload where scheduling overhead
cannot hide: a token circulating a 1024-rank ring, where every receive
blocks and every event therefore costs the thread backend a context
switch plus a stall scan.  The event core must run ≥ 10× more message
events per second under ``engine="events"`` than under
``engine="threads"``, and a 10k-rank scenario must complete at all
(the thread backend cannot be asked to).

(A neighbour-exchange ring would flatter the thread backend: under GIL
time-slicing most receives find their message already queued and never
block, so the OS-scheduling cost the refactor removes never shows.)

With ``--smoke``, a quick regression check compares the event backend's
events/sec against the recorded baseline in
``benchmarks/baselines/engine_smoke.json`` (fails below half the
recorded throughput, with a generous floor for slow shared runners) and
runs the 10k-rank completion check.
"""

import json
import pathlib
import time

import pytest

from repro.cluster import uniform_network
from repro.mpi import run_mpi
from repro.util.tables import Table

RANKS = 1024
ROUNDS = 4
MACHINES = 64  # ranks wrap round-robin; links are created lazily
SCALE_RANKS = 10_000
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "engine_smoke.json"


def ring_app(env, laps):
    """Token ring: one message circulates; every receive must block.

    2 message events (send + recv) per rank per lap, and a strict
    dependency chain — rank r cannot run until rank r-1 forwards, so
    each event forces a full scheduler handoff on either backend.
    """
    comm = env.comm_world
    nxt = (env.rank + 1) % env.size
    prv = (env.rank - 1) % env.size
    if env.rank == 0:
        for i in range(laps):
            comm.send(i, nxt, nbytes=64)
            comm.recv(prv)
    else:
        for i in range(laps):
            comm.send(comm.recv(prv), nxt, nbytes=64)
    return None


def _throughput(backend: str, nranks: int, rounds: int = ROUNDS):
    """(events/sec, wall seconds) for one ring run."""
    cluster = uniform_network([100.0] * MACHINES)
    t0 = time.perf_counter()
    result = run_mpi(ring_app, cluster, nprocs=nranks, args=(rounds,),
                     engine=backend, timeout=600.0)
    wall = time.perf_counter() - t0
    assert not result.failed and all(e is None for e in result.exceptions)
    events = nranks * rounds * 2
    return events / wall, wall


def test_engine_throughput(report):
    """Events/sec at 1024 ranks: the event core must win by ≥ 10×."""
    rows = [(backend, *_throughput(backend, RANKS))
            for backend in ("threads", "events")]

    t = Table("backend", "events/sec", "wall (s)",
              title=f"Engine throughput — {RANKS}-rank token ring, "
                    f"{ROUNDS} laps ({RANKS * ROUNDS * 2} events)")
    for backend, eps, wall in rows:
        t.add(backend, f"{eps:,.0f}", f"{wall:.2f}")
    by_name = dict((b, eps) for b, eps, _ in rows)
    t.add("speedup (x)", f"{by_name['events'] / by_name['threads']:.1f}", "")
    report.emit(t.render())

    assert by_name["events"] >= 10.0 * by_name["threads"], (
        f"events backend {by_name['events']:,.0f} ev/s is less than 10x "
        f"the thread backend's {by_name['threads']:,.0f} ev/s"
    )


def test_engine_scale_10k(smoke, report):
    """The event core completes a 10k-rank ring (thread backend need not
    apply: 10k OS threads is exactly the wall this refactor removes)."""
    if not smoke:
        pytest.skip("10k-rank completion check runs with --smoke")
    eps, wall = _throughput("events", SCALE_RANKS, rounds=1)
    t = Table("scenario", "events/sec", "wall (s)",
              title="Engine scale smoke")
    t.add(f"{SCALE_RANKS}-rank token ring, 1 lap", f"{eps:,.0f}", f"{wall:.2f}")
    report.emit(t.render())
    assert wall < 300.0


def test_engine_throughput_smoke(smoke):
    """Fail if event-core throughput regressed >2x vs the baseline."""
    if not smoke:
        pytest.skip("smoke regression check runs with --smoke")
    baseline = json.loads(BASELINE_PATH.read_text())
    best = 0.0
    for _ in range(3):
        eps, _ = _throughput("events", RANKS)
        best = max(best, eps)
    # Generous floor keeps slow shared CI machines from flaking; beyond
    # that, falling below half the recorded throughput is a regression.
    floor = min(0.5 * baseline["events_per_sec"], 20_000.0)
    assert best >= floor, (
        f"event core ran {best:,.0f} events/sec, floor {floor:,.0f} "
        f"(baseline {baseline['events_per_sec']:,.0f} recorded "
        f"{baseline['recorded']})"
    )
