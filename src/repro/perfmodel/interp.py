"""Tree-walking evaluator for PMDL expressions and scheme statements.

Semantics follow C where the paper's models rely on it:

- ``/`` and ``%`` on two integers truncate toward zero (the models write
  ``(n/l)`` expecting integer division);
- comparisons yield 0/1 ints;
- postfix ``++``/``--`` return the old value;
- ``&x`` passes the *lvalue* to an external function — struct values are
  mutable records passed directly, scalars are wrapped in a :class:`Ref`
  the callee can ``set``.

The two action statements are not evaluated for value: they are dispatched
to an :class:`ActionVisitor`, which is how the HMPI estimator observes the
algorithm's interaction structure without executing the real program.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from ..mpi.datatypes import sizeof
from ..util.errors import PMDLRuntimeError
from . import ast

__all__ = ["StructValue", "Ref", "Environment", "ActionVisitor", "Interpreter"]


class StructValue:
    """A mutable record instance of a ``typedef struct`` type."""

    __slots__ = ("type_name", "fields")

    def __init__(self, type_name: str, field_names: Sequence[str]):
        self.type_name = type_name
        self.fields: dict[str, Any] = {name: 0 for name in field_names}

    def get(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise PMDLRuntimeError(
                f"struct {self.type_name!r} has no field {name!r}"
            ) from None

    def set(self, name: str, value: Any) -> None:
        if name not in self.fields:
            raise PMDLRuntimeError(
                f"struct {self.type_name!r} has no field {name!r}"
            )
        self.fields[name] = value

    def copy(self) -> "StructValue":
        clone = StructValue(self.type_name, self.fields.keys())
        clone.fields.update(self.fields)
        return clone

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"{self.type_name}({inner})"


class Ref:
    """A settable reference to a scalar variable (``&x`` on a non-struct)."""

    __slots__ = ("_get", "_set")

    def __init__(self, getter: Callable[[], Any], setter: Callable[[Any], None]):
        self._get = getter
        self._set = setter

    def get(self) -> Any:
        return self._get()

    def set(self, value: Any) -> None:
        self._set(value)


class Environment:
    """Lexically scoped variable frames over a read-only parameter base."""

    def __init__(self, base: dict[str, Any] | None = None):
        self.frames: list[dict[str, Any]] = [dict(base or {})]

    def push(self) -> None:
        self.frames.append({})

    def pop(self) -> None:
        if len(self.frames) == 1:
            raise PMDLRuntimeError("cannot pop the base environment frame")
        self.frames.pop()

    def declare(self, name: str, value: Any) -> None:
        self.frames[-1][name] = value

    def lookup(self, name: str) -> Any:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        raise PMDLRuntimeError(f"undefined variable {name!r}")

    def assign(self, name: str, value: Any) -> None:
        for frame in reversed(self.frames):
            if name in frame:
                frame[name] = value
                return
        raise PMDLRuntimeError(f"assignment to undeclared variable {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(name in frame for frame in self.frames)


class ActionVisitor:
    """Receiver of scheme actions; subclassed by the HMPI estimator.

    Coordinates arrive as raw tuples of coordinate values; translation to
    linear processor indices is the caller's concern (see
    :meth:`repro.perfmodel.model.BoundModel.walk_scheme`).

    Besides the two actions, the interpreter reports the scheme's
    *structure* through four optional hooks, all no-ops by default:
    ``enter_par``/``next_par_branch``/``exit_par`` bracket each dynamic
    ``par`` loop instance and its iterations (``for`` loops stay
    sequential and silent), and ``at_line`` fires just before each action
    with its source line.  The net lowering pass
    (:mod:`repro.perfmodel.net`) is the consumer; visitors that only care
    about the action stream inherit the no-ops.
    """

    def compute(self, percent: float, coords: tuple[int, ...]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def transfer(self, percent: float, src: tuple[int, ...], dst: tuple[int, ...]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def enter_par(self, line: int) -> None:
        """A dynamic ``par`` loop instance begins (fork)."""

    def next_par_branch(self, line: int) -> None:
        """The next iteration (= parallel branch) of the current ``par``."""

    def exit_par(self, line: int) -> None:
        """The current ``par`` loop instance ends (join)."""

    def at_line(self, line: int) -> None:
        """The next action originates from this source line."""


def _c_div(a: Any, b: Any) -> Any:
    """Division with exact-int preservation.

    int/int returns an int when the division is exact and a float
    otherwise.  This deliberately deviates from C's truncation: the paper's
    models use ``(n/l)`` where exact divisibility is the intended case, and
    percent expressions like ``(100/n)`` where C truncation would wreck the
    estimate (100/54 == 1 in C).  Real division keeps both correct and the
    estimator smooth across parameter sweeps.
    """
    if b == 0:
        raise PMDLRuntimeError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        q, r = divmod(a, b)
        return q if r == 0 else a / b
    return a / b


def _c_mod(a: Any, b: Any) -> Any:
    """C remainder: trunc-toward-zero quotient, so sign follows the dividend."""
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise PMDLRuntimeError("integer modulo by zero")
        q = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            q = -q
        return a - q * b
    raise PMDLRuntimeError("'%' requires integer operands")


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
}

_MAX_LOOP_ITERATIONS = 10_000_000  # runaway-scheme safety net


class Interpreter:
    """Evaluates expressions and executes scheme statements.

    Parameters
    ----------
    structs:
        typedef'd struct definitions by name.
    externals:
        Python callables invokable from the model (e.g. ``GetProcessor``).
    """

    def __init__(
        self,
        structs: dict[str, ast.StructDef] | None = None,
        externals: dict[str, Callable[..., Any]] | None = None,
    ):
        self.structs = structs or {}
        self.externals = externals or {}

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def eval(self, expr: ast.Expr, env: Environment) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise PMDLRuntimeError(
                f"cannot evaluate {type(expr).__name__} (line {expr.line})"
            )
        return method(expr, env)

    def _eval_IntLit(self, e: ast.IntLit, env: Environment) -> int:
        return e.value

    def _eval_FloatLit(self, e: ast.FloatLit, env: Environment) -> float:
        return e.value

    def _eval_Name(self, e: ast.Name, env: Environment) -> Any:
        return env.lookup(e.ident)

    def _eval_Sizeof(self, e: ast.Sizeof, env: Environment) -> int:
        return sizeof(e.type_name)

    def _eval_Index(self, e: ast.Index, env: Environment) -> Any:
        base = self.eval(e.base, env)
        idx = self.eval(e.index, env)
        try:
            value = base[idx]
        except (IndexError, KeyError, TypeError) as exc:
            raise PMDLRuntimeError(
                f"bad index {idx!r} (line {e.line}): {exc}"
            ) from None
        # NumPy scalar -> Python scalar, so downstream C-division sees ints.
        if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
            return value.item()
        return value

    def _eval_Member(self, e: ast.Member, env: Environment) -> Any:
        base = self.eval(e.base, env)
        if not isinstance(base, StructValue):
            raise PMDLRuntimeError(
                f"member access on non-struct value (line {e.line})"
            )
        return base.get(e.name)

    def _eval_Unary(self, e: ast.Unary, env: Environment) -> Any:
        v = self.eval(e.operand, env)
        if e.op == "-":
            return -v
        if e.op == "+":
            return +v
        if e.op == "!":
            return int(not v)
        raise PMDLRuntimeError(f"unknown unary operator {e.op!r}")

    def _eval_Binary(self, e: ast.Binary, env: Environment) -> Any:
        if e.op == "&&":
            return int(bool(self.eval(e.left, env)) and bool(self.eval(e.right, env)))
        if e.op == "||":
            return int(bool(self.eval(e.left, env)) or bool(self.eval(e.right, env)))
        fn = _BINOPS.get(e.op)
        if fn is None:
            raise PMDLRuntimeError(f"unknown binary operator {e.op!r}")
        return fn(self.eval(e.left, env), self.eval(e.right, env))

    def _eval_Conditional(self, e: ast.Conditional, env: Environment) -> Any:
        return self.eval(e.then if self.eval(e.cond, env) else e.otherwise, env)

    def _eval_Assign(self, e: ast.Assign, env: Environment) -> Any:
        value = self.eval(e.value, env)
        if e.op != "=":
            current = self.eval(e.target, env)
            value = _BINOPS[e.op[0]](current, value)
        self._store(e.target, value, env)
        return value

    def _eval_IncDec(self, e: ast.IncDec, env: Environment) -> Any:
        old = self.eval(e.target, env)
        self._store(e.target, old + (1 if e.op == "++" else -1), env)
        return old

    def _eval_AddrOf(self, e: ast.AddrOf, env: Environment) -> Any:
        target = e.operand
        value = self.eval(target, env)
        if isinstance(value, StructValue):
            return value  # structs are mutable: the reference IS the value
        return Ref(
            getter=lambda: self.eval(target, env),
            setter=lambda v: self._store(target, v, env),
        )

    def _eval_Call(self, e: ast.Call, env: Environment) -> Any:
        fn = self.externals.get(e.name)
        if fn is None:
            raise PMDLRuntimeError(
                f"call to unknown external function {e.name!r} (line {e.line})"
            )
        args = [self.eval(a, env) for a in e.args]
        return fn(*args)

    def _store(self, target: ast.Expr, value: Any, env: Environment) -> None:
        if isinstance(target, ast.Name):
            env.assign(target.ident, value)
        elif isinstance(target, ast.Member):
            base = self.eval(target.base, env)
            if not isinstance(base, StructValue):
                raise PMDLRuntimeError(
                    f"member assignment on non-struct value (line {target.line})"
                )
            base.set(target.name, value)
        elif isinstance(target, ast.Index):
            base = self.eval(target.base, env)
            idx = self.eval(target.index, env)
            try:
                base[idx] = value
            except (IndexError, KeyError, TypeError) as exc:
                raise PMDLRuntimeError(
                    f"bad index assignment (line {target.line}): {exc}"
                ) from None
        else:
            raise PMDLRuntimeError(
                f"invalid assignment target {type(target).__name__} (line {target.line})"
            )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def exec_block(self, stmts: Sequence[ast.Stmt], env: Environment,
                   visitor: ActionVisitor) -> None:
        """Execute a statement list in a fresh scope."""
        env.push()
        try:
            for stmt in stmts:
                self.exec(stmt, env, visitor)
        finally:
            env.pop()

    def exec(self, stmt: ast.Stmt, env: Environment, visitor: ActionVisitor) -> None:
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise PMDLRuntimeError(
                f"cannot execute {type(stmt).__name__} (line {stmt.line})"
            )
        method(stmt, env, visitor)

    def _exec_EmptyStmt(self, s: ast.EmptyStmt, env: Environment, visitor: ActionVisitor) -> None:
        pass

    def _exec_ExprStmt(self, s: ast.ExprStmt, env: Environment, visitor: ActionVisitor) -> None:
        self.eval(s.expr, env)

    def _exec_Block(self, s: ast.Block, env: Environment, visitor: ActionVisitor) -> None:
        self.exec_block(s.body, env, visitor)

    def _exec_VarDecl(self, s: ast.VarDecl, env: Environment, visitor: ActionVisitor) -> None:
        struct_def = self.structs.get(s.type_name)
        for decl in s.declarators:
            if struct_def is not None:
                value: Any = StructValue(s.type_name, [f.name for f in struct_def.fields])
                if decl.init is not None:
                    raise PMDLRuntimeError(
                        f"struct initialisers are not supported (line {s.line})"
                    )
            else:
                value = self.eval(decl.init, env) if decl.init is not None else 0
            env.declare(decl.name, value)

    def _exec_If(self, s: ast.If, env: Environment, visitor: ActionVisitor) -> None:
        if self.eval(s.cond, env):
            self.exec(s.then, env, visitor)
        elif s.otherwise is not None:
            self.exec(s.otherwise, env, visitor)

    def _run_loop(self, s: ast.For | ast.Par, env: Environment, visitor: ActionVisitor,
                  par: bool = False) -> None:
        env.push()
        if par:
            visitor.enter_par(s.line)
        try:
            if isinstance(s.init, ast.VarDecl):
                self._exec_VarDecl(s.init, env, visitor)
            elif s.init is not None:
                self.eval(s.init, env)
            iterations = 0
            while s.cond is None or self.eval(s.cond, env):
                if par:
                    visitor.next_par_branch(s.line)
                self.exec(s.body, env, visitor)
                if s.update is not None:
                    self.eval(s.update, env)
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise PMDLRuntimeError(
                        f"loop exceeded {_MAX_LOOP_ITERATIONS} iterations (line {s.line})"
                    )
                if s.cond is None and s.update is None and iterations > 0:
                    raise PMDLRuntimeError(
                        f"loop with no condition and no update never terminates (line {s.line})"
                    )
        finally:
            if par:
                visitor.exit_par(s.line)
            env.pop()

    def _exec_For(self, s: ast.For, env: Environment, visitor: ActionVisitor) -> None:
        self._run_loop(s, env, visitor)

    def _exec_Par(self, s: ast.Par, env: Environment, visitor: ActionVisitor) -> None:
        # Under the resource-clock timeline model (see repro.core.estimator)
        # parallel composition is implicit: actions on disjoint resources
        # never serialise, so `par` executes like `for` while retaining its
        # documentary meaning.  The fork/join structure is still reported
        # through the visitor hooks so the net lowering can reconstruct it.
        self._run_loop(s, env, visitor, par=True)

    def _exec_While(self, s: ast.While, env: Environment, visitor: ActionVisitor) -> None:
        iterations = 0
        while self.eval(s.cond, env):
            self.exec(s.body, env, visitor)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise PMDLRuntimeError(
                    f"while loop exceeded {_MAX_LOOP_ITERATIONS} iterations (line {s.line})"
                )

    def _exec_ComputeAction(self, s: ast.ComputeAction, env: Environment,
                            visitor: ActionVisitor) -> None:
        percent = self.eval(s.percent, env)
        coords = tuple(int(self.eval(c, env)) for c in s.coords)
        visitor.at_line(s.line)
        visitor.compute(float(percent), coords)

    def _exec_TransferAction(self, s: ast.TransferAction, env: Environment,
                             visitor: ActionVisitor) -> None:
        percent = self.eval(s.percent, env)
        src = tuple(int(self.eval(c, env)) for c in s.src)
        dst = tuple(int(self.eval(c, env)) for c in s.dst)
        visitor.at_line(s.line)
        visitor.transfer(float(percent), src, dst)
