"""HMPI-as-a-service: the multi-tenant prediction & selection server.

``Timeof``/``Group_create`` are pure functions of (model, cluster,
params), so the simulator can be *served*: tenants POST PMDL source +
cluster JSON to ``/v1/jobs`` and get back predictions, selected groups,
diagnostic reports, campaign cells, and Chrome traces — with identical
requests coalesced into one evaluation and results cached by
(model digest, cluster digest, shape digest, speed epoch) across
tenants.  See ``docs/SERVING.md`` for the API reference and semantics.

Quick start::

    repro serve --port 8080 --workers 2          # CLI

    from repro.hmpi import connect               # client facade
    client = connect("http://127.0.0.1:8080")
    t = client.timeof(SOURCE, params={...}, cluster="paper")

The served result is **bitwise-identical** to the direct in-process
call — server and tests share one execution path
(:meth:`repro.serve.exec.Executor.execute`).
"""

from .batcher import Batch, BatchPlanner
from .client import ServeClient, ServeHTTPError, connect
from .exec import Executor, WorldContext
from .jobs import JOB_STATES, Job, JobStore
from .protocol import (
    PROTOCOL_VERSION,
    SERVE_OPS,
    BadRequest,
    JobRequest,
    JobTimeout,
    NotFound,
    QuotaExceeded,
    ServeError,
    validate_request,
)
from .server import BATCH_WINDOW, DEFAULT_WAIT, ServeServer
from .workers import WorkerPool

__all__ = [
    "ServeServer",
    "ServeClient",
    "ServeHTTPError",
    "connect",
    "Executor",
    "WorldContext",
    "WorkerPool",
    "BatchPlanner",
    "Batch",
    "Job",
    "JobStore",
    "JOB_STATES",
    "JobRequest",
    "validate_request",
    "ServeError",
    "BadRequest",
    "QuotaExceeded",
    "JobTimeout",
    "NotFound",
    "PROTOCOL_VERSION",
    "SERVE_OPS",
    "DEFAULT_WAIT",
    "BATCH_WINDOW",
]
