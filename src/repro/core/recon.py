"""Benchmark functions for ``HMPI_Recon``.

``HMPI_Recon`` executes a user benchmark on every process and refreshes the
speed estimates from the measured times.  The paper stresses that the
benchmark must be "truly representative of the underlying application" —
the EM3D program uses serial nodal-value computation for one sub-body, the
matrix program a serial r×r matrix multiplication.  The factories here
build such benchmarks: each charges exactly one benchmark unit of modelled
time (by definition of the unit) and optionally executes a small real
NumPy kernel so profiling the simulation shows a realistic call profile.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from ..mpi.launcher import MPIEnv

__all__ = ["unit_benchmark", "kernel_benchmark", "matmul_kernel", "stencil_kernel"]


def unit_benchmark(volume: float = 1.0) -> Callable[[MPIEnv], None]:
    """A pure modelled benchmark of ``volume`` benchmark units."""

    def bench(env: MPIEnv) -> None:
        env.compute(volume)

    return bench


def kernel_benchmark(
    kernel: Callable[[], Any], volume: float = 1.0
) -> Callable[[MPIEnv], None]:
    """Wrap a real Python kernel: runs it, charges ``volume`` units.

    The kernel's wall-clock cost is irrelevant to virtual time (the model
    charge is explicit); it exists so the benchmark body matches the
    application's actual core computation, as the paper requires.
    """

    def bench(env: MPIEnv) -> None:
        kernel()
        env.compute(volume)

    return bench


def matmul_kernel(r: int = 8, seed: int = 0) -> Callable[[], np.ndarray]:
    """The ``rMxM`` benchmark core: multiply two r×r matrices."""
    rng = np.random.default_rng(seed)
    a = rng.random((r, r))
    b = rng.random((r, r))

    def kernel() -> np.ndarray:
        return a @ b

    return kernel


def stencil_kernel(k: int = 64, seed: int = 0) -> Callable[[], np.ndarray]:
    """The ``Serial_em3d`` benchmark core: update k nodal values, each a
    linear function of its neighbours' values."""
    rng = np.random.default_rng(seed)
    values = rng.random(k + 2)
    weights = rng.random((k, 3))

    def kernel() -> np.ndarray:
        stacked = np.stack([values[:-2], values[1:-1], values[2:]], axis=1)
        return (weights * stacked).sum(axis=1)

    return kernel
