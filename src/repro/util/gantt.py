"""Text Gantt charts from execution traces.

Renders a :class:`repro.mpi.tracing.Tracer`'s events as one row of fixed
width per rank: ``#`` for computation, ``s`` for send activity, ``.`` for
waiting in a receive, space for idle.  Meant for terminals, docstrings and
tests — a ten-second way to *see* why one group beats another.

>>> print(render_gantt(tracer, width=60))          # doctest: +SKIP
rank 0 |######s.....######                        | 12.3s
rank 1 |..........########################        | 12.3s
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.tracing import Tracer

__all__ = ["render_gantt", "utilization"]

#: Priority of glyphs when activities overlap within one cell.
_GLYPHS = {"compute": "#", "send": "s", "recv": "."}
_PRIORITY = {"#": 3, "s": 2, ".": 1, " ": 0}


def render_gantt(tracer: "Tracer", width: int = 72,
                 t_end: float | None = None) -> str:
    """Render the trace as one fixed-width text row per rank."""
    if len(tracer) == 0:
        return "(empty trace)"
    t_end = tracer.makespan() if t_end is None else t_end
    if t_end <= 0:
        return "(trace has no duration)"
    nranks = tracer.nranks()
    scale = width / t_end

    lines = []
    for rank in range(nranks):
        cells = [" "] * width
        for e in tracer.of_rank(rank):
            glyph = _GLYPHS.get(e.kind)
            if glyph is None:
                continue
            c0 = min(width - 1, int(e.t0 * scale))
            c1 = min(width - 1, int(e.t1 * scale))
            if c1 < c0:
                c0, c1 = c1, c0
            for c in range(c0, c1 + 1):
                if _PRIORITY[glyph] > _PRIORITY[cells[c]]:
                    cells[c] = glyph
        finish = max((e.t1 for e in tracer.of_rank(rank)), default=0.0)
        lines.append(f"rank {rank:2d} |{''.join(cells)}| {finish:.3f}s")
    legend = "        (# compute, s send, . recv-wait, blank idle)"
    return "\n".join(lines + [legend])


def utilization(tracer: "Tracer", rank: int, t_end: float | None = None) -> float:
    """Fraction of the run this rank spent in modelled computation."""
    t_end = tracer.makespan() if t_end is None else t_end
    if t_end <= 0:
        return 0.0
    return tracer.total_compute_seconds(rank) / t_end
