"""Hierarchical collectives: correctness, selection, validation, metrics."""

import pytest

from repro.cluster import (
    clusters_of_clusters,
    paper_network,
    two_site_network,
    uniform_network,
)
from repro.mpi import SUM, run_mpi
from repro.obs import MetricsRegistry
from repro.util.errors import MPICommError

HIER_BCAST = ("binomial", "flat", "chain", "hierarchical", "auto")
HIER_REDUCE = ("binomial", "flat", "hierarchical", "auto")


def run_two_site(app, *args, **kwargs):
    return run_mpi(app, two_site_network(), args=args, timeout=30, **kwargs)


class TestCorrectness:
    """Every algorithm choice produces the defined collective result."""

    @pytest.mark.parametrize("algorithm", HIER_BCAST)
    @pytest.mark.parametrize("root", [0, 2, 7])
    def test_bcast(self, algorithm, root):
        def app(env):
            value = ("blob", root) if env.rank == root else None
            return env.comm_world.bcast(value, root=root, nbytes=1 << 16,
                                        algorithm=algorithm)

        res = run_two_site(app)
        assert res.results == [("blob", root)] * 8

    @pytest.mark.parametrize("algorithm", HIER_REDUCE)
    @pytest.mark.parametrize("root", [0, 3])
    def test_reduce(self, algorithm, root):
        def app(env):
            return env.comm_world.reduce(env.rank + 1, SUM, root=root,
                                         algorithm=algorithm)

        res = run_two_site(app)
        assert res.results[root] == 36
        assert all(r is None for i, r in enumerate(res.results) if i != root)

    @pytest.mark.parametrize("algorithm", ("ring", "hierarchical", "auto"))
    def test_allgather(self, algorithm):
        def app(env):
            return env.comm_world.allgather(env.rank * 11,
                                            algorithm=algorithm)

        res = run_two_site(app)
        assert res.results == [[r * 11 for r in range(8)]] * 8

    @pytest.mark.parametrize("algorithm",
                             ("dissemination", "hierarchical", "auto"))
    def test_barrier_orders_clocks(self, algorithm):
        def app(env):
            env.compute(float(env.rank + 1))
            entered = env.wtime()
            env.comm_world.barrier(algorithm=algorithm)
            return entered, env.wtime()

        res = run_two_site(app)
        last_entry = max(entered for entered, _ in res.results)
        assert all(left >= last_entry for _, left in res.results)

    @pytest.mark.parametrize("algorithm", HIER_REDUCE)
    def test_allreduce(self, algorithm):
        def app(env):
            return env.comm_world.allreduce(env.rank, SUM,
                                            algorithm=algorithm)

        res = run_two_site(app)
        assert res.results == [28] * 8

    def test_three_level_recursion(self):
        def app(env):
            value = "deep" if env.rank == 5 else None
            got = env.comm_world.bcast(value, root=5, algorithm="hierarchical")
            total = env.comm_world.reduce(env.rank, SUM, root=5,
                                          algorithm="hierarchical")
            return got, total

        res = run_mpi(app, clusters_of_clusters(), timeout=30)
        assert all(got == "deep" for got, _ in res.results)
        assert res.results[5][1] == 28

    def test_hierarchical_on_subgroup_comm(self):
        """A communicator over a subset of ranks partitions by the
        members' machines, not the world's."""
        def app(env):
            sub = env.comm_world.split(color=0 if env.rank in (1, 2, 5, 6)
                                       else 1)
            value = env.rank if sub.rank == 0 else None
            got = sub.bcast(value, algorithm="hierarchical")
            return got

        res = run_two_site(app)
        assert [res.results[r] for r in (1, 2, 5, 6)] == [1, 1, 1, 1]
        assert [res.results[r] for r in (0, 3, 4, 7)] == [0, 0, 0, 0]

    def test_hierarchical_without_topology_degrades(self):
        """No topology: hierarchical falls back to one binomial tree."""
        def app(env, algorithm):
            value = 9 if env.rank == 2 else None
            env.comm_world.bcast(value, root=2, nbytes=4096,
                                 algorithm=algorithm)
            return env.wtime()

        cluster = paper_network()
        hier = run_mpi(app, cluster, args=("hierarchical",), timeout=30)
        bino = run_mpi(app, cluster, args=("binomial",), timeout=30)
        assert hier.makespan == bino.makespan


class TestUnknownAlgorithmValidation:
    """Satellite: unknown algorithm values raise MPICommError uniformly."""

    @pytest.mark.parametrize("coll,call", [
        ("bcast", lambda c: c.bcast(1, algorithm="bogus")),
        ("reduce", lambda c: c.reduce(1, SUM, algorithm="bogus")),
        ("allreduce", lambda c: c.allreduce(1, SUM, algorithm="bogus")),
        ("allgather", lambda c: c.allgather(1, algorithm="bogus")),
        ("barrier", lambda c: c.barrier(algorithm="bogus")),
    ])
    def test_unknown_algorithm_raises(self, coll, call):
        def app(env):
            with pytest.raises(MPICommError,
                               match=f"unknown {coll} algorithm 'bogus'"):
                call(env.comm_world)
            return "checked"

        res = run_mpi(app, uniform_network([100.0, 100.0]), timeout=30)
        assert res.results == ["checked", "checked"]

    def test_error_message_lists_choices(self):
        def app(env):
            try:
                env.comm_world.reduce(1, SUM, algorithm="nope")
            except MPICommError as exc:
                return str(exc)
            return None

        res = run_mpi(app, uniform_network([100.0, 100.0]), timeout=30)
        assert "binomial" in res.results[0]
        assert "hierarchical" in res.results[0]


class TestVirtualTimeWins:
    """Acceptance: on the two-site preset, hierarchy pays off."""

    @staticmethod
    def _makespan(algorithm, coll="bcast"):
        def app(env):
            if coll == "bcast":
                value = b"x" if env.rank == 2 else None
                env.comm_world.bcast(value, root=2, nbytes=1 << 20,
                                     algorithm=algorithm)
            else:
                env.comm_world.reduce([float(env.rank)] * 1024, SUM,
                                      root=2, algorithm=algorithm)
            return env.wtime()

        return run_two_site(app).makespan

    def test_hierarchical_bcast_beats_binomial(self):
        assert self._makespan("hierarchical") < self._makespan("binomial")

    def test_hierarchical_reduce_beats_binomial(self):
        assert self._makespan("hierarchical", "reduce") < \
            self._makespan("binomial", "reduce")

    @pytest.mark.parametrize("coll", ["bcast", "reduce"])
    def test_auto_never_loses_to_worst_fixed(self, coll):
        algos = [a for a in (HIER_BCAST if coll == "bcast" else HIER_REDUCE)
                 if a != "auto"]
        worst = max(self._makespan(a, coll) for a in algos)
        assert self._makespan("auto", coll) <= worst + 1e-9


class TestMetricsRecording:
    def test_algorithm_counter_labels(self):
        def app(env):
            env.comm_world.bcast(1 if env.rank == 0 else None,
                                 nbytes=1 << 20, algorithm="auto")
            env.comm_world.reduce(env.rank, SUM, algorithm="binomial")

        metrics = MetricsRegistry()
        run_mpi(app, two_site_network(), timeout=30, metrics=metrics)
        by_labels = {
            tuple(sorted(inst.labels.items())): inst.value
            for inst in metrics.series("hmpi.coll.algorithm")
        }
        assert by_labels[
            (("algorithm", "hierarchical"), ("coll", "bcast"),
             ("level", "wan"))
        ] == 8.0
        assert by_labels[
            (("algorithm", "binomial"), ("coll", "reduce"), ("level", "-"))
        ] == 8.0

    def test_no_metrics_by_default(self):
        def app(env):
            env.comm_world.bcast(1 if env.rank == 0 else None)
            return "ok"

        res = run_mpi(app, two_site_network(), timeout=30)
        assert res.results == ["ok"] * 8
