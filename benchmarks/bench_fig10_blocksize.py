"""Figure 10 — matrix multiplication time vs generalized block size l.

Paper setup: r = 8, the 9-workstation network, a range of generalized
block sizes; the HMPI curve stays below the MPI baseline across l, and the
curve's minimum motivates the Timeof-driven optimal-block-size search of
Figure 8.

We sweep every divisor of n in [m, n] (the distribution requires l | n)
and print the HMPI time per l against the constant MPI baseline.
"""

import pytest

from repro.apps.matmul import candidate_block_sizes, run_matmul_hmpi, run_matmul_mpi
from repro.cluster import paper_network
from repro.core import GreedyMapper
from repro.util.tables import Table

N = 24   # matrix is (n*r) x (n*r) = 192 x 192 doubles
R = 8
M = 3
SEED = 10


def _sweep():
    mpi = run_matmul_mpi(paper_network(), n=N, r=R, m=M, seed=SEED)
    rows = []
    for l in candidate_block_sizes(N, M):
        hmpi = run_matmul_hmpi(paper_network(), n=N, r=R, m=M, l=l,
                               seed=SEED, mapper=GreedyMapper())
        assert hmpi.checksum == pytest.approx(mpi.checksum, rel=1e-9)
        rows.append((l, mpi.algorithm_time, hmpi.algorithm_time,
                     hmpi.predicted_time))
    return rows


def test_fig10_blocksize(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    t = Table("l", "t_MPI (s)", "t_HMPI (s)", "Timeof pred (s)",
              title=f"Figure 10 — MM execution time vs generalized block "
                    f"size (n={N}, r={R})")
    for l, t_mpi, t_hmpi, pred in rows:
        t.add(l, t_mpi, t_hmpi, pred)
    report.emit(t.render())

    best_l = min(rows, key=lambda row: row[2])[0]
    report.emit(f"fastest generalized block size: l = {best_l}")

    # Shape: at l == m the heterogeneous distribution degenerates to the
    # homogeneous block-cyclic one (every width/height is 1), so the times
    # coincide; every larger l gives the distribution room to balance and
    # beats the baseline.  The prediction tracks the measurement.
    for l, t_mpi, t_hmpi, pred in rows:
        if l == M:
            assert t_hmpi == pytest.approx(t_mpi, rel=1e-6)
        else:
            assert t_hmpi < t_mpi
        assert pred == pytest.approx(t_hmpi, rel=0.1)
