"""CI smoke test: the fault-tolerance example runs end to end.

The example is the documented walkthrough of the repair API; it asserts
its own invariants (repair happened, dead machine excluded, all
iterations completed), so the smoke test only needs a clean exit.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_fault_tolerance_example_runs_clean():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / "fault_tolerance.py")],
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "repair" in proc.stdout
    assert "lost — MachineFailure" in proc.stdout
