"""Property-based tests of virtual-time invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_network
from repro.core.estimator import estimate_time
from repro.core.netmodel import NetworkModel
from repro.mpi import run_mpi
from repro.perfmodel.builder import MatrixModel

speeds_strategy = st.lists(
    st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    min_size=2, max_size=5,
)


class TestEngineClockInvariants:
    @given(speeds=speeds_strategy, volume=st.floats(0.0, 500.0))
    @settings(max_examples=25, deadline=None)
    def test_compute_time_is_volume_over_speed(self, speeds, volume):
        cluster = uniform_network(speeds)

        def app(env):
            env.compute(volume)
            return env.wtime()

        res = run_mpi(app, cluster, timeout=30)
        for rank, t in enumerate(res.results):
            assert t == (volume / speeds[rank])

    @given(speeds=speeds_strategy)
    @settings(max_examples=20, deadline=None)
    def test_barrier_clock_dominance(self, speeds):
        """After a barrier, every clock >= every pre-barrier clock."""
        cluster = uniform_network(speeds)

        def app(env):
            env.compute(100.0 * (env.rank + 1))
            before = env.wtime()
            env.comm_world.barrier()
            return (before, env.wtime())

        res = run_mpi(app, cluster, timeout=30)
        max_before = max(b for b, _ in res.results)
        for _, after in res.results:
            assert after >= max_before - 1e-12

    @given(speeds=speeds_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_clocks_monotone_through_messaging(self, speeds, seed):
        cluster = uniform_network(speeds)
        rng = np.random.default_rng(seed)
        work = rng.uniform(0, 50, size=len(speeds)).tolist()

        def app(env):
            stamps = [env.wtime()]
            env.compute(work[env.rank])
            stamps.append(env.wtime())
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            env.comm_world.sendrecv(env.rank, right, 0, left, 0)
            stamps.append(env.wtime())
            return stamps

        res = run_mpi(app, cluster, timeout=30)
        for stamps in res.results:
            assert all(a <= b + 1e-12 for a, b in zip(stamps, stamps[1:]))


class TestEstimatorInvariants:
    @given(seed=st.integers(0, 2**31 - 1), nproc=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_makespan_at_least_compute_bound(self, seed, nproc):
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(5.0, 200.0, size=max(nproc, 2))
        cluster = uniform_network(speeds.tolist())
        nm = NetworkModel(cluster, list(range(cluster.size)))
        node = rng.uniform(0.0, 100.0, size=nproc)
        links = rng.uniform(0.0, 1e5, size=(nproc, nproc))
        np.fill_diagonal(links, 0.0)
        model = MatrixModel(node, links)
        machines = [int(rng.integers(0, cluster.size)) for _ in range(nproc)]
        t = estimate_time(model, nm, machines)
        from collections import Counter

        counts = Counter(machines)
        lower = max(
            node[i] / (speeds[machines[i]] / counts[machines[i]])
            for i in range(nproc)
        ) if nproc else 0.0
        assert t >= lower - 1e-9

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_faster_machines_never_hurt(self, seed):
        """Uniformly doubling all speeds cannot increase predicted time."""
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(5.0, 100.0, size=4)
        node = rng.uniform(1.0, 50.0, size=3)
        links = rng.uniform(0.0, 1e5, size=(3, 3))
        np.fill_diagonal(links, 0.0)
        model = MatrixModel(node, links)
        machines = [0, 1, 2]

        nm_slow = NetworkModel(uniform_network(speeds.tolist()), [0, 1, 2, 3])
        nm_fast = NetworkModel(uniform_network((2 * speeds).tolist()), [0, 1, 2, 3])
        assert (
            estimate_time(model, nm_fast, machines)
            <= estimate_time(model, nm_slow, machines) + 1e-9
        )

    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(1.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_compute_scaling_monotone(self, seed, scale):
        rng = np.random.default_rng(seed)
        node = rng.uniform(1.0, 50.0, size=3)
        links = rng.uniform(0.0, 1e4, size=(3, 3))
        np.fill_diagonal(links, 0.0)
        nm = NetworkModel(uniform_network([50.0, 25.0, 100.0]), [0, 1, 2])
        small = estimate_time(MatrixModel(node, links), nm, [0, 1, 2])
        big = estimate_time(MatrixModel(node * scale, links), nm, [0, 1, 2])
        assert big >= small - 1e-12
