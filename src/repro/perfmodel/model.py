"""Compiled performance models.

A :class:`PerformanceModel` is what the PMDL compiler produces from an
``algorithm`` definition — the "set of functions" the paper says make up
the algorithm-specific part of the HMPI runtime.  Binding it to concrete
parameter values yields a :class:`BoundModel` exposing exactly the four
features the paper enumerates:

1. the total number of abstract processors (``nproc``);
2. the computation volume of each processor, in benchmark units
   (``node_volumes``);
3. the communication volume between each ordered pair, in bytes
   (``link_volumes``);
4. the interaction order (``walk_scheme`` replays the ``scheme`` against an
   :class:`~repro.perfmodel.interp.ActionVisitor`).

A Python-native alternative (no DSL) implementing the same
:class:`AbstractBoundModel` interface lives in
:mod:`repro.perfmodel.builder`; the HMPI estimator and mapper work against
the interface only.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..util.errors import PMDLRuntimeError, PMDLSemanticError
from . import ast
from .interp import ActionVisitor, Environment, Interpreter

__all__ = [
    "AbstractBoundModel",
    "BoundModel",
    "PerformanceModel",
    "LinearActionVisitor",
    "default_scheme_walk",
]


class AbstractBoundModel(ABC):
    """What the HMPI runtime needs from any performance model."""

    @property
    @abstractmethod
    def nproc(self) -> int:
        """Total number of abstract processors executing the algorithm."""

    @abstractmethod
    def node_volumes(self) -> np.ndarray:
        """Per-processor computation volume in benchmark units, shape (nproc,)."""

    @abstractmethod
    def link_volumes(self) -> np.ndarray:
        """Pairwise communication volume in bytes, shape (nproc, nproc);
        entry [s, d] is the total sent from processor s to processor d."""

    @abstractmethod
    def parent_index(self) -> int:
        """Linear index of the parent processor."""

    @abstractmethod
    def walk_scheme(self, visitor: "LinearActionVisitor") -> None:
        """Replay the interaction order; falls back to a canonical
        one-round pattern when no scheme is given."""


class LinearActionVisitor:
    """Visitor over *linear* processor indices (coords already resolved).

    The structural hooks mirror :class:`~repro.perfmodel.interp.ActionVisitor`
    and default to no-ops; the net lowering pass overrides them.
    """

    def compute(self, percent: float, proc: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def transfer(self, percent: float, src: int, dst: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def enter_par(self, line: int) -> None:
        """A dynamic ``par`` loop instance begins (fork)."""

    def next_par_branch(self, line: int) -> None:
        """The next iteration (= parallel branch) of the current ``par``."""

    def exit_par(self, line: int) -> None:
        """The current ``par`` loop instance ends (join)."""

    def at_line(self, line: int) -> None:
        """The next action originates from this source line."""


class _CoordTranslator(ActionVisitor):
    """Adapts coordinate-tuple actions to linear-index actions."""

    def __init__(self, model: "BoundModel", inner: LinearActionVisitor):
        self.model = model
        self.inner = inner

    def compute(self, percent: float, coords: tuple[int, ...]) -> None:
        self.inner.compute(percent, self.model.linear_index(coords))

    def transfer(self, percent: float, src: tuple[int, ...], dst: tuple[int, ...]) -> None:
        self.inner.transfer(percent, self.model.linear_index(src),
                            self.model.linear_index(dst))

    def enter_par(self, line: int) -> None:
        self.inner.enter_par(line)

    def next_par_branch(self, line: int) -> None:
        self.inner.next_par_branch(line)

    def exit_par(self, line: int) -> None:
        self.inner.exit_par(line)

    def at_line(self, line: int) -> None:
        self.inner.at_line(line)


def default_scheme_walk(model: AbstractBoundModel, visitor: LinearActionVisitor) -> None:
    """Canonical interaction for scheme-less models: all transfers in
    parallel, then all computations in parallel (the EM3D pattern)."""
    links = model.link_volumes()
    srcs, dsts = np.nonzero(links)
    visitor.enter_par(0)
    for s, d in zip(srcs.tolist(), dsts.tolist()):
        visitor.next_par_branch(0)
        visitor.transfer(100.0, s, d)
    visitor.exit_par(0)
    visitor.enter_par(0)
    for p in range(model.nproc):
        visitor.next_par_branch(0)
        visitor.compute(100.0, p)
    visitor.exit_par(0)


class BoundModel(AbstractBoundModel):
    """A DSL performance model bound to concrete parameter values."""

    def __init__(self, perf_model: "PerformanceModel", params: dict[str, Any]):
        self._pm = perf_model
        self.params = params
        alg = perf_model.algorithm
        base = dict(params)
        interp = perf_model.interpreter
        env = Environment(base)
        self._extents: list[int] = []
        for coord in alg.coords:
            extent = interp.eval(coord.extent, env)
            if not isinstance(extent, int) or extent <= 0:
                raise PMDLRuntimeError(
                    f"coordinate {coord.name!r} extent must be a positive int, "
                    f"got {extent!r}"
                )
            self._extents.append(extent)
        self._coord_names = [c.name for c in alg.coords]
        self._node_volumes: np.ndarray | None = None
        self._link_volumes: np.ndarray | None = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def nproc(self) -> int:
        n = 1
        for e in self._extents:
            n *= e
        return n

    @property
    def extents(self) -> tuple[int, ...]:
        return tuple(self._extents)

    @property
    def coord_names(self) -> tuple[str, ...]:
        return tuple(self._coord_names)

    def linear_index(self, coords: tuple[int, ...]) -> int:
        """Row-major linear index of a coordinate tuple."""
        if len(coords) != len(self._extents):
            raise PMDLRuntimeError(
                f"expected {len(self._extents)} coordinates, got {coords!r}"
            )
        idx = 0
        for c, e in zip(coords, self._extents):
            if not 0 <= c < e:
                raise PMDLRuntimeError(
                    f"coordinate {coords!r} out of range for extents {self._extents}"
                )
            idx = idx * e + c
        return idx

    def coords_of(self, index: int) -> tuple[int, ...]:
        """Inverse of :meth:`linear_index`."""
        if not 0 <= index < self.nproc:
            raise PMDLRuntimeError(f"processor index {index} out of range")
        coords = []
        for e in reversed(self._extents):
            coords.append(index % e)
            index //= e
        return tuple(reversed(coords))

    def _coord_env(self, coords: tuple[int, ...]) -> Environment:
        env = Environment(self.params)
        for name, value in zip(self._coord_names, coords):
            env.declare(name, value)
        return env

    # ------------------------------------------------------------------
    # the four model features
    # ------------------------------------------------------------------
    def node_volumes(self) -> np.ndarray:
        if self._node_volumes is None:
            interp = self._pm.interpreter
            out = np.zeros(self.nproc, dtype=float)
            for coords in itertools.product(*(range(e) for e in self._extents)):
                env = self._coord_env(coords)
                for rule in self._pm.algorithm.node_rules:
                    if interp.eval(rule.condition, env):
                        out[self.linear_index(coords)] = float(
                            interp.eval(rule.volume, env)
                        )
                        break
            self._node_volumes = out
        return self._node_volumes

    def link_volumes(self) -> np.ndarray:
        """Pairwise byte volumes.

        Each link rule *asserts* the volume for the (source, destination)
        pair it names: re-assertions from link-variable values the rule does
        not use overwrite with the same value rather than accumulating.
        Distinct rules (e.g. matrix A vs matrix B traffic) accumulate.
        """
        if self._link_volumes is None:
            interp = self._pm.interpreter
            alg = self._pm.algorithm
            n = self.nproc
            out = np.zeros((n, n), dtype=float)
            env0 = Environment(self.params)
            link_extents = [interp.eval(lv.extent, env0) for lv in alg.link_vars]
            for ext, lv in zip(link_extents, alg.link_vars):
                if not isinstance(ext, int) or ext <= 0:
                    raise PMDLRuntimeError(
                        f"link variable {lv.name!r} extent must be a positive int"
                    )
            for rule_idx, rule in enumerate(alg.link_rules):
                asserted: dict[tuple[int, int], float] = {}
                for coords in itertools.product(*(range(e) for e in self._extents)):
                    env = self._coord_env(coords)
                    for lv_values in itertools.product(*(range(e) for e in link_extents)):
                        env.push()
                        try:
                            for lv, value in zip(alg.link_vars, lv_values):
                                env.declare(lv.name, value)
                            if not interp.eval(rule.condition, env):
                                continue
                            src = tuple(int(interp.eval(c, env)) for c in rule.src)
                            dst = tuple(int(interp.eval(c, env)) for c in rule.dst)
                            volume = float(interp.eval(rule.volume, env))
                            key = (self.linear_index(src), self.linear_index(dst))
                            asserted[key] = volume
                        finally:
                            env.pop()
                for (s, d), volume in asserted.items():
                    out[s, d] += volume
            self._link_volumes = out
        return self._link_volumes

    def parent_index(self) -> int:
        alg = self._pm.algorithm
        if alg.parent is None:
            return 0
        interp = self._pm.interpreter
        env = Environment(self.params)
        coords = tuple(int(interp.eval(c, env)) for c in alg.parent.coords)
        return self.linear_index(coords)

    def walk_scheme(self, visitor: LinearActionVisitor) -> None:
        alg = self._pm.algorithm
        if alg.scheme is None:
            default_scheme_walk(self, visitor)
            return
        interp = self._pm.interpreter
        # Coordinate names are not in scope inside a scheme — it describes
        # all processors at once; only the parameters are visible.
        env = Environment(self.params)
        translator = _CoordTranslator(self, visitor)
        interp.exec_block(alg.scheme.body, env, translator)


class PerformanceModel:
    """A compiled ``algorithm`` definition plus its execution context.

    Equivalent to the handle the paper passes around as
    ``const HMPI_Model*`` — it encapsulates the generated functions.
    """

    def __init__(
        self,
        algorithm: ast.Algorithm,
        structs: dict[str, ast.StructDef] | None = None,
        externals: dict[str, Callable[..., Any]] | None = None,
        diagnostics: tuple = (),
    ):
        self.algorithm = algorithm
        self.structs = dict(structs or {})
        self.externals = dict(externals or {})
        self.interpreter = Interpreter(self.structs, self.externals)
        #: Non-fatal analyzer findings (warnings/infos) from compilation.
        self.diagnostics = tuple(diagnostics)

    @property
    def name(self) -> str:
        return self.algorithm.name

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.algorithm.params)

    def register_external(self, name: str, fn: Callable[..., Any]) -> None:
        """Bind a Python callable invokable from the scheme (e.g. GetProcessor)."""
        self.externals[name] = fn
        self.interpreter.externals[name] = fn

    def bind(self, *args: Any, **kwargs: Any) -> BoundModel:
        """Bind parameter values (positionally, by name, or mixed).

        Array parameters accept nested sequences or NumPy arrays; declared
        dimensions are validated against the scalar parameters they
        reference.
        """
        alg = self.algorithm
        params: dict[str, Any] = {}
        if len(args) > len(alg.params):
            raise PMDLSemanticError(
                f"{self.name} takes {len(alg.params)} parameters, got {len(args)}"
            )
        for p, value in zip(alg.params, args):
            params[p.name] = value
        for name, value in kwargs.items():
            if name not in self.param_names:
                raise PMDLSemanticError(f"{self.name} has no parameter {name!r}")
            if name in params:
                raise PMDLSemanticError(f"parameter {name!r} given twice")
            params[name] = value
        missing = [p.name for p in alg.params if p.name not in params]
        if missing:
            raise PMDLSemanticError(f"{self.name} missing parameters: {missing}")
        self._validate(params)
        return BoundModel(self, params)

    def _validate(self, params: dict[str, Any]) -> None:
        interp = self.interpreter
        env = Environment(params)
        for p in self.algorithm.params:
            value = params[p.name]
            if not p.dims:
                if isinstance(value, (bool, float)) and p.type_name == "int":
                    raise PMDLSemanticError(
                        f"parameter {p.name!r} must be an int, got {value!r}"
                    )
                continue
            arr = np.asarray(value)
            if arr.ndim != len(p.dims):
                raise PMDLSemanticError(
                    f"parameter {p.name!r} must have {len(p.dims)} dimensions, "
                    f"got {arr.ndim}"
                )
            for axis, dim_expr in enumerate(p.dims):
                expected = interp.eval(dim_expr, env)
                if arr.shape[axis] != expected:
                    raise PMDLSemanticError(
                        f"parameter {p.name!r} axis {axis} must have length "
                        f"{expected}, got {arr.shape[axis]}"
                    )
            # Store as an ndarray so multi-dim indexing a[i][j] works and
            # element reads come back as Python scalars via the interpreter.
            params[p.name] = arr

    def __repr__(self) -> str:
        return f"PerformanceModel({self.name!r}, params={list(self.param_names)})"
