"""Nonblocking-operation request objects (MPI_Request analogue).

Sends are eager in this substrate, so a send request is born complete.
Receive requests wrap an engine-level posted receive and complete when a
matching message is matched; ``wait`` charges the arrival time to the
receiving rank's clock, exactly like a blocking receive would.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..util.errors import MPIError
from .status import Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .communicator import Comm
    from .engine import PostedRecv

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall", "testall"]


class Request:
    """Abstract handle for an in-flight nonblocking operation."""

    def test(self) -> tuple[bool, Any, Status | None]:
        """Non-blocking completion check: ``(done, value, status)``."""
        raise NotImplementedError

    def wait(self) -> tuple[Any, Status | None]:
        """Block until complete; return ``(value, status)``."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        done, _, _ = self.test()
        return done


class SendRequest(Request):
    """An eager send: complete on creation, wait/test are immediate."""

    __slots__ = ()

    def test(self) -> tuple[bool, Any, Status | None]:
        return True, None, None

    def wait(self) -> tuple[Any, Status | None]:
        return None, None


class RecvRequest(Request):
    """A posted receive awaiting its match."""

    __slots__ = ("_comm", "_posted", "_value", "_status", "_consumed", "_timeout")

    def __init__(self, comm: "Comm", posted: "PostedRecv",
                 timeout: float | None = None):
        self._comm = comm
        self._posted = posted
        self._value: Any = None
        self._status: Status | None = None
        self._consumed = False
        self._timeout = timeout

    def _finish(self) -> None:
        if not self._consumed:
            value, status = self._comm._engine.wait_recv(
                self._comm._world_rank, self._posted, timeout=self._timeout)
            self._value = value
            self._status = self._comm._localize_status(status)
            self._consumed = True

    def test(self) -> tuple[bool, Any, Status | None]:
        if self._consumed:
            return True, self._value, self._status
        # Let ready peers run first so a test/poll loop observes progress
        # under cooperative backends (no-op under "threads").
        self._comm._engine.progress(self._comm._world_rank)
        if self._posted.done:
            self._finish()
            return True, self._value, self._status
        return False, None, None

    def wait(self) -> tuple[Any, Status | None]:
        self._finish()
        return self._value, self._status


def waitall(requests: Sequence[Request]) -> list[tuple[Any, Status | None]]:
    """Wait on every request, in order; returns their (value, status) pairs.

    Receives complete independently (each charges its own arrival), so
    sequential waiting is semantically identical to MPI_Waitall here.
    """
    return [req.wait() for req in requests]


def testall(requests: Sequence[Request]) -> bool:
    """True when every request has completed (without blocking)."""
    if not requests:
        return True
    results = [req.test()[0] for req in requests]
    return all(results)
