"""Host-side self-profiler: both backends fill SchedulerProfile, the
engine publishes it as gauges and streams lifecycle telemetry."""

import pytest

from repro.cluster import uniform_network
from repro.mpi import run_mpi
from repro.mpi.scheduler import SchedulerProfile
from repro.obs import EventBus, MetricsRegistry

BACKENDS = ("events", "threads")


def ring_app(env):
    comm = env.comm_world
    nxt = (env.rank + 1) % env.size
    prv = (env.rank - 1) % env.size
    if env.rank == 0:
        comm.send(0, nxt, nbytes=8)
        comm.recv(prv)
    else:
        comm.send(comm.recv(prv), nxt, nbytes=8)
    return env.rank


class TestSchedulerProfile:
    def test_fresh_profile_is_zeroed(self):
        profile = SchedulerProfile("events")
        assert profile.as_dict() == {
            "backend": "events",
            "task_switches": 0,
            "heap_high_water": 0,
            "wall_seconds": 0.0,
            "switches_per_sec": 0.0,
        }

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_populates_profile(self, backend):
        registry = MetricsRegistry()
        result = run_mpi(ring_app, uniform_network([100.0] * 4),
                         engine=backend, metrics=registry)
        assert not result.failed
        switches = registry.get_value("engine.sched.task_switches",
                                      backend=backend)
        wall = registry.get_value("engine.sched.wall_seconds",
                                  backend=backend)
        # The event core dispatches every rank through the heap; the
        # thread backend only counts true blocking waits (under GIL
        # interleaving most receives find their message already queued).
        assert switches >= (4 if backend == "events" else 1)
        assert wall > 0.0

    def test_event_backend_tracks_heap_high_water(self):
        registry = MetricsRegistry()
        run_mpi(ring_app, uniform_network([100.0] * 6),
                engine="events", metrics=registry)
        high = registry.get_value("engine.sched.heap_high_water",
                                  backend="events")
        assert 1 <= high <= 6

    def test_switches_per_sec_derived(self):
        profile = SchedulerProfile("events")
        profile.task_switches = 10
        profile.wall_seconds = 2.0
        assert profile.switches_per_sec == 5.0


class TestEngineLifecycleTelemetry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_start_and_finish_events(self, backend):
        bus = EventBus()
        result = run_mpi(ring_app, uniform_network([100.0] * 4),
                         engine=backend, telemetry=bus)
        assert not result.failed
        events = [(e.category, e.name) for e in bus.tail()]
        assert events == [("engine", "run.start"), ("engine", "run.finish")]
        start, finish = bus.tail()
        assert start.payload["nprocs"] == 4
        assert start.payload["backend"] == backend
        assert finish.payload["failures"] == 0
        assert finish.payload["task_switches"] >= 1
        assert finish.payload["wall_seconds"] > 0.0

    def test_no_bus_no_events_no_errors(self):
        result = run_mpi(ring_app, uniform_network([100.0] * 4))
        assert not result.failed
