"""Fault injection surfaced through the engine."""

import pytest

from repro.cluster import FaultSchedule, inject_faults, uniform_network
from repro.mpi import run_mpi
from repro.util.errors import DeadlockError


def failing_cluster(fail_machine="m01", fail_at=0.5):
    cluster = uniform_network([100.0, 100.0, 100.0])
    inject_faults(cluster, FaultSchedule({fail_machine: fail_at}))
    return cluster


class TestFailureDuringCompute:
    def test_failed_rank_recorded_not_raised(self):
        cluster = failing_cluster()

        def app(env):
            env.compute(200.0)  # 2 s — machine m01 dies at 0.5
            return "survived"

        res = run_mpi(app, cluster, timeout=10)
        assert res.failed
        assert len(res.failures) == 1
        assert res.failures[0].machine == "m01"
        assert res.results[0] == "survived"
        assert res.results[1] is None
        assert res.results[2] == "survived"

    def test_failure_time_recorded(self):
        cluster = failing_cluster(fail_at=0.25)

        def app(env):
            env.compute(100.0)
            return True

        res = run_mpi(app, cluster, timeout=10)
        assert res.failures[0].vtime == pytest.approx(0.25)


class TestFailureCascades:
    def test_survivors_waiting_on_dead_rank_unblock(self):
        cluster = failing_cluster()

        def app(env):
            if env.rank == 1:
                env.compute(200.0)     # dies mid-compute
                env.comm_world.send("never", 0)
                return None
            if env.rank == 0:
                return env.comm_world.recv(1)  # stuck on the dead rank
            return "bystander"

        # The run terminates (no hang); the failure is recorded and the
        # secondary deadlock of rank 0 is not re-raised as a program bug.
        res = run_mpi(app, cluster, timeout=20)
        assert res.failed
        assert res.results[2] == "bystander"

    def test_pure_program_deadlock_still_raises(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            return env.comm_world.recv(1 - env.rank)

        with pytest.raises(DeadlockError):
            run_mpi(app, cluster, timeout=10)


class TestHealthyMachinesUnaffected:
    def test_no_failures_when_compute_fits(self):
        cluster = failing_cluster(fail_at=10.0)

        def app(env):
            env.compute(100.0)  # 1 s, finishes before the failure
            env.comm_world.barrier()
            return env.wtime()

        res = run_mpi(app, cluster, timeout=10)
        assert not res.failed
        assert all(r is not None for r in res.results)
