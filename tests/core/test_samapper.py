"""Simulated-annealing mapper."""

import numpy as np
import pytest

from repro.cluster import paper_network, random_network
from repro.core import ExhaustiveMapper, GreedyMapper, NetworkModel
from repro.core.samapper import AnnealingMapper
from repro.perfmodel import MatrixModel


def comm_heavy_model(rng, n):
    node = rng.uniform(5.0, 40.0, size=n)
    links = rng.uniform(0.0, 8e6, size=(n, n))
    np.fill_diagonal(links, 0.0)
    return MatrixModel(node, links)


class TestQuality:
    def test_never_worse_than_seed(self):
        rng = np.random.default_rng(5)
        nm = NetworkModel(paper_network(), list(range(9)))
        model = comm_heavy_model(rng, 6)
        seed = GreedyMapper().select(model, nm, list(range(9)))
        sa = AnnealingMapper(moves=200).select(model, nm, list(range(9)))
        assert sa.time <= seed.time + 1e-12

    def test_close_to_oracle_on_heterogeneous_links(self):
        rng = np.random.default_rng(2)
        cluster = random_network(6, seed=4)
        nm = NetworkModel(cluster, list(range(6)))
        model = comm_heavy_model(rng, 4)
        oracle = ExhaustiveMapper(reduce_symmetry=False).select(
            model, nm, list(range(6))
        )
        sa = AnnealingMapper(moves=600, rng_seed=1).select(
            model, nm, list(range(6))
        )
        assert sa.time <= oracle.time * 1.10

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        nm = NetworkModel(paper_network(), list(range(9)))
        model = comm_heavy_model(rng, 5)
        a = AnnealingMapper(moves=150, rng_seed=7).select(model, nm, list(range(9)))
        b = AnnealingMapper(moves=150, rng_seed=7).select(model, nm, list(range(9)))
        assert a.processes == b.processes
        assert a.time == b.time

    def test_respects_fixed(self):
        rng = np.random.default_rng(3)
        nm = NetworkModel(paper_network(), list(range(9)))
        model = comm_heavy_model(rng, 4)
        sa = AnnealingMapper(moves=150).select(
            model, nm, list(range(9)), fixed={0: 0}
        )
        assert sa.processes[0] == 0

    def test_all_pinned_returns_seed(self):
        rng = np.random.default_rng(4)
        nm = NetworkModel(paper_network(), list(range(9)))
        model = comm_heavy_model(rng, 2)
        sa = AnnealingMapper(moves=50).select(
            model, nm, list(range(9)), fixed={0: 3, 1: 5}
        )
        assert sa.processes == (3, 5)
