"""Property-based tests: collectives against reference semantics for
random communicator sizes, roots, and payloads."""

from functools import reduce as freduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import homogeneous_network
from repro.mpi import MAX, SUM, run_mpi

sizes = st.integers(1, 9)
payload_lists = st.lists(st.integers(-1000, 1000), min_size=1, max_size=9)


class TestBcastProperty:
    @given(size=sizes, root_frac=st.floats(0, 0.999),
           algorithm=st.sampled_from(["binomial", "flat", "chain"]))
    @settings(max_examples=30, deadline=None)
    def test_everyone_gets_roots_value(self, size, root_frac, algorithm):
        root = int(root_frac * size)

        def app(env):
            value = ("payload", env.rank) if env.rank == root else None
            return env.comm_world.bcast(value, root=root, algorithm=algorithm)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        assert res.results == [("payload", root)] * size


class TestReduceProperty:
    @given(values=payload_lists, root_frac=st.floats(0, 0.999))
    @settings(max_examples=30, deadline=None)
    def test_reduce_equals_functools_reduce(self, values, root_frac):
        size = len(values)
        root = int(root_frac * size)

        def app(env):
            return env.comm_world.reduce(values[env.rank], SUM, root=root)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        assert res.results[root] == sum(values)
        for r, out in enumerate(res.results):
            if r != root:
                assert out is None

    @given(values=payload_lists)
    @settings(max_examples=20, deadline=None)
    def test_allreduce_max(self, values):
        size = len(values)

        def app(env):
            return env.comm_world.allreduce(values[env.rank], MAX)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        assert res.results == [max(values)] * size


class TestScanProperty:
    @given(values=payload_lists)
    @settings(max_examples=20, deadline=None)
    def test_inclusive_prefix(self, values):
        size = len(values)

        def app(env):
            return env.comm_world.scan(values[env.rank], SUM)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        expected = [sum(values[: i + 1]) for i in range(size)]
        assert res.results == expected

    @given(values=payload_lists)
    @settings(max_examples=20, deadline=None)
    def test_exclusive_prefix(self, values):
        size = len(values)

        def app(env):
            return env.comm_world.exscan(values[env.rank], SUM)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        assert res.results[0] is None
        for i in range(1, size):
            assert res.results[i] == sum(values[:i])


class TestGatherScatterDuality:
    @given(values=payload_lists, root_frac=st.floats(0, 0.999))
    @settings(max_examples=20, deadline=None)
    def test_scatter_then_gather_is_identity(self, values, root_frac):
        size = len(values)
        root = int(root_frac * size)

        def app(env):
            mine = env.comm_world.scatter(
                list(values) if env.rank == root else None, root=root
            )
            return env.comm_world.gather(mine, root=root)

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        assert res.results[root] == list(values)


class TestAlltoallProperty:
    @given(size=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_alltoall_is_transpose(self, size, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, size=(size, size)).tolist()

        def app(env):
            return env.comm_world.alltoall(list(matrix[env.rank]))

        res = run_mpi(app, homogeneous_network(size), timeout=30)
        for r in range(size):
            assert res.results[r] == [matrix[s][r] for s in range(size)]
