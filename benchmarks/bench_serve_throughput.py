"""Serving throughput — batched warm-cache serving vs naive evaluation.

The server exists because `HMPI_Timeof` is a pure function of
(model, cluster, params): identical-shape requests coalesce through the
batch planner and hit the speed-epoch-keyed selection cache, so the
marginal cost of a served prediction is HTTP framing, not a selection.
This bench pins that claim on an identical-shape Timeof workload (the
capacity-planning case: many tenants asking the same question about the
same world):

- **naive** — one-job-at-a-time evaluation, each request paying the
  full compile + world build + selection a standalone script pays
  (fresh :class:`~repro.serve.exec.Executor` per request);
- **served** — concurrent clients against a warm in-process
  :class:`~repro.serve.server.ServeServer`, requests riding the batcher
  and the shared selection cache.

The served pipeline must sustain **≥ 5×** the naive request throughput.
A second check isolates the planner: a burst submitted inside one batch
window must collapse to a single dispatched batch (N jobs, 1
evaluation).

With ``--smoke``, a quick regression check compares served throughput
against ``benchmarks/baselines/serve_smoke.json`` (fails below half the
recorded rate, with a generous floor for slow shared runners).
"""

import json
import pathlib
import threading
import time

import pytest

from repro.apps.em3d import generate_problem
from repro.apps.em3d.model import EM3D_MODEL_SOURCE
from repro.serve import Executor, ServeClient, ServeServer, validate_request
from repro.util.tables import Table

NAIVE_JOBS = 40
CLIENTS = 16
PER_CLIENT = 8
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "serve_smoke.json"

_problem = generate_problem(p=8, total_nodes=24_000, seed=5,
                            boundary_fraction=0.3)
PARAMS = {"p": 8, "k": 100, "d": _problem.d.tolist(),
          "dep": _problem.dep.tolist()}
RAW = {"op": "timeof", "model": EM3D_MODEL_SOURCE, "params": PARAMS,
       "cluster": "paper"}


def _naive_throughput(jobs: int) -> tuple[float, float]:
    """One-job-at-a-time: every request pays the whole evaluation."""
    from repro.perfmodel import clear_compile_cache

    req = validate_request(dict(RAW))
    t0 = time.perf_counter()
    for _ in range(jobs):
        clear_compile_cache()  # a fresh process has no compile cache
        Executor().execute(req)
    wall = time.perf_counter() - t0
    return jobs / wall, wall


def _served_throughput(clients: int, per_client: int) -> tuple[float, float]:
    """Concurrent identical-shape clients against a warm server."""
    server = ServeServer(workers=0).start_background()
    try:
        ServeClient(server.url, tenant="warm").timeof(
            EM3D_MODEL_SOURCE, params=PARAMS, cluster="paper")
        errors: list[Exception] = []

        def hammer(i: int) -> None:
            client = ServeClient(server.url, tenant=f"tenant-{i}")
            for _ in range(per_client):
                try:
                    client.timeof(EM3D_MODEL_SOURCE, params=PARAMS,
                                  cluster="paper")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(clients)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        assert not errors, errors[:1]
        return clients * per_client / wall, wall
    finally:
        server.stop()


def test_serve_throughput(report):
    """Batched warm-cache serving must beat naive evaluation ≥ 5×."""
    naive_rps, naive_wall = _naive_throughput(NAIVE_JOBS)
    served_rps, served_wall = max(
        (_served_throughput(CLIENTS, PER_CLIENT) for _ in range(2)),
        key=lambda r: r[0])

    t = Table("pipeline", "requests", "req/sec", "wall (s)",
              title="Serving throughput — identical-shape EM3D Timeof "
                    f"(p=8, paper cluster)")
    t.add("naive one-job-at-a-time", NAIVE_JOBS, f"{naive_rps:,.0f}",
          f"{naive_wall:.2f}")
    t.add(f"served ({CLIENTS} clients, warm cache)",
          CLIENTS * PER_CLIENT, f"{served_rps:,.0f}", f"{served_wall:.2f}")
    t.add("speedup (x)", "", f"{served_rps / naive_rps:.1f}", "")
    report.emit(t.render())

    assert served_rps >= 5.0 * naive_rps, (
        f"served {served_rps:,.0f} req/s is less than 5x the naive "
        f"{naive_rps:,.0f} req/s")


def test_serve_burst_coalesces_to_one_batch(report):
    """A one-window burst is one dispatched batch: N jobs, 1 evaluation."""
    server = ServeServer(workers=0, batch_window=0.25).start_background()
    try:
        n = 12
        results: list[float] = []

        def submit(i: int) -> None:
            client = ServeClient(server.url, tenant=f"burst-{i}")
            results.append(client.timeof(
                EM3D_MODEL_SOURCE, params=PARAMS, cluster="paper"))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = ServeClient(server.url).healthz()["batcher"]
        t = Table("jobs in", "batches out", "coalesced",
                  title="Batch planner — identical burst in one window")
        t.add(stats["jobs_in"], stats["batches_out"], stats["coalesced"])
        report.emit(t.render())
        assert len(set(results)) == 1
        assert stats["jobs_in"] == n
        assert stats["batches_out"] == 1
        assert stats["coalesced"] == n - 1
    finally:
        server.stop()


def test_serve_throughput_smoke(smoke):
    """Fail if warm-cache serving regressed >2x vs the recorded baseline,
    or no longer clears the 5x gate over naive evaluation."""
    if not smoke:
        pytest.skip("smoke regression check runs with --smoke")
    baseline = json.loads(BASELINE_PATH.read_text())
    naive_rps, _ = _naive_throughput(10)
    best = 0.0
    for _ in range(3):
        served_rps, _ = _served_throughput(8, 4)
        best = max(best, served_rps)
    assert best >= 5.0 * naive_rps, (
        f"served {best:,.0f} req/s is less than 5x naive {naive_rps:,.0f}")
    floor = min(0.5 * baseline["served_req_per_sec"], 300.0)
    assert best >= floor, (
        f"served {best:,.0f} req/s, floor {floor:,.0f} (baseline "
        f"{baseline['served_req_per_sec']:,.0f} recorded "
        f"{baseline['recorded']})")
