"""Fault-injection schedules.

The paper names resource failures as the second HNOC challenge and points at
FT-MPI; its conclusion envisions a library combining HMPI's heterogeneity
support with fault tolerance.  This module provides the ingredient the
simulator needs: a declarative schedule of machine deaths that can be applied
to a cluster, plus helpers to build common scenarios.

A failed machine makes every rank placed on it raise
:class:`~repro.util.errors.MachineFailure` the next time it computes or
communicates past the failure time; the HMPI runtime's recovery hooks (see
:mod:`repro.core.runtime`) can then rebuild a group without the dead machine.

In addition to permanent machine deaths, :class:`TransientLinkFaults`
models *transient* network faults — individual messages dropped or delayed
on inter-machine links according to a seeded schedule — which the engine
masks with retransmission and backoff (see ``FTConfig`` in
:mod:`repro.mpi.engine`).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..util.errors import ClusterError
from ..util.rng import make_rng
from .network import Cluster

__all__ = [
    "FaultSchedule",
    "inject_faults",
    "random_fault_schedule",
    "TransientFaultConfig",
    "TransientLinkFaults",
    "attach_transient_faults",
]


class FaultSchedule:
    """Mapping from machine name to the virtual time it fails."""

    def __init__(self, failures: Mapping[str, float] | None = None):
        self._failures: dict[str, float] = {}
        if failures:
            for name, t in failures.items():
                self.add(name, t)

    def add(self, machine: str, fail_at: float) -> None:
        """Schedule ``machine`` to die at virtual time ``fail_at``."""
        if fail_at < 0:
            raise ClusterError(f"fail_at must be >= 0, got {fail_at}")
        self._failures[machine] = fail_at

    def fail_time(self, machine: str) -> float | None:
        """The scheduled failure time of ``machine``, or None."""
        return self._failures.get(machine)

    def __len__(self) -> int:
        return len(self._failures)

    def items(self):
        return self._failures.items()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}@{v:g}" for k, v in sorted(self._failures.items()))
        return f"FaultSchedule({inner})"


def inject_faults(cluster: Cluster, schedule: FaultSchedule) -> Cluster:
    """Apply ``schedule`` to ``cluster`` in place and return it.

    Machines named in the schedule get their ``fail_at`` set; others are
    untouched.  Unknown machine names raise, to catch typos in experiment
    configuration early.
    """
    for name, t in schedule.items():
        cluster.machine(name).fail_at = t
    return cluster


def random_fault_schedule(
    cluster: Cluster,
    n_failures: int,
    horizon: float,
    seed: int = 0,
    spare: frozenset[str] = frozenset(),
) -> FaultSchedule:
    """Draw ``n_failures`` distinct machines to fail before ``horizon``.

    Machines in ``spare`` (e.g. the host machine) are never chosen.
    Deterministic given ``seed``.
    """
    candidates = [m.name for m in cluster.machines if m.name not in spare]
    if n_failures > len(candidates):
        raise ClusterError(
            f"cannot fail {n_failures} machines; only {len(candidates)} candidates"
        )
    rng = make_rng(seed)
    chosen = rng.choice(len(candidates), size=n_failures, replace=False)
    schedule = FaultSchedule()
    for idx in sorted(int(i) for i in chosen):
        schedule.add(candidates[idx], float(rng.uniform(0.0, horizon)))
    return schedule


@dataclass(frozen=True)
class TransientFaultConfig:
    """Per-link transient fault rates, active in a virtual-time window.

    ``drop_prob`` — each message copy is lost with this probability and
    must be retransmitted by the sender.  ``delay_prob``/``delay`` — the
    copy arrives, but ``delay`` virtual seconds late (network jitter).
    Faults only apply to messages *sent* while ``start <= vtime < stop``.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay: float = 0.0
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop_prob <= 1.0):
            raise ClusterError(f"drop_prob must be in [0, 1], got {self.drop_prob}")
        if not (0.0 <= self.delay_prob <= 1.0):
            raise ClusterError(f"delay_prob must be in [0, 1], got {self.delay_prob}")
        if self.drop_prob + self.delay_prob > 1.0:
            raise ClusterError(
                "drop_prob + delay_prob must not exceed 1, got "
                f"{self.drop_prob} + {self.delay_prob}"
            )
        if self.delay < 0.0:
            raise ClusterError(f"delay must be >= 0, got {self.delay}")
        if self.stop < self.start:
            raise ClusterError(
                f"stop ({self.stop}) must be >= start ({self.start})"
            )

    @property
    def active(self) -> bool:
        """Whether this config can ever perturb a message."""
        return self.drop_prob > 0.0 or self.delay_prob > 0.0


class TransientLinkFaults:
    """Seeded schedule of transient message faults on inter-machine links.

    Attach to a cluster with :func:`attach_transient_faults` (or by setting
    ``cluster.transient_faults``); the MPI engine consults it for every
    message copy it transmits between distinct machines.

    Determinism does not depend on thread interleaving: the outcome of a
    transmission is a pure function of ``(seed, src_rank, dst_rank, seq,
    attempt)``, where ``seq`` is the per-pair message sequence number
    (per-pair channels are ordered, so ``seq`` is interleaving-invariant)
    and ``attempt`` counts retransmissions of the same message.  Each
    outcome uses a counter-based Philox stream keyed on that tuple, so no
    shared mutable RNG state exists.
    """

    def __init__(
        self,
        config: TransientFaultConfig | None = None,
        seed: int = 0,
        pair_configs: Mapping[tuple[str, str], TransientFaultConfig] | None = None,
    ):
        self.default = config if config is not None else TransientFaultConfig()
        self.seed = int(seed)
        self.pair_configs: dict[tuple[str, str], TransientFaultConfig] = (
            dict(pair_configs) if pair_configs else {}
        )

    def config_for(self, src_machine: str, dst_machine: str) -> TransientFaultConfig:
        """The config governing messages from ``src_machine`` to ``dst_machine``."""
        return self.pair_configs.get((src_machine, dst_machine), self.default)

    def outcome(
        self,
        src_rank: int,
        dst_rank: int,
        src_machine: str,
        dst_machine: str,
        seq: int,
        attempt: int,
        vtime: float,
    ) -> tuple[str, float]:
        """Fate of one transmission attempt: ``(kind, extra_delay)``.

        ``kind`` is ``"ok"``, ``"drop"``, or ``"delay"``; ``extra_delay``
        is nonzero only for ``"delay"``.  Loopback (same machine) traffic
        is never perturbed — transient faults model the *network*.
        """
        if src_machine == dst_machine:
            return ("ok", 0.0)
        cfg = self.config_for(src_machine, dst_machine)
        if not cfg.active or not (cfg.start <= vtime < cfg.stop):
            return ("ok", 0.0)
        pair = (src_rank << 20) ^ dst_rank
        rng = np.random.Generator(
            np.random.Philox(counter=[seq, attempt, 0, 0], key=[self.seed, pair])
        )
        u = float(rng.random())
        if u < cfg.drop_prob:
            return ("drop", 0.0)
        if u < cfg.drop_prob + cfg.delay_prob:
            return ("delay", cfg.delay)
        return ("ok", 0.0)

    def __repr__(self) -> str:
        pairs = f", pairs={len(self.pair_configs)}" if self.pair_configs else ""
        return (
            f"TransientLinkFaults(seed={self.seed}, "
            f"drop={self.default.drop_prob:g}, delay_p={self.default.delay_prob:g}"
            f"{pairs})"
        )


def attach_transient_faults(
    cluster: Cluster, faults: TransientLinkFaults | None
) -> Cluster:
    """Attach (or clear, with None) a transient-fault schedule in place.

    Validates that pair configs name real machines, for the same
    catch-typos-early reason :func:`inject_faults` does.
    """
    if faults is not None:
        for src, dst in faults.pair_configs:
            cluster.machine(src)
            cluster.machine(dst)
    cluster.transient_faults = faults
    return cluster
