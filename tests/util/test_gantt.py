"""Direct unit tests for the text Gantt renderer and utilization.

Unlike tests/mpi/test_tracing.py, these build Tracer contents by hand so
every glyph, priority, and windowing rule is pinned without running the
engine.
"""

import pytest

from repro.mpi.tracing import TraceEvent, Tracer
from repro.util.gantt import render_gantt, utilization


def make_tracer(*events):
    tracer = Tracer()
    for e in events:
        tracer.record(e)
    return tracer


class TestGlyphs:
    def test_all_kinds_have_glyphs(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=1, kind="send", t0=0.0, t1=1.0, peer=0),
            TraceEvent(rank=2, kind="recv", t0=0.0, t1=1.0, peer=0),
            TraceEvent(rank=3, kind="coll", t0=0.0, t1=1.0, label="barrier"),
            TraceEvent(rank=4, kind="retransmit", t0=0.0, t1=1.0, peer=0),
            TraceEvent(rank=5, kind="repair", t0=0.0, t1=1.0, label="gid 1"),
            TraceEvent(rank=6, kind="death", t0=1.0, t1=1.0, label="m0"),
        )
        chart = render_gantt(tracer, width=20)
        rows = chart.splitlines()
        assert "#" in rows[0]
        assert "s" in rows[1]
        assert "." in rows[2]
        assert "=" in rows[3]
        assert "r" in rows[4]
        assert "R" in rows[5]
        assert "X" in rows[6]

    def test_unknown_kind_ignored(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=0, kind="martian", t0=0.0, t1=1.0),
        )
        chart = render_gantt(tracer, width=10)
        assert chart.splitlines()[0].count("#") == 10

    def test_legend_names_every_glyph(self):
        tracer = make_tracer(TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0))
        legend = render_gantt(tracer, width=10).splitlines()[-1]
        for glyph in ("#", "s", ".", "=", "r", "R", "X"):
            assert glyph in legend


class TestPriorities:
    def test_compute_beats_collective(self):
        # A collective's extent covers a compute interval (e.g. reduce
        # does local arithmetic): compute wins the overlapping cells.
        tracer = make_tracer(
            TraceEvent(rank=0, kind="coll", t0=0.0, t1=1.0, label="reduce"),
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=0.5),
        )
        row = render_gantt(tracer, width=10).splitlines()[0]
        bar = row.split("|")[1]
        assert bar[0] == "#"
        assert bar[-1] == "="

    def test_collective_fills_only_idle(self):
        # recv-wait inside a collective keeps its "." over the "=".
        tracer = make_tracer(
            TraceEvent(rank=0, kind="coll", t0=0.0, t1=1.0, label="bcast"),
            TraceEvent(rank=0, kind="recv", t0=0.5, t1=1.0, peer=1),
        )
        bar = render_gantt(tracer, width=10).splitlines()[0].split("|")[1]
        assert bar[0] == "="
        assert bar[-1] == "."

    def test_death_beats_everything(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=0, kind="death", t0=1.0, t1=1.0, label="m0"),
            TraceEvent(rank=1, kind="compute", t0=0.0, t1=2.0),
        )
        row0 = render_gantt(tracer, width=10).splitlines()[0]
        assert "X" in row0

    def test_repair_beats_compute(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=0, kind="repair", t0=0.0, t1=1.0, label="gid 0"),
        )
        bar = render_gantt(tracer, width=10).splitlines()[0].split("|")[1]
        assert bar.count("R") == 10


class TestWindowing:
    def test_empty_trace(self):
        assert "empty" in render_gantt(Tracer())

    def test_zero_duration(self):
        tracer = make_tracer(TraceEvent(rank=0, kind="compute", t0=1.0, t1=1.0))
        assert "no duration" in render_gantt(tracer)

    def test_window_starts_at_first_event(self):
        # Activity from t=100 to t=101 should fill the whole row, not
        # squash into the final cell of a 0..101 axis.
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=100.0, t1=101.0),
        )
        bar = render_gantt(tracer, width=10).splitlines()[0].split("|")[1]
        assert bar.count("#") == 10


class TestUtilization:
    def test_full_utilization(self):
        tracer = make_tracer(TraceEvent(rank=0, kind="compute", t0=0.0, t1=2.0))
        assert utilization(tracer, 0) == pytest.approx(1.0)

    def test_half_utilization(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=1, kind="compute", t0=0.0, t1=2.0),
        )
        assert utilization(tracer, 0) == pytest.approx(0.5)

    def test_excludes_pre_init_time(self):
        # Both ranks start tracing at t=10 (setup before HMPI_Init is
        # untraced); utilization is judged over [10, 12], not [0, 12].
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=10.0, t1=12.0),
            TraceEvent(rank=1, kind="compute", t0=10.0, t1=11.0),
        )
        assert utilization(tracer, 0) == pytest.approx(1.0)
        assert utilization(tracer, 1) == pytest.approx(0.5)

    def test_explicit_t_end(self):
        tracer = make_tracer(TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0))
        assert utilization(tracer, 0, t_end=4.0) == pytest.approx(0.25)

    def test_empty_trace_zero(self):
        assert utilization(Tracer(), 0) == 0.0

    def test_only_compute_counts(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=1.0),
            TraceEvent(rank=0, kind="send", t0=1.0, t1=2.0, peer=1),
            TraceEvent(rank=0, kind="coll", t0=2.0, t1=4.0, label="barrier"),
        )
        assert utilization(tracer, 0) == pytest.approx(0.25)


class TestZeroEventWindows:
    def test_rank_with_no_events_is_idle_zero(self):
        # Rank 1 exists in the world but never traced an event: its
        # utilization window is still [t0, makespan] and its share is 0.
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=2.0),
            TraceEvent(rank=2, kind="compute", t0=0.0, t1=1.0),
        )
        assert utilization(tracer, 1) == 0.0
        assert utilization(tracer, 2) == pytest.approx(0.5)

    def test_zero_width_window_is_zero_not_nan(self):
        # All events instantaneous at the same t: the window has no
        # duration, so utilization must come back 0.0, not divide by 0.
        tracer = make_tracer(
            TraceEvent(rank=0, kind="death", t0=5.0, t1=5.0),
        )
        assert utilization(tracer, 0) == 0.0

    def test_t_end_before_first_event_is_zero(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=10.0, t1=12.0),
        )
        assert utilization(tracer, 0, t_end=4.0) == 0.0

    def test_empty_trace_renders_placeholder(self):
        assert render_gantt(Tracer()) == "(empty trace)"

    def test_zero_duration_trace_renders_placeholder(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="death", t0=5.0, t1=5.0),
        )
        assert render_gantt(tracer) == "(trace has no duration)"

    def test_rank_with_no_events_renders_blank_lane(self):
        tracer = make_tracer(
            TraceEvent(rank=0, kind="compute", t0=0.0, t1=2.0),
            TraceEvent(rank=2, kind="compute", t0=0.0, t1=2.0),
        )
        lane = render_gantt(tracer, width=10).splitlines()[1]
        assert lane.startswith("rank  1 |")
        assert set(lane.split("|")[1]) == {" "}
