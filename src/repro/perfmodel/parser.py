"""Recursive-descent parser for the PMDL.

Accepts exactly the language of the paper's Figures 4 and 7 (and natural
generalisations): ``typedef struct`` definitions, one or more ``algorithm``
definitions with ``coord``/``node``/``link``/``parent``/``scheme`` sections,
and a C expression/statement subset inside schemes (including the ``par``
pattern, member access, postfix ``++``/``--``, compound assignment, the
address-of operator for external-function out-parameters, and ``sizeof``).

Operator precedence (low to high): assignment, ternary, ``||``, ``&&``,
equality, relational, additive, multiplicative, unary, postfix.
"""

from __future__ import annotations

from ..util.errors import PMDLSyntaxError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["parse", "parse_expression"]

_TYPE_KEYWORDS = {"int", "double", "float", "long", "char", "void"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.struct_names: set[str] = set()

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        t = self.tok
        if t.kind != TokenKind.EOF:
            self.pos += 1
        return t

    def error(self, msg: str) -> PMDLSyntaxError:
        t = self.tok
        return PMDLSyntaxError(f"{msg}; found {t.text!r}", t.line, t.column)

    def expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.tok.is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind != TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.tok.is_punct(text):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.tok.is_keyword(word):
            self.advance()
            return True
        return False

    def _is_type_name(self, t: Token) -> bool:
        if t.kind == TokenKind.KEYWORD and t.text in _TYPE_KEYWORDS:
            return True
        return t.kind == TokenKind.IDENT and t.text in self.struct_names

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_unit(self) -> list[ast.StructDef | ast.Algorithm]:
        items: list[ast.StructDef | ast.Algorithm] = []
        while self.tok.kind != TokenKind.EOF:
            if self.tok.is_keyword("typedef"):
                items.append(self.parse_typedef())
            elif self.tok.is_keyword("algorithm"):
                items.append(self.parse_algorithm())
            else:
                raise self.error("expected 'typedef' or 'algorithm'")
        return items

    def parse_typedef(self) -> ast.StructDef:
        line = self.tok.line
        self.expect_keyword("typedef")
        self.expect_keyword("struct")
        self.expect_punct("{")
        fields: list[ast.StructField] = []
        while not self.tok.is_punct("}"):
            fline = self.tok.line
            type_tok = self.advance()
            if not (type_tok.kind == TokenKind.KEYWORD and type_tok.text in _TYPE_KEYWORDS) \
                    and not (type_tok.kind == TokenKind.IDENT and type_tok.text in self.struct_names):
                raise PMDLSyntaxError(
                    f"expected field type, found {type_tok.text!r}",
                    type_tok.line, type_tok.column,
                )
            while True:
                name = self.expect_ident().text
                fields.append(ast.StructField(type_tok.text, name, line=fline))
                if not self.accept_punct(","):
                    break
            self.expect_punct(";")
        self.expect_punct("}")
        name = self.expect_ident().text
        self.expect_punct(";")
        self.struct_names.add(name)
        return ast.StructDef(name, fields, line=line)

    def parse_algorithm(self) -> ast.Algorithm:
        line = self.tok.line
        self.expect_keyword("algorithm")
        name = self.expect_ident().text
        self.expect_punct("(")
        params: list[ast.Param] = []
        if not self.tok.is_punct(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        self.expect_punct("{")

        coords: list[ast.CoordDecl] = []
        node_rules: list[ast.NodeRule] = []
        link_vars: list[ast.LinkVar] = []
        link_rules: list[ast.LinkRule] = []
        parent: ast.ParentDecl | None = None
        scheme: ast.Scheme | None = None

        while not self.tok.is_punct("}"):
            if self.tok.is_keyword("coord"):
                coords.extend(self.parse_coord())
            elif self.tok.is_keyword("node"):
                node_rules.extend(self.parse_node_block())
            elif self.tok.is_keyword("link"):
                lv, lr = self.parse_link_block()
                link_vars.extend(lv)
                link_rules.extend(lr)
            elif self.tok.is_keyword("parent"):
                parent = self.parse_parent()
            elif self.tok.is_keyword("scheme"):
                scheme = self.parse_scheme()
            else:
                raise self.error(
                    "expected 'coord', 'node', 'link', 'parent' or 'scheme'"
                )
        self.expect_punct("}")
        self.accept_punct(";")  # Fig 7 closes with '};'
        return ast.Algorithm(
            name=name, params=params, coords=coords, node_rules=node_rules,
            link_vars=link_vars, link_rules=link_rules, parent=parent,
            scheme=scheme, line=line,
        )

    def parse_param(self) -> ast.Param:
        line = self.tok.line
        type_tok = self.advance()
        if not self._is_type_name(type_tok):
            raise PMDLSyntaxError(
                f"expected parameter type, found {type_tok.text!r}",
                type_tok.line, type_tok.column,
            )
        name = self.expect_ident().text
        dims: list[ast.Expr] = []
        while self.accept_punct("["):
            dims.append(self.parse_expression())
            self.expect_punct("]")
        return ast.Param(type_tok.text, name, dims, line=line)

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------
    def parse_coord(self) -> list[ast.CoordDecl]:
        self.expect_keyword("coord")
        out: list[ast.CoordDecl] = []
        while True:
            line = self.tok.line
            name = self.expect_ident().text
            self.expect_punct("=")
            extent = self.parse_expression()
            out.append(ast.CoordDecl(name, extent, line=line))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return out

    def parse_node_block(self) -> list[ast.NodeRule]:
        self.expect_keyword("node")
        self.expect_punct("{")
        rules: list[ast.NodeRule] = []
        while not self.tok.is_punct("}"):
            line = self.tok.line
            condition = self.parse_expression()
            self.expect_punct(":")
            self.expect_keyword("bench")
            self.expect_punct("*")
            volume = self.parse_parenthesized()
            self.expect_punct(";")
            rules.append(ast.NodeRule(condition, volume, line=line))
        self.expect_punct("}")
        self.accept_punct(";")
        return rules

    def parse_link_block(self) -> tuple[list[ast.LinkVar], list[ast.LinkRule]]:
        self.expect_keyword("link")
        link_vars: list[ast.LinkVar] = []
        if self.accept_punct("("):
            while True:
                line = self.tok.line
                name = self.expect_ident().text
                self.expect_punct("=")
                extent = self.parse_expression()
                link_vars.append(ast.LinkVar(name, extent, line=line))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        self.expect_punct("{")
        rules: list[ast.LinkRule] = []
        while not self.tok.is_punct("}"):
            line = self.tok.line
            condition = self.parse_expression()
            self.expect_punct(":")
            self.expect_keyword("length")
            self.expect_punct("*")
            # The volume is exactly one parenthesized expression; parsing a
            # full postfix expression here would swallow the following
            # "[src]" coordinate list as array indexing.
            volume = self.parse_parenthesized()
            src = self.parse_coord_list()
            self.expect_punct("->")
            dst = self.parse_coord_list()
            self.expect_punct(";")
            rules.append(ast.LinkRule(condition, volume, src, dst, line=line))
        self.expect_punct("}")
        self.accept_punct(";")
        return link_vars, rules

    def parse_parenthesized(self) -> ast.Expr:
        """A ``( expression )`` group, with no postfix continuation."""
        self.expect_punct("(")
        inner = self.parse_expression()
        self.expect_punct(")")
        return inner

    def parse_coord_list(self) -> list[ast.Expr]:
        self.expect_punct("[")
        coords = [self.parse_expression()]
        while self.accept_punct(","):
            coords.append(self.parse_expression())
        self.expect_punct("]")
        return coords

    def parse_parent(self) -> ast.ParentDecl:
        line = self.tok.line
        self.expect_keyword("parent")
        coords = self.parse_coord_list()
        self.expect_punct(";")
        return ast.ParentDecl(coords, line=line)

    def parse_scheme(self) -> ast.Scheme:
        line = self.tok.line
        self.expect_keyword("scheme")
        self.expect_punct("{")
        body: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            body.append(self.parse_statement())
        self.expect_punct("}")
        self.accept_punct(";")
        return ast.Scheme(body, line=line)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Stmt:
        t = self.tok
        if t.is_punct("{"):
            return self.parse_block()
        if t.is_punct(";"):
            self.advance()
            return ast.EmptyStmt(line=t.line)
        if t.is_keyword("if"):
            return self.parse_if()
        if t.is_keyword("for"):
            return self.parse_loop("for")
        if t.is_keyword("par"):
            return self.parse_loop("par")
        if t.is_keyword("while"):
            return self.parse_while()
        if self._is_type_name(t) and self.peek().kind == TokenKind.IDENT:
            decl = self.parse_var_decl()
            self.expect_punct(";")
            return decl
        # expression statement or action
        expr = self.parse_expression()
        if self.tok.is_punct("%%"):
            return self.parse_action(expr)
        self.expect_punct(";")
        return ast.ExprStmt(expr, line=t.line)

    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect_punct("{")
        body: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            body.append(self.parse_statement())
        self.expect_punct("}")
        return ast.Block(body, line=line)

    def parse_if(self) -> ast.If:
        line = self.tok.line
        self.expect_keyword("if")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then = self.parse_statement()
        otherwise = None
        if self.accept_keyword("else"):
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise, line=line)

    def parse_while(self) -> ast.While:
        line = self.tok.line
        self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(cond, body, line=line)

    def parse_loop(self, keyword: str) -> ast.Stmt:
        line = self.tok.line
        self.expect_keyword(keyword)
        self.expect_punct("(")
        init: ast.Expr | ast.VarDecl | None = None
        if not self.tok.is_punct(";"):
            if self._is_type_name(self.tok) and self.peek().kind == TokenKind.IDENT:
                init = self.parse_var_decl()
            else:
                init = self.parse_expression()
        self.expect_punct(";")
        cond = None if self.tok.is_punct(";") else self.parse_expression()
        self.expect_punct(";")
        update = None if self.tok.is_punct(")") else self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        cls = ast.Par if keyword == "par" else ast.For
        return cls(init, cond, update, body, line=line)

    def parse_var_decl(self) -> ast.VarDecl:
        line = self.tok.line
        type_tok = self.advance()
        declarators: list[ast.Declarator] = []
        while True:
            name = self.expect_ident().text
            init = None
            if self.accept_punct("="):
                init = self.parse_expression()
            declarators.append(ast.Declarator(name, init, line=self.tok.line))
            if not self.accept_punct(","):
                break
        return ast.VarDecl(type_tok.text, declarators, line=line)

    def parse_action(self, percent: ast.Expr) -> ast.Stmt:
        line = self.tok.line
        self.expect_punct("%%")
        coords = self.parse_coord_list()
        if self.accept_punct("->"):
            dst = self.parse_coord_list()
            self.expect_punct(";")
            return ast.TransferAction(percent, coords, dst, line=line)
        self.expect_punct(";")
        return ast.ComputeAction(percent, coords, line=line)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        for op in ("=", "+=", "-=", "*=", "/="):
            if self.tok.is_punct(op):
                line = self.tok.line
                self.advance()
                value = self.parse_assignment()  # right associative
                return ast.Assign(left, op, value, line=line)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_logical_or()
        if self.tok.is_punct("?"):
            line = self.tok.line
            self.advance()
            then = self.parse_assignment()
            self.expect_punct(":")
            otherwise = self.parse_assignment()
            return ast.Conditional(cond, then, otherwise, line=line)
        return cond

    def _binary_level(self, sub, ops: tuple[str, ...]) -> ast.Expr:
        left = sub()
        while any(self.tok.is_punct(op) for op in ops):
            op = self.tok.text
            line = self.tok.line
            self.advance()
            right = sub()
            left = ast.Binary(op, left, right, line=line)
        return left

    def parse_logical_or(self) -> ast.Expr:
        return self._binary_level(self.parse_logical_and, ("||",))

    def parse_logical_and(self) -> ast.Expr:
        return self._binary_level(self.parse_equality, ("&&",))

    def parse_equality(self) -> ast.Expr:
        return self._binary_level(self.parse_relational, ("==", "!="))

    def parse_relational(self) -> ast.Expr:
        return self._binary_level(self.parse_additive, ("<", ">", "<=", ">="))

    def parse_additive(self) -> ast.Expr:
        return self._binary_level(self.parse_multiplicative, ("+", "-"))

    def parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(self.parse_unary, ("*", "/", "%"))

    def parse_unary(self) -> ast.Expr:
        t = self.tok
        if t.is_punct("-") or t.is_punct("+") or t.is_punct("!"):
            self.advance()
            return ast.Unary(t.text, self.parse_unary(), line=t.line)
        if t.is_punct("&"):
            self.advance()
            return ast.AddrOf(self.parse_unary(), line=t.line)
        if t.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            type_tok = self.advance()
            if not (type_tok.kind == TokenKind.KEYWORD and type_tok.text in _TYPE_KEYWORDS):
                raise PMDLSyntaxError(
                    f"sizeof expects a C type name, found {type_tok.text!r}",
                    type_tok.line, type_tok.column,
                )
            self.expect_punct(")")
            return ast.Sizeof(type_tok.text, line=t.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            t = self.tok
            if t.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(expr, index, line=t.line)
            elif t.is_punct("."):
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(expr, name, line=t.line)
            elif t.is_punct("++") or t.is_punct("--"):
                self.advance()
                expr = ast.IncDec(expr, t.text, line=t.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        t = self.tok
        if t.kind == TokenKind.INT:
            self.advance()
            return ast.IntLit(int(t.text), line=t.line)
        if t.kind == TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(float(t.text), line=t.line)
        if t.kind == TokenKind.IDENT:
            self.advance()
            if self.tok.is_punct("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.tok.is_punct(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                return ast.Call(t.text, args, line=t.line)
            return ast.Name(t.text, line=t.line)
        if t.is_punct("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        raise self.error("expected expression")


def parse(source: str) -> list[ast.StructDef | ast.Algorithm]:
    """Parse a PMDL source string into top-level definitions."""
    return _Parser(tokenize(source)).parse_unit()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and the builder API)."""
    p = _Parser(tokenize(source))
    expr = p.parse_expression()
    if p.tok.kind != TokenKind.EOF:
        raise p.error("trailing input after expression")
    return expr
