"""Python-native performance models (no DSL required).

Downstream users who prefer plain Python over the mpC-derived language can
describe the same four features with callables.  A
:class:`CallableModel` implements the same
:class:`~repro.perfmodel.model.AbstractBoundModel` interface the HMPI
runtime consumes, so both kinds of model are interchangeable everywhere
(``HMPI_Timeof``, ``HMPI_Group_create``, benchmarks, tests).

>>> model = CallableModel(
...     nproc=4,
...     node_volume=lambda i: 10.0 * (i + 1),
...     link_volume=lambda s, d: 1024.0 if s != d else 0.0,
... )
>>> model.node_volumes()
array([10., 20., 30., 40.])
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from ..util.errors import PMDLSemanticError
from .model import AbstractBoundModel, LinearActionVisitor, default_scheme_walk

__all__ = ["CallableModel", "MatrixModel"]


class CallableModel(AbstractBoundModel):
    """A bound performance model described by Python callables.

    Parameters
    ----------
    nproc:
        Number of abstract processors.
    node_volume:
        ``f(i) -> float`` — computation volume of processor ``i`` in
        benchmark units.
    link_volume:
        ``f(src, dst) -> float`` — total bytes from ``src`` to ``dst``.
    scheme:
        Optional ``f(visitor)`` replaying the interaction order through
        ``visitor.compute(percent, proc)`` / ``visitor.transfer(percent,
        src, dst)``.  Defaults to the canonical transfers-then-computes
        round.
    parent:
        Linear index of the parent processor (default 0).
    """

    def __init__(
        self,
        nproc: int,
        node_volume: Callable[[int], float],
        link_volume: Callable[[int, int], float],
        scheme: Callable[[LinearActionVisitor], None] | None = None,
        parent: int = 0,
        name: str = "callable-model",
    ):
        if nproc < 1:
            raise PMDLSemanticError("nproc must be >= 1")
        if not 0 <= parent < nproc:
            raise PMDLSemanticError(f"parent {parent} out of range for nproc {nproc}")
        self.name = name
        self._nproc = nproc
        self._node_volume = node_volume
        self._link_volume = link_volume
        self._scheme = scheme
        self._parent = parent
        self._node_cache: np.ndarray | None = None
        self._link_cache: np.ndarray | None = None

    @property
    def nproc(self) -> int:
        return self._nproc

    def node_volumes(self) -> np.ndarray:
        if self._node_cache is None:
            out = np.array([float(self._node_volume(i)) for i in range(self._nproc)])
            if (out < 0).any():
                raise PMDLSemanticError("node volumes must be non-negative")
            self._node_cache = out
        return self._node_cache

    def link_volumes(self) -> np.ndarray:
        if self._link_cache is None:
            n = self._nproc
            out = np.zeros((n, n), dtype=float)
            for s in range(n):
                for d in range(n):
                    if s != d:
                        out[s, d] = float(self._link_volume(s, d))
            if (out < 0).any():
                raise PMDLSemanticError("link volumes must be non-negative")
            self._link_cache = out
        return self._link_cache

    def parent_index(self) -> int:
        return self._parent

    def walk_scheme(self, visitor: LinearActionVisitor) -> None:
        if self._scheme is None:
            default_scheme_walk(self, visitor)
        else:
            self._scheme(visitor)

    def __repr__(self) -> str:
        return f"CallableModel({self.name!r}, nproc={self._nproc})"


class MatrixModel(CallableModel):
    """A bound model given directly as volume arrays.

    Convenient in tests and property-based checks: ``node`` is the
    per-processor benchmark-unit vector, ``links`` the pairwise byte
    matrix.
    """

    def __init__(
        self,
        node: Any,
        links: Any,
        scheme: Callable[[LinearActionVisitor], None] | None = None,
        parent: int = 0,
        name: str = "matrix-model",
    ):
        node_arr = np.asarray(node, dtype=float)
        link_arr = np.asarray(links, dtype=float)
        if node_arr.ndim != 1:
            raise PMDLSemanticError("node volumes must be a 1-D vector")
        n = node_arr.shape[0]
        if link_arr.shape != (n, n):
            raise PMDLSemanticError(
                f"link volumes must be {n}x{n}, got {link_arr.shape}"
            )
        super().__init__(
            nproc=n,
            node_volume=lambda i: float(node_arr[i]),
            link_volume=lambda s, d: float(link_arr[s, d]),
            scheme=scheme,
            parent=parent,
            name=name,
        )
        # Install caches eagerly; the arrays are the ground truth.
        self._node_cache = node_arr.copy()
        link_clean = link_arr.copy()
        np.fill_diagonal(link_clean, 0.0)
        self._link_cache = link_clean
