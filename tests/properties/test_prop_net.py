"""Differential properties of the Timeof backends.

The ``"net"`` backend (longest-path over the precomputed timing DAG)
must be **bitwise identical** to the default compiled-trace backend, and
both must match the ``"interp"`` backend (per-candidate scheme
re-interpretation) and the TimelineVisitor oracle to relative 1e-9 —
across random models, random clusters, single- and multi-port, scalar
and batched evaluation.  A separate test pins the runtime contract from
the issue: selecting with ``timeof_backend="net"`` hits the *same*
selection-cache keys as the default backend.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.netmodel import NetworkModel
from repro.core.runtime import HMPIRuntimeState
from repro.core.seleng import (
    InterpEvaluator,
    NetEvaluator,
    TraceEvaluator,
    make_evaluator,
)
from repro.util.errors import OptionError

from .test_prop_seleng import oracle_time, random_cluster, random_model

TOL = 1e-9


def _rel_close(a, b):
    return abs(a - b) <= TOL * max(1.0, abs(a), abs(b))


class TestNetBackendMatches:
    @given(
        seed=st.integers(0, 2**31 - 1),
        nproc=st.integers(1, 6),
        kind=st.integers(0, 2),
        single_port=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_net_bitwise_equals_trace(self, seed, nproc, kind, single_port):
        rng = np.random.default_rng(seed)
        cluster = random_cluster(rng, kind, single_port)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)
        trace = TraceEvaluator(model, netmodel)
        net = NetEvaluator(model, netmodel)

        mappings = [
            tuple(int(m) for m in rng.integers(0, cluster.size, size=nproc))
            for _ in range(4)
        ]
        for mapping in mappings:
            assert net.evaluate(mapping) == trace.evaluate(mapping)
        assert np.array_equal(
            net.evaluate_batch(mappings), trace.evaluate_batch(mappings)
        )

    @given(
        seed=st.integers(0, 2**31 - 1),
        nproc=st.integers(1, 5),
        kind=st.integers(0, 2),
        single_port=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_net_matches_interp_and_oracle(self, seed, nproc, kind,
                                           single_port):
        rng = np.random.default_rng(seed)
        cluster = random_cluster(rng, kind, single_port)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)
        net = NetEvaluator(model, netmodel)
        interp = InterpEvaluator(model, netmodel)

        for _ in range(3):
            mapping = tuple(
                int(m) for m in rng.integers(0, cluster.size, size=nproc)
            )
            n = net.evaluate(mapping)
            assert _rel_close(n, interp.evaluate(mapping))
            assert _rel_close(n, oracle_time(model, netmodel, mapping))

    @given(seed=st.integers(0, 2**31 - 1), nproc=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_timing_dag_is_cached_per_model(self, seed, nproc):
        rng = np.random.default_rng(seed)
        cluster = random_cluster(rng, 0, True)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)
        a = NetEvaluator(model, netmodel)
        b = NetEvaluator(model, netmodel)
        assert a._dag is b._dag  # one DAG per (model, shape)


class TestMakeEvaluator:
    def test_backend_registry(self):
        rng = np.random.default_rng(0)
        cluster = random_cluster(rng, 0, True)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, 3)
        assert type(make_evaluator(model, netmodel)) is TraceEvaluator
        assert type(make_evaluator(model, netmodel, None, "trace")) is TraceEvaluator
        assert type(make_evaluator(model, netmodel, None, "net")) is NetEvaluator
        assert type(make_evaluator(model, netmodel, None, "interp")) is InterpEvaluator
        with np.testing.assert_raises(OptionError):
            make_evaluator(model, netmodel, None, "bogus")


class TestRuntimeCacheContract:
    def _state_and_model(self, backend):
        rng = np.random.default_rng(7)
        cluster = random_cluster(rng, 0, True)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, 3)
        state = HMPIRuntimeState(netmodel, timeof_backend=backend)
        return state, model

    def test_net_backend_hits_same_cache_keys(self):
        """The backend is state-constant, so it must not change cache keys:
        selections made under ``"net"`` produce keys identical to the
        default backend's, and repeats hit the cache."""
        state_net, model = self._state_and_model("net")
        state_trace, _ = self._state_and_model("trace")

        m1 = state_net.select(model)
        assert state_net.selection_stats.cache_misses == 1
        m2 = state_net.select(model)  # same key -> hit
        assert state_net.selection_stats.cache_hits == 1
        assert m1 is m2

        # Key equality across backends: same (model-id-shape) tuple parts.
        key_net = next(iter(state_net._selection_cache))
        m3 = state_trace.select(model)
        key_trace = next(iter(state_trace._selection_cache))
        assert key_net[2:] == key_trace[2:]  # epoch, candidates, pins
        assert m1.processes == m3.processes
        assert m1.time == m3.time  # bitwise-identical pricing

    def test_backend_validated_eagerly(self):
        rng = np.random.default_rng(7)
        cluster = random_cluster(rng, 0, True)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        with np.testing.assert_raises(OptionError):
            HMPIRuntimeState(netmodel, timeof_backend="bogus")
