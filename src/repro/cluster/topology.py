"""Hierarchical network topology: sites, subnets, switches, machines.

The paper targets heterogeneous *networks* of computers, but a flat
pairwise mesh cannot express where machines actually sit: clusters of
clusters have a WAN between sites, a LAN between subnets, and a switch (or
shared memory) within a machine room, each layer with its own latency and
bandwidth class.  MPICH-G2 showed that making this multilevel structure
visible to the library — driving both collective algorithm choice and
process placement — is what makes message passing viable on such networks.

A :class:`Topology` is a tree of :class:`TopologyNode`: interior nodes are
communication *levels* (site, subnet, switch — any names/kinds you like,
arbitrary depth) carrying the :class:`~repro.cluster.link.Protocol` set
that governs traffic crossing that level; leaves name machines.  Two
machines communicate over the protocols of their **deepest common
ancestor**: the cheapest level that still spans both.  Attaching a
topology to a :class:`~repro.cluster.network.Cluster` makes every
unconfigured pair derive its link from the tree (explicitly configured
links still win), so the virtual-time engine, the selection engine's
link-cost tables, and ``HMPI_Timeof`` all price communication
hierarchically without further changes.

A degenerate one-level topology (root with only machine leaves) is
exactly the flat mesh: every pair's deepest common ancestor is the root,
so every pair costs the root's protocol — the property suite pins this
equivalence bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..util.errors import ClusterError
from .link import Link, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Cluster

__all__ = [
    "TopologyNode",
    "Topology",
    "TopologyReport",
    "topology_to_dict",
    "topology_from_dict",
]


@dataclass
class TopologyNode:
    """One node of the topology tree.

    Interior nodes (``children`` non-empty) are communication levels and
    must carry at least one protocol: traffic between machines whose
    deepest common ancestor is this node travels over (the fastest of)
    ``protocols``.  Leaves (``machine`` set) name a cluster machine;
    intra-machine traffic uses the cluster's loopback link, so leaves
    carry no protocols.
    """

    name: str
    kind: str = "level"  # descriptive: "site" | "subnet" | "switch" | ...
    protocols: tuple[Protocol, ...] = ()
    children: tuple["TopologyNode", ...] = ()
    machine: str | None = None

    def __post_init__(self) -> None:
        self.protocols = tuple(self.protocols)
        self.children = tuple(self.children)

    @classmethod
    def leaf(cls, machine: str) -> "TopologyNode":
        """A leaf node standing for one machine."""
        return cls(name=machine, kind="machine", machine=machine)

    @property
    def is_leaf(self) -> bool:
        return self.machine is not None

    def walk(self) -> Iterable[tuple[tuple[int, ...], "TopologyNode"]]:
        """Yield ``(path, node)`` pairs in depth-first order.

        ``path`` is the sequence of child indices from the root; the root
        itself has the empty path.
        """
        stack: list[tuple[tuple[int, ...], TopologyNode]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for i in range(len(node.children) - 1, -1, -1):
                stack.append(((*path, i), node.children[i]))


@dataclass
class TopologyReport:
    """Validation outcome: hard errors plus advisory warnings."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        lines = [f"error: {e}" for e in self.errors]
        lines += [f"warning: {w}" for w in self.warnings]
        return "\n".join(lines) if lines else "ok"


class Topology:
    """A machine hierarchy plus the pair-cost queries derived from it.

    Construct from a root :class:`TopologyNode`, then attach to a cluster
    with :meth:`Cluster.set_topology` (which calls :meth:`bind`).  Until
    bound, only structural queries (:meth:`leaf_names`, :meth:`validate`)
    are available; binding indexes the tree against the cluster's machine
    order and enables the per-pair queries the engine and estimator use.
    """

    def __init__(self, root: TopologyNode):
        self.root = root
        self._cluster: "Cluster | None" = None
        #: machine index -> path of child indices from root to its leaf
        self._paths: list[tuple[int, ...]] = []
        self._node_at: dict[tuple[int, ...], TopologyNode] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def leaf_names(self) -> list[str]:
        """Machine names at the leaves, in depth-first order."""
        return [n.machine for _, n in self.root.walk() if n.is_leaf]

    @property
    def depth(self) -> int:
        """Longest root-to-leaf path length (a flat tree has depth 1)."""
        return max((len(p) for p, n in self.root.walk() if n.is_leaf),
                   default=0)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, cluster: "Cluster | None" = None) -> TopologyReport:
        """Check the tree's structure (and, if given, its fit to a cluster).

        Errors make the topology unusable (duplicate machines, interior
        levels without protocols, machines missing from the cluster);
        warnings flag designs that work but defeat the point (a deeper
        level slower than its ancestor, single-child chains).
        """
        report = TopologyReport()
        seen: dict[str, int] = {}
        for path, node in self.root.walk():
            where = node.name or "/".join(map(str, path)) or "<root>"
            if node.is_leaf:
                if node.children:
                    report.errors.append(
                        f"leaf {where!r} (machine {node.machine!r}) has children"
                    )
                if node.protocols:
                    report.warnings.append(
                        f"leaf {where!r} carries protocols; intra-machine "
                        f"traffic uses the cluster loopback — they are ignored"
                    )
                seen[node.machine] = seen.get(node.machine, 0) + 1
                continue
            if not node.children:
                report.errors.append(
                    f"interior node {where!r} has neither children nor a machine"
                )
            if not node.protocols:
                report.errors.append(
                    f"level {where!r} has no protocols; pairs meeting at this "
                    f"level would have no transport"
                )
            if len(node.children) == 1:
                report.warnings.append(
                    f"level {where!r} has a single child; the level can never "
                    f"be a deepest common ancestor and only adds depth"
                )
        for name, count in seen.items():
            if count > 1:
                report.errors.append(
                    f"machine {name!r} appears {count} times in the topology"
                )

        # Advisory: a well-formed hierarchy gets *faster* as levels deepen
        # (WAN above LAN above switch); hierarchical collectives assume it.
        def best_time(protocols: tuple[Protocol, ...], nbytes: int) -> float:
            return min(p.transfer_time(nbytes) for p in protocols)

        probe = 1 << 16
        for path, node in self.root.walk():
            if node.is_leaf or not node.protocols:
                continue
            for i, child in enumerate(node.children):
                if child.is_leaf or not child.protocols:
                    continue
                if best_time(child.protocols, probe) > best_time(node.protocols, probe):
                    report.warnings.append(
                        f"level {child.name!r} is slower than its ancestor "
                        f"{node.name!r} for {probe}-byte messages; the "
                        f"hierarchy is inverted there"
                    )

        if cluster is not None:
            cluster_names = {m.name for m in cluster.machines}
            leaf_names = set(seen)
            for missing in sorted(cluster_names - leaf_names):
                report.errors.append(
                    f"cluster machine {missing!r} does not appear in the topology"
                )
            for extra in sorted(leaf_names - cluster_names):
                report.errors.append(
                    f"topology machine {extra!r} is not in the cluster"
                )
        return report

    # ------------------------------------------------------------------
    # binding to a cluster
    # ------------------------------------------------------------------
    def bind(self, cluster: "Cluster") -> None:
        """Index the tree against a cluster's machine order.

        Raises :class:`ClusterError` on validation errors (warnings pass).
        Normally called through :meth:`Cluster.set_topology`.
        """
        report = self.validate(cluster)
        if not report.ok:
            raise ClusterError(
                "invalid topology for cluster: " + "; ".join(report.errors)
            )
        paths: list[tuple[int, ...] | None] = [None] * cluster.size
        node_at: dict[tuple[int, ...], TopologyNode] = {}
        for path, node in self.root.walk():
            node_at[path] = node
            if node.is_leaf:
                paths[cluster.index_of(node.machine)] = path
        self._paths = [p for p in paths if p is not None]
        assert len(self._paths) == cluster.size
        self._node_at = node_at
        self._cluster = cluster

    def _require_bound(self) -> None:
        if self._cluster is None:
            raise ClusterError(
                "topology is not bound to a cluster; call Cluster.set_topology"
            )

    def path_of(self, machine_index: int) -> tuple[int, ...]:
        """Root-to-leaf child-index path of a machine."""
        self._require_bound()
        return self._paths[machine_index]

    def parent_key(self, machine_index: int) -> tuple[int, ...]:
        """Path of the machine's immediate parent level.

        Machines sharing a parent (and a speed) are fully interchangeable:
        their distances and pair protocols to every other machine are
        identical — the exhaustive mapper prunes on exactly this key.
        """
        return self.path_of(machine_index)[:-1]

    # ------------------------------------------------------------------
    # pair queries
    # ------------------------------------------------------------------
    def dca_depth(self, a: int, b: int) -> int:
        """Depth of the deepest common ancestor of two machines' leaves."""
        pa, pb = self.path_of(a), self.path_of(b)
        d = 0
        for x, y in zip(pa, pb):
            if x != y:
                break
            d += 1
        return d

    def dca_node(self, a: int, b: int) -> TopologyNode:
        """The deepest common ancestor level of two machines.

        For ``a == b`` this is the machine's own leaf (the pair is served
        by the cluster loopback, not by any level's protocols).
        """
        pa = self.path_of(a)
        return self._node_at[pa[: self.dca_depth(a, b)]]

    def distance(self, a: int, b: int) -> int:
        """Tree distance between two machines (0 for the same machine).

        The number of tree edges on the leaf-to-leaf path — the locality
        measure the mappers use: machines under one switch are closer than
        machines in different subnets, which are closer than different
        sites.
        """
        if a == b:
            return 0
        pa, pb = self.path_of(a), self.path_of(b)
        d = self.dca_depth(a, b)
        return (len(pa) - d) + (len(pb) - d)

    def pair_protocols(self, a: int, b: int) -> tuple[Protocol, ...]:
        """Protocols governing traffic between two distinct machines."""
        if a == b:
            raise ClusterError(
                "intra-machine traffic uses the cluster loopback, not a level"
            )
        return self.dca_node(a, b).protocols

    def pair_link(self, a: int, b: int) -> Link:
        """A link carrying the pair's deepest-common-ancestor protocols."""
        return Link(list(self.pair_protocols(a, b)))

    # ------------------------------------------------------------------
    # grouping (hierarchical collectives, locality heuristics)
    # ------------------------------------------------------------------
    def split(
        self, machines: Sequence[int]
    ) -> tuple[list[int], TopologyNode] | None:
        """Partition machines at the coarsest level where they diverge.

        Returns ``(keys, level)`` where ``keys[i]`` labels the subtree of
        ``machines[i]`` under the splitting ``level`` — the deepest node
        spanning all of them — or None when they never diverge (zero or
        one distinct machine).  Recursing on one key's subset descends the
        hierarchy level by level, which is how the hierarchical
        collectives build their leader trees.
        """
        self._require_bound()
        if not machines:
            return None
        paths = [self._paths[m] for m in machines]
        first = paths[0]
        depth = 0
        while True:
            if len(first) <= depth:
                return None  # reached a leaf: all on one machine
            head = first[depth]
            if any(len(p) <= depth or p[depth] != head for p in paths):
                break
            depth += 1
        keys = [p[depth] for p in paths]
        return keys, self._node_at[first[:depth]]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII tree of the hierarchy with per-level protocols."""
        lines: list[str] = []

        def describe(node: TopologyNode) -> str:
            if node.is_leaf:
                return f"{node.machine}  [machine]"
            protos = ", ".join(
                f"{p.name} ({p.latency:g}s + B/{p.bandwidth:g})"
                for p in node.protocols
            )
            return f"{node.name}  [{node.kind}]  {protos}"

        def rec(node: TopologyNode, prefix: str, tail: bool, top: bool) -> None:
            if top:
                lines.append(describe(node))
            else:
                lines.append(f"{prefix}{'`-- ' if tail else '|-- '}{describe(node)}")
                prefix += "    " if tail else "|   "
            for i, child in enumerate(node.children):
                rec(child, prefix, i == len(node.children) - 1, False)

        rec(self.root, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:
        leaves = self.leaf_names()
        return (f"Topology(depth={self.depth}, levels={self._count_levels()}, "
                f"machines={len(leaves)})")

    def _count_levels(self) -> int:
        return sum(1 for _, n in self.root.walk() if not n.is_leaf)


# ----------------------------------------------------------------------
# serialization (used by cluster/serialize.py)
# ----------------------------------------------------------------------

def _node_to_dict(node: TopologyNode) -> dict[str, Any]:
    if node.is_leaf:
        return {"machine": node.machine}
    return {
        "name": node.name,
        "kind": node.kind,
        "protocols": [
            {"name": p.name, "latency": p.latency, "bandwidth": p.bandwidth}
            for p in node.protocols
        ],
        "children": [_node_to_dict(c) for c in node.children],
    }


def _node_from_dict(blob: dict[str, Any]) -> TopologyNode:
    if "machine" in blob:
        return TopologyNode.leaf(blob["machine"])
    return TopologyNode(
        name=blob.get("name", "level"),
        kind=blob.get("kind", "level"),
        protocols=tuple(Protocol(**p) for p in blob.get("protocols", [])),
        children=tuple(_node_from_dict(c) for c in blob.get("children", [])),
    )


def topology_to_dict(topology: Topology) -> dict[str, Any]:
    """JSON-compatible dictionary of a topology tree."""
    return _node_to_dict(topology.root)


def topology_from_dict(blob: dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    return Topology(_node_from_dict(blob))
