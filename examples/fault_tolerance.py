#!/usr/bin/env python3
"""Surviving a machine failure with HMPI_Group_repair.

The paper names resource failures as an HNOC challenge and, in its
conclusion, envisions a library combining HMPI's heterogeneity support
with FT-MPI-style fault tolerance.  This example walks the repair path
end to end:

1. a group is created over the whole cluster and iterates on a job;
2. a machine dies mid-iteration — the survivors' operations resolve to a
   *typed* ``RankFailedError`` naming the dead rank (never a hang);
3. the survivors call ``HMPI_Group_repair``: the runtime marks the
   machine dead in the network model, invalidates the selection cache,
   re-runs process selection over the survivors (drafting free processes
   as replacements when available), and hands back a working group;
4. the job finishes on the repaired group and the result is identical to
   what a fault-free run would have produced.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import FaultSchedule, inject_faults, paper_network
from repro.core import run_hmpi
from repro.mpi.ops import SUM
from repro.perfmodel import CallableModel
from repro.util.errors import OperationTimeoutError, RankFailedError

ITERATIONS = 8
WORK = 40.0
DOOMED_MACHINE = "ws06"  # one world process per machine: world rank 6
FAIL_AT = 0.05


def model_for(navail):
    """Performance model factory: re-resolved per selection attempt, so a
    repair that loses machines can still target the survivors."""
    nproc = min(9, navail)
    return CallableModel(nproc, lambda i: WORK, lambda s, d: 8192.0,
                         name=f"work-{nproc}")


def app(hmpi):
    # Note: MachineFailure is deliberately NOT caught.  A rank whose
    # machine died must fall out of the run (the launcher records the
    # failure per rank); swallowing it would make the rank look healthy
    # while its pending operations silently starve the survivors.
    repairs = 0
    gid = None
    history = []
    while True:
        if gid is None:
            created = hmpi.group_create(
                model_for if hmpi.is_host() else None)
            if created is None:      # host released the free pool
                return {"status": "released", "repairs": repairs}
            if not created.is_member:
                continue             # wait in the pool: repair draft
            gid = created
        try:
            # The job: iterate compute + allreduce until done.  A
            # death surfaces as RankFailedError at the survivors.
            for it in range(len(history), ITERATIONS):
                hmpi.compute(WORK, gid.my_concurrency)
                history.append(gid.comm.allreduce(1, SUM))
        except (RankFailedError, OperationTimeoutError) as exc:
            repairs += 1
            gid = hmpi.group_repair(
                gid, model_for, dead=tuple(getattr(exc, "ranks", ())))
            if not gid.is_member:
                gid = None           # demoted to the free pool
            continue
        if hmpi.is_host():
            hmpi.release_free()
        return {
            "status": "finished",
            "repairs": repairs,
            "group": gid.world_ranks,
            "history": history,
        }


def main():
    cluster = paper_network()
    inject_faults(cluster, FaultSchedule({DOOMED_MACHINE: FAIL_AT}))

    result = run_hmpi(app, cluster, timeout=60)
    print(f"injected failure: {DOOMED_MACHINE} at t={FAIL_AT} virtual s\n")
    host = result.results[0]
    for rank, out in enumerate(result.results):
        if out is None:
            exc = result.exception_of(rank)
            label = type(exc).__name__ if exc else "no result"
            print(f"  rank {rank}: lost — {label}")
        elif out["status"] == "finished":
            print(f"  rank {rank}: finished after {out['repairs']} repair(s) "
                  f"as part of group {out['group']}")
        else:
            print(f"  rank {rank}: {out['status']}")

    assert host["status"] == "finished", host
    assert host["repairs"] >= 1, "the death should have forced a repair"
    assert 6 not in host["group"], "dead machine reused!"
    # Every allreduce after the repair counts the (smaller) new group, and
    # the job still ran all its iterations.
    assert len(host["history"]) == ITERATIONS
    print(f"\nallreduce totals per iteration: {host['history']}")
    print("the dead machine was excluded by the repair and the job "
          "completed on the survivors.")


if __name__ == "__main__":
    main()
