"""EM3D problem generation and serial kernels."""

import numpy as np
import pytest

from repro.apps.em3d.problem import EM3DProblem, SubBody, generate_problem
from repro.apps.em3d.serial import em3d_step_local, serial_em3d, update_field
from repro.util.errors import ReproError


class TestGenerateProblem:
    def test_total_nodes_exact(self):
        p = generate_problem(5, 10_000, seed=0)
        assert p.total_nodes == 10_000
        assert p.p == 5

    def test_deterministic(self):
        a = generate_problem(4, 5_000, seed=3)
        b = generate_problem(4, 5_000, seed=3)
        assert (a.d == b.d).all()
        assert (a.dep == b.dep).all()
        assert (a.bodies[0].e_values == b.bodies[0].e_values).all()

    def test_different_seeds_differ(self):
        a = generate_problem(4, 5_000, seed=1)
        b = generate_problem(4, 5_000, seed=2)
        assert not (a.d == b.d).all() or not (a.dep == b.dep).all()

    def test_irregular_sizes(self):
        p = generate_problem(6, 30_000, seed=0, imbalance=4.0)
        assert p.d.max() > p.d.min()  # genuinely uneven

    def test_ring_connectivity(self):
        p = generate_problem(6, 10_000, seed=0, extra_edges=0)
        for i in range(6):
            j = (i + 1) % 6
            assert p.dep[i, j] > 0
            assert p.dep[j, i] > 0

    def test_validates(self):
        generate_problem(8, 20_000, seed=5).validate()

    def test_single_subbody(self):
        p = generate_problem(1, 100, seed=0)
        assert p.dep.sum() == 0

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            generate_problem(10, 20)

    def test_validation_catches_bad_d(self):
        p = generate_problem(3, 1_000, seed=0)
        p.d = np.array([1, 2])
        with pytest.raises(ReproError):
            p.validate()

    def test_validation_catches_diagonal_dep(self):
        p = generate_problem(3, 1_000, seed=0)
        p.dep_e[0, 0] = 5
        with pytest.raises(ReproError):
            p.validate()


class TestUpdateField:
    def test_shape_preserved(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(50)
        weights = rng.uniform(0.1, 0.3, (50, 3))
        out = update_field(values, weights, rng.standard_normal(40))
        assert out.shape == (50,)

    def test_bounded_by_tanh(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(20) * 100
        weights = rng.uniform(0.1, 0.3, (20, 3))
        out = update_field(values, weights, rng.standard_normal(20) * 100)
        # 0.5*old + 0.5*tanh(...) keeps magnitude shrinking toward [-1, 1]
        assert np.abs(out).max() <= np.abs(values).max()

    def test_boundary_term_changes_result(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(10)
        weights = rng.uniform(0.1, 0.3, (10, 3))
        nb = rng.standard_normal(10)
        a = update_field(values, weights, nb, boundary_term=0.0)
        b = update_field(values, weights, nb, boundary_term=1.0)
        assert not np.allclose(a, b)

    def test_empty_field(self):
        out = update_field(np.array([]), np.zeros((0, 3)), np.array([1.0]))
        assert out.shape == (0,)

    def test_empty_neighbours(self):
        out = update_field(np.ones(3), np.zeros((3, 3)), np.array([]))
        assert out.shape == (3,)


class TestSerial:
    def make_body(self, n=40):
        rng = np.random.default_rng(1)
        n_e = n // 2
        return SubBody(
            index=0,
            e_values=rng.standard_normal(n_e),
            h_values=rng.standard_normal(n - n_e),
            e_weights=rng.uniform(0.1, 0.3, (n_e, 3)),
            h_weights=rng.uniform(0.1, 0.3, (n - n_e, 3)),
        )

    def test_step_mutates_in_place(self):
        body = self.make_body()
        before = body.e_values.copy()
        em3d_step_local(body)
        assert not np.allclose(body.e_values, before)

    def test_values_stay_finite_over_many_steps(self):
        body = self.make_body()
        serial_em3d(body, 100)
        assert np.isfinite(body.e_values).all()
        assert np.isfinite(body.h_values).all()
        assert np.abs(body.e_values).max() < 10.0
