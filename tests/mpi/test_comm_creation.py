"""Communicator creation: split, dup, create, context isolation."""

import pytest

from repro.mpi import UNDEFINED, run_mpi
from repro.mpi.group import Group
from repro.util.errors import MPICommError


class TestSplit:
    def test_split_by_parity(self, small_cluster):
        def app(env):
            c = env.comm_world.split(env.rank % 2, key=env.rank)
            return (c.rank, c.size, c.group.world_ranks)

        res = run_mpi(app, small_cluster)
        assert res.results[0] == (0, 2, (0, 2))
        assert res.results[1] == (0, 2, (1, 3))
        assert res.results[2] == (1, 2, (0, 2))
        assert res.results[3] == (1, 2, (1, 3))

    def test_key_orders_ranks(self, small_cluster):
        def app(env):
            c = env.comm_world.split(0, key=-env.rank)
            return c.rank

        res = run_mpi(app, small_cluster)
        assert res.results == [3, 2, 1, 0]

    def test_undefined_color_returns_none(self, small_cluster):
        def app(env):
            color = UNDEFINED if env.rank == 0 else 1
            c = env.comm_world.split(color)
            return None if c is None else c.size

        res = run_mpi(app, small_cluster)
        assert res.results == [None, 3, 3, 3]

    def test_split_contexts_isolate_traffic(self, small_cluster):
        def app(env):
            c = env.comm_world.split(env.rank % 2)
            # Each sub-communicator does its own allgather with identical
            # tags; contexts must keep them apart.
            return c.allgather(env.rank)

        res = run_mpi(app, small_cluster)
        assert res.results[0] == [0, 2]
        assert res.results[1] == [1, 3]


class TestDup:
    def test_same_group_fresh_context(self, small_cluster):
        def app(env):
            d = env.comm_world.dup()
            assert d.context != env.comm_world.context
            assert d.group == env.comm_world.group
            # traffic on the dup must not match the original
            if env.rank == 0:
                d.send("dup-msg", 1, tag=0)
                env.comm_world.send("world-msg", 1, tag=0)
                return None
            if env.rank == 1:
                world_first = env.comm_world.recv(0, 0)
                dup_second = d.recv(0, 0)
                return (world_first, dup_second)
            return None

        res = run_mpi(app, small_cluster)
        assert res.results[1] == ("world-msg", "dup-msg")


class TestCreate:
    def test_subgroup_communicator(self, small_cluster):
        def app(env):
            sub = Group([1, 3])
            c = env.comm_world.create(sub)
            if c is None:
                return None
            return (c.rank, c.size)

        res = run_mpi(app, small_cluster)
        assert res.results == [None, (0, 2), None, (1, 2)]

    def test_create_rejects_non_subset(self, pair_cluster):
        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.create(Group([0, 5]))
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)


class TestFree:
    def test_freed_comm_unusable(self, pair_cluster):
        def app(env):
            d = env.comm_world.dup()
            d.free()
            with pytest.raises(MPICommError):
                d.send(1, 0)
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)


class TestNestedCreation:
    def test_split_of_split(self, small_cluster):
        def app(env):
            half = env.comm_world.split(env.rank // 2)       # {0,1} {2,3}
            solo = half.split(half.rank)                      # singletons
            return (half.size, solo.size, solo.rank)

        res = run_mpi(app, small_cluster)
        assert all(r == (2, 1, 0) for r in res.results)
