"""External-load model behaviour."""

import math

import pytest

from repro.cluster.load import (
    NO_LOAD,
    ConstantLoad,
    DiurnalLoad,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
)


class TestConstantLoad:
    def test_share_everywhere(self):
        load = ConstantLoad(0.5)
        assert load.share_at(0.0) == 0.5
        assert load.share_at(1e9) == 0.5

    def test_never_changes(self):
        assert ConstantLoad(1.0).next_change_after(42.0) == math.inf

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_rejects_bad_share(self, bad):
        with pytest.raises(ValueError):
            ConstantLoad(bad)

    def test_no_load_is_full_share(self):
        assert NO_LOAD.share == 1.0

    def test_mean_share(self):
        assert ConstantLoad(0.25).mean_share(0.0, 10.0) == pytest.approx(0.25)


class TestStepLoad:
    def test_initial_before_first_step(self):
        load = StepLoad([(10.0, 0.5)], initial=1.0)
        assert load.share_at(5.0) == 1.0
        assert load.share_at(10.0) == 0.5
        assert load.share_at(100.0) == 0.5

    def test_multiple_steps(self):
        load = StepLoad([(1.0, 0.8), (2.0, 0.2), (3.0, 0.6)])
        assert load.share_at(0.5) == 1.0
        assert load.share_at(1.5) == 0.8
        assert load.share_at(2.5) == 0.2
        assert load.share_at(3.5) == 0.6

    def test_next_change(self):
        load = StepLoad([(1.0, 0.8), (2.0, 0.2)])
        assert load.next_change_after(0.0) == 1.0
        assert load.next_change_after(1.0) == 2.0
        assert load.next_change_after(2.0) == math.inf

    def test_requires_increasing_breakpoints(self):
        with pytest.raises(ValueError):
            StepLoad([(2.0, 0.5), (1.0, 0.6)])

    def test_mean_share_exact(self):
        load = StepLoad([(5.0, 0.5)], initial=1.0)
        # [0, 10]: 5s at 1.0 + 5s at 0.5 -> 0.75
        assert load.mean_share(0.0, 10.0) == pytest.approx(0.75)


class TestSquareWaveLoad:
    def test_alternation(self):
        load = SquareWaveLoad(period=2.0, high=1.0, low=0.5)
        assert load.share_at(0.1) == 1.0
        assert load.share_at(1.1) == 0.5
        assert load.share_at(2.1) == 1.0

    def test_next_change_strictly_after(self):
        load = SquareWaveLoad(period=2.0)
        boundary = load.next_change_after(0.0)
        assert boundary == pytest.approx(1.0)
        assert load.next_change_after(boundary) > boundary

    def test_phase_shift(self):
        base = SquareWaveLoad(period=2.0, high=1.0, low=0.5)
        shifted = SquareWaveLoad(period=2.0, high=1.0, low=0.5, phase=1.0)
        assert base.share_at(0.1) != shifted.share_at(0.1)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            SquareWaveLoad(period=0.0)


class TestRandomWalkLoad:
    def test_deterministic_given_seed(self):
        a = RandomWalkLoad(interval=1.0, seed=3)
        b = RandomWalkLoad(interval=1.0, seed=3)
        ts = [0.5, 1.5, 2.5, 7.5, 3.5]
        assert [a.share_at(t) for t in ts] == [b.share_at(t) for t in ts]

    def test_bounded(self):
        load = RandomWalkLoad(interval=1.0, seed=11, step=0.5, floor=0.1)
        for k in range(200):
            s = load.share_at(k + 0.5)
            assert 0.1 <= s <= 1.0

    def test_piecewise_constant_within_interval(self):
        load = RandomWalkLoad(interval=2.0, seed=4)
        assert load.share_at(0.1) == load.share_at(1.9)

    def test_next_change_is_interval_boundary(self):
        load = RandomWalkLoad(interval=2.0, seed=4)
        assert load.next_change_after(0.5) == pytest.approx(2.0)
        assert load.next_change_after(2.0) == pytest.approx(4.0)

    def test_out_of_order_queries_consistent(self):
        load = RandomWalkLoad(interval=1.0, seed=9)
        late = load.share_at(10.5)
        early = load.share_at(2.5)
        assert load.share_at(10.5) == late
        assert load.share_at(2.5) == early


class TestEdgeCases:
    """Boundary behaviour the compute-time integrator relies on."""

    def test_mean_share_zero_length_interval(self):
        load = StepLoad([(5.0, 0.5)], initial=1.0)
        # Degenerate interval: defined as the instantaneous share at t0,
        # on both sides of the breakpoint.
        assert load.mean_share(3.0, 3.0) == 1.0
        assert load.mean_share(5.0, 5.0) == 0.5

    def test_mean_share_inverted_interval_matches_instant(self):
        load = StepLoad([(5.0, 0.5)], initial=1.0)
        assert load.mean_share(7.0, 3.0) == load.share_at(7.0)

    def test_mean_share_straddles_single_step(self):
        load = StepLoad([(2.0, 0.5)], initial=1.0)
        # [1, 3]: 1s at 1.0 + 1s at 0.5.
        assert load.mean_share(1.0, 3.0) == pytest.approx(0.75)

    def test_mean_share_straddles_many_steps_exactly(self):
        load = StepLoad([(1.0, 0.8), (2.0, 0.4), (3.0, 0.2)], initial=1.0)
        # [0.5, 3.5]: 0.5*1.0 + 1*0.8 + 1*0.4 + 0.5*0.2.
        expected = (0.5 * 1.0 + 1.0 * 0.8 + 1.0 * 0.4 + 0.5 * 0.2) / 3.0
        assert load.mean_share(0.5, 3.5) == pytest.approx(expected, abs=1e-12)

    def test_mean_share_interval_ending_on_breakpoint(self):
        load = StepLoad([(2.0, 0.5)], initial=1.0)
        # The closed end sits exactly on the change point: only the
        # pre-change share contributes (zero-measure boundary).
        assert load.mean_share(0.0, 2.0) == pytest.approx(1.0)

    def test_step_next_change_exactly_at_breakpoint(self):
        load = StepLoad([(1.0, 0.8), (2.0, 0.2)])
        # "Strictly after": querying at a breakpoint yields the next one,
        # never the breakpoint itself (the integrator would spin).
        assert load.next_change_after(1.0) == 2.0
        assert load.next_change_after(2.0) == math.inf

    def test_square_next_change_exactly_at_boundary(self):
        load = SquareWaveLoad(period=2.0)
        t = load.next_change_after(0.0)
        for _ in range(8):
            nxt = load.next_change_after(t)
            assert nxt > t
            t = nxt

    def test_random_walk_next_change_exactly_at_boundary(self):
        load = RandomWalkLoad(interval=2.0, seed=4)
        assert load.next_change_after(4.0) == pytest.approx(6.0)
        assert load.next_change_after(6.0 - 1e-12) == pytest.approx(6.0)

    def test_random_walk_determinism_is_query_order_free(self):
        a = RandomWalkLoad(interval=1.0, seed=7)
        b = RandomWalkLoad(interval=1.0, seed=7)
        ts = [9.5, 0.5, 4.5, 2.5, 9.5]
        fwd = [a.share_at(t) for t in ts]
        rev = [b.share_at(t) for t in reversed(ts)]
        assert fwd == list(reversed(rev))

    def test_random_walk_mean_share_straddles_intervals(self):
        load = RandomWalkLoad(interval=1.0, seed=13)
        shares = [load.share_at(k + 0.5) for k in range(3)]
        assert load.mean_share(0.0, 3.0) == pytest.approx(sum(shares) / 3.0)


class TestDiurnalLoad:
    def test_default_profile_shape(self):
        load = DiurnalLoad(day=24.0)
        assert load.share_at(0.0) == 0.95        # midnight: nearly idle
        assert load.share_at(9.0) == 0.40        # morning: owners arrive
        assert load.share_at(13.0) == 0.25       # after noon: peak load
        assert load.share_at(19.0) == 0.55       # evening tail
        assert load.share_at(23.0) == 0.85       # winding down

    def test_repeats_every_day(self):
        load = DiurnalLoad(day=24.0)
        for t in (0.5, 9.0, 13.0, 23.0):
            assert load.share_at(t) == load.share_at(t + 24.0)
            assert load.share_at(t) == load.share_at(t + 24_000.0)

    def test_phase_shifts_the_day(self):
        base = DiurnalLoad(day=24.0)
        noon_start = DiurnalLoad(day=24.0, phase=0.5)
        assert noon_start.share_at(0.0) == base.share_at(12.0)
        assert noon_start.share_at(1.0) == base.share_at(13.0)

    def test_next_change_walks_breakpoints(self):
        load = DiurnalLoad(day=24.0)
        assert load.next_change_after(0.0) == pytest.approx(8.0)
        assert load.next_change_after(8.0) == pytest.approx(12.0)
        assert load.next_change_after(12.0) == pytest.approx(18.0)
        assert load.next_change_after(18.0) == pytest.approx(22.0)
        # The last segment wraps to the next day's first breakpoint.
        assert load.next_change_after(22.0) == pytest.approx(24.0)
        assert load.next_change_after(23.9) == pytest.approx(24.0)
        assert load.next_change_after(25.0) == pytest.approx(32.0)

    def test_next_change_is_strictly_after_t(self):
        load = DiurnalLoad(day=24.0)
        t = 0.0
        for _ in range(20):
            nxt = load.next_change_after(t)
            assert nxt > t
            t = nxt

    def test_single_segment_profile_never_changes(self):
        load = DiurnalLoad(day=24.0, profile=[(0.0, 0.7)])
        assert load.share_at(5.0) == 0.7
        assert load.next_change_after(5.0) == math.inf

    def test_mean_share_over_full_day_is_weighted_average(self):
        load = DiurnalLoad(day=24.0)
        expected = (8 * 0.95 + 4 * 0.40 + 6 * 0.25 + 4 * 0.55
                    + 2 * 0.85) / 24.0
        assert load.mean_share(0.0, 24.0) == pytest.approx(expected)
        assert load.mean_share(12.0, 36.0) == pytest.approx(expected)

    def test_custom_day_length_scales(self):
        load = DiurnalLoad(day=2.0, profile=[(0.0, 1.0), (0.5, 0.5)])
        assert load.share_at(0.5) == 1.0
        assert load.share_at(1.5) == 0.5
        assert load.next_change_after(0.0) == pytest.approx(1.0)

    def test_profile_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at day-fraction 0.0"):
            DiurnalLoad(profile=[(0.1, 0.5)])

    def test_fractions_must_increase_below_one(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DiurnalLoad(profile=[(0.0, 0.5), (0.5, 0.6), (0.5, 0.7)])
        with pytest.raises(ValueError, match="strictly increasing"):
            DiurnalLoad(profile=[(0.0, 0.5), (1.0, 0.6)])

    def test_shares_validated(self):
        with pytest.raises(ValueError, match="share"):
            DiurnalLoad(profile=[(0.0, 0.0)])
        with pytest.raises(ValueError, match="share"):
            DiurnalLoad(profile=[(0.0, 0.5), (0.5, 1.5)])

    def test_day_must_be_positive(self):
        with pytest.raises(ValueError):
            DiurnalLoad(day=0.0)
