"""Cluster topology behaviour."""

import pytest

from repro.cluster.link import FAST_INTERCONNECT, TCP_100MBIT, Link
from repro.cluster.machine import Machine
from repro.cluster.network import Cluster
from repro.util.errors import ClusterError


def make_cluster(n=3):
    return Cluster([Machine(f"m{i}", 10.0 * (i + 1)) for i in range(n)])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Machine("a", 1.0), Machine("a", 2.0)])

    def test_size(self):
        assert make_cluster(4).size == 4
        assert len(make_cluster(4)) == 4

    def test_self_link_in_links_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Machine("a", 1.0)], links={(0, 0): Link.single(TCP_100MBIT)})

    def test_out_of_range_link_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Machine("a", 1.0)], links={(0, 5): Link.single(TCP_100MBIT)})


class TestAccessors:
    def test_machine_by_index_and_name(self):
        c = make_cluster()
        assert c.machine(1).name == "m1"
        assert c.machine("m2").speed == 30.0

    def test_unknown_machine(self):
        c = make_cluster()
        with pytest.raises(ClusterError):
            c.machine("nope")
        with pytest.raises(ClusterError):
            c.machine(99)

    def test_index_of(self):
        c = make_cluster()
        assert c.index_of("m0") == 0
        with pytest.raises(ClusterError):
            c.index_of("zz")

    def test_speeds(self):
        assert make_cluster().speeds() == [10.0, 20.0, 30.0]


class TestLinks:
    def test_default_link_created_lazily_and_cached(self):
        c = make_cluster()
        link1 = c.link(0, 1)
        link2 = c.link(0, 1)
        assert link1 is link2

    def test_loopback_for_self(self):
        c = make_cluster()
        assert c.link(1, 1) is c.loopback

    def test_set_link_symmetric(self):
        c = make_cluster()
        fast = Link.single(FAST_INTERCONNECT)
        c.set_link(0, 2, fast)
        assert c.link(0, 2) is fast
        assert c.link(2, 0) is fast

    def test_set_link_asymmetric(self):
        c = make_cluster()
        fast = Link.single(FAST_INTERCONNECT)
        c.set_link(0, 2, fast, symmetric=False)
        assert c.link(0, 2) is fast
        assert c.link(2, 0) is not fast

    def test_set_self_link_rejected(self):
        with pytest.raises(ClusterError):
            make_cluster().set_link(1, 1, Link.single(TCP_100MBIT))

    def test_transfer_time_delegates(self):
        c = make_cluster()
        assert c.transfer_time(0, 1, 12_500_000) == pytest.approx(
            TCP_100MBIT.latency + 1.0
        )

    def test_all_links_iterates_configured(self):
        c = make_cluster()
        c.set_link(0, 1, Link.single(FAST_INTERCONNECT))
        pairs = [(i, j) for i, j, _ in c.all_links()]
        assert (0, 1) in pairs and (1, 0) in pairs


class TestProtocolPinning:
    def test_pin_all_and_unpin_all(self):
        c = Cluster(
            [Machine("a", 1.0), Machine("b", 1.0)],
            default_protocols=(TCP_100MBIT, FAST_INTERCONNECT),
        )
        assert c.link(0, 1).protocol_for(10**6).name == "fast"
        c.pin_all("tcp-100mbit")
        assert c.link(0, 1).protocol_for(10**6).name == "tcp-100mbit"
        c.unpin_all()
        assert c.link(0, 1).protocol_for(10**6).name == "fast"
