"""HMPI proper: the runtime, estimator, and process-selection algorithms."""

from .api import (
    HMPI_COMM_WORLD_GROUP,
    HMPI_Get_comm,
    HMPI_Group_create,
    HMPI_Group_free,
    HMPI_Group_rank,
    HMPI_Group_repair,
    HMPI_Group_size,
    HMPI_Is_free,
    HMPI_Is_host,
    HMPI_Is_member,
    HMPI_Recon,
    HMPI_Release_free,
    HMPI_Timeof,
    HMPI_Wtime,
)
from .autotune import SizeSweepResult, auto_create, tune_group_size
from .checkpoint import CheckpointStore, charged_load, charged_save, nbytes_of
from .estimator import TimelineVisitor, estimate_breakdown, estimate_time
from .linkprobe import LinkEstimate, ping_pong, probe_links
from .group import HMPIGroup
from .mapper import (
    MAPPER_REGISTRY,
    DefaultMapper,
    ExhaustiveMapper,
    GreedyMapper,
    Mapper,
    Mapping,
    RefineMapper,
    available_mappers,
    register_mapper,
    resolve_mapper,
)
from .netmodel import NetworkModel
from .samapper import AnnealingMapper
from .seleng import (
    CompiledTrace,
    SelectionStats,
    TraceEvaluator,
    compile_trace,
    evaluate_mapping,
    evaluate_mappings,
)
from .recon import kernel_benchmark, matmul_kernel, stencil_kernel, unit_benchmark
from .runtime import HMPI, HOST_RANK, HMPIRuntimeState, run_hmpi

__all__ = [
    "HMPI",
    "HMPIRuntimeState",
    "HMPIGroup",
    "run_hmpi",
    "HOST_RANK",
    "NetworkModel",
    "CheckpointStore",
    "charged_save",
    "charged_load",
    "nbytes_of",
    "estimate_time",
    "auto_create",
    "tune_group_size",
    "SizeSweepResult",
    "probe_links",
    "ping_pong",
    "LinkEstimate",
    "estimate_breakdown",
    "TimelineVisitor",
    "Mapping",
    "Mapper",
    "ExhaustiveMapper",
    "GreedyMapper",
    "RefineMapper",
    "DefaultMapper",
    "AnnealingMapper",
    "MAPPER_REGISTRY",
    "register_mapper",
    "available_mappers",
    "resolve_mapper",
    "CompiledTrace",
    "SelectionStats",
    "TraceEvaluator",
    "compile_trace",
    "evaluate_mapping",
    "evaluate_mappings",
    "unit_benchmark",
    "kernel_benchmark",
    "matmul_kernel",
    "stencil_kernel",
    "HMPI_COMM_WORLD_GROUP",
    "HMPI_Recon",
    "HMPI_Timeof",
    "HMPI_Group_create",
    "HMPI_Group_repair",
    "HMPI_Group_free",
    "HMPI_Group_rank",
    "HMPI_Group_size",
    "HMPI_Get_comm",
    "HMPI_Is_host",
    "HMPI_Is_free",
    "HMPI_Is_member",
    "HMPI_Wtime",
    "HMPI_Release_free",
]
