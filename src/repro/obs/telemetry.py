"""Streaming telemetry: a schema-versioned structured event bus.

Where the :class:`~repro.obs.metrics.MetricsRegistry` aggregates (one
number per series), the :class:`EventBus` *streams*: every emit is a
discrete, timestamped, JSON-able record that can be tailed live while a
simulation or campaign is still running.  The bus is deliberately small:

- a **bounded ring buffer** (`collections.deque(maxlen=...)`) so a
  long campaign cannot grow memory without bound — `tail(n)` serves the
  monitoring endpoint's ``/events`` NDJSON view;
- an optional **JSONL sink** (path or file-like) for durable capture,
  one compact sorted-key object per line;
- **subscriber callbacks** for live consumers (the ``--live`` status
  line, progress gauges); a subscriber that raises is counted and
  skipped, never allowed to break the emitting hot path;
- **per-category sampling** — ``sample={"selection": 100}`` keeps one
  in every 100 ``selection.*`` events, taming hot paths like the
  selection cache without losing rare categories like faults.

Events carry *wall-clock* time (``wall``): telemetry is the host-side
side channel, deliberately distinct from virtual time, and must stay
out of canonical campaign results (rows are a pure function of
``(config, seed)``).  The clock is injectable for deterministic tests.

Disabled mode is an ``is None`` check at each instrumentation site —
the same budget the metrics layer is held to (see
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, IO

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryEvent",
    "EventBus",
]

#: Version of the event record shape.  Bump whenever the field set of
#: :meth:`TelemetryEvent.to_dict` changes; consumers of the JSONL sink
#: and the ``/events`` endpoint key their parsers off this.
TELEMETRY_SCHEMA_VERSION = 1

#: Envelope fields of the flattened record — payload keys may not shadow
#: them (``emit`` rejects collisions so a JSONL line is never ambiguous).
_RESERVED_KEYS = frozenset({"schema", "seq", "category", "name", "wall"})


class TelemetryEvent:
    """One structured occurrence: ``(seq, category, name, wall, payload)``.

    ``category`` groups related events for sampling and filtering
    (``engine``, ``fault``, ``selection``, ``campaign``); ``name`` is
    the specific occurrence (``run.start``, ``rank_dead``, ``cell.finish``).
    ``payload`` is a flat JSON-able dict of event-specific fields.
    """

    __slots__ = ("seq", "category", "name", "wall", "payload")

    def __init__(self, seq: int, category: str, name: str, wall: float,
                 payload: dict[str, Any]):
        self.seq = seq
        self.category = category
        self.name = name
        self.wall = wall
        self.payload = payload

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "seq": self.seq,
            "category": self.category,
            "name": self.name,
            "wall": self.wall,
            **self.payload,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TelemetryEvent({self.seq}, {self.category}.{self.name}, "
                f"wall={self.wall:.3f})")


class EventBus:
    """Thread-safe bounded event stream with sink, subscribers, sampling.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the newest ``capacity`` events are retained
        for :meth:`tail`.
    sink:
        Path or open text file to append one JSON line per event
        (flushed per line so a tail-follower sees events promptly).
    sample:
        ``{category: N}`` — keep every N-th event of that category
        (1 = keep all).  Unlisted categories are never sampled out.
    clock:
        0-arg callable returning the wall timestamp; injectable so
        tests can be deterministic.  Defaults to :func:`time.time`.
    """

    def __init__(self, capacity: int = 1024,
                 sink: "str | IO[str] | None" = None,
                 sample: dict[str, int] | None = None,
                 clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError(f"EventBus capacity must be >= 1, got {capacity}")
        for cat, n in (sample or {}).items():
            if not isinstance(n, int) or n < 1:
                raise ValueError(
                    f"sample rate for {cat!r} must be an int >= 1, got {n!r}")
        self._lock = threading.Lock()
        self._ring: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []
        self._sample = dict(sample or {})
        self._seen: dict[str, int] = {}
        self._clock = clock
        self._seq = 0
        self.emitted = 0            # events that entered the ring
        self.sampled_out = 0        # dropped by per-category sampling
        self.dropped = 0            # evicted from the ring by capacity
        self.subscriber_errors = 0  # callbacks that raised (and were skipped)
        self._sink: IO[str] | None
        self._owns_sink = isinstance(sink, str)
        if isinstance(sink, str):
            self._sink = open(sink, "a", encoding="utf-8")
        else:
            self._sink = sink

    # -- emission --------------------------------------------------------
    def emit(self, category: str, name: str, /, **payload: Any) -> "TelemetryEvent | None":
        """Record one event; returns it, or None if sampled out."""
        clash = _RESERVED_KEYS.intersection(payload)
        if clash:
            raise ValueError(
                f"payload keys {sorted(clash)} shadow event envelope fields")
        with self._lock:
            rate = self._sample.get(category, 1)
            if rate > 1:
                seen = self._seen.get(category, 0)
                self._seen[category] = seen + 1
                if seen % rate:
                    self.sampled_out += 1
                    return None
            self._seq += 1
            event = TelemetryEvent(self._seq, category, name,
                                   self._clock(), payload)
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(event)
            self.emitted += 1
            if self._sink is not None:
                self._sink.write(event.to_json() + "\n")
                self._sink.flush()
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                with self._lock:
                    self.subscriber_errors += 1
        return event

    # -- consumption -----------------------------------------------------
    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        with self._lock:
            self._subscribers.remove(callback)

    def tail(self, n: int | None = None) -> list[TelemetryEvent]:
        """The newest ``n`` retained events, oldest first (all if None)."""
        with self._lock:
            events = list(self._ring)
        if n is not None and n >= 0:
            events = events[len(events) - min(n, len(events)):]
        return events

    def stats(self) -> dict[str, Any]:
        """Bus health: throughput counters + current retention."""
        with self._lock:
            return {
                "schema": TELEMETRY_SCHEMA_VERSION,
                "emitted": self.emitted,
                "sampled_out": self.sampled_out,
                "dropped": self.dropped,
                "subscriber_errors": self.subscriber_errors,
                "retained": len(self._ring),
                "capacity": self._ring.maxlen,
            }

    def close(self) -> None:
        """Flush and close an owned sink (no-op for caller-owned files)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                if self._owns_sink:
                    self._sink.close()
                self._sink = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
