"""Performance model of the heterogeneous Jacobi iteration.

One iteration over an ``N x N`` grid decomposed into ``p`` horizontal
panels of ``rows[i]`` rows each:

- processor i updates ``rows[i] * N`` points — with the benchmark unit
  defined as the update of ``k`` grid points, its volume is
  ``rows[i]*N/k``;
- neighbouring processors exchange one halo row (``N`` doubles) in each
  direction;
- the scheme is one iteration: halo exchanges in parallel, then all
  updates in parallel (the EM3D shape specialised to a chain).
"""

from __future__ import annotations

from ...perfmodel import PerformanceModel, compile_model

__all__ = ["JACOBI_MODEL_SOURCE", "jacobi_model", "bind_jacobi_model"]

JACOBI_MODEL_SOURCE = """
algorithm Jacobi(int p, int k, int N, int rows[p]) {
  coord I=p;
  node {I>=0: bench*((rows[I]*N)/k);};
  link (L=p) {
    L == I+1 || L == I-1 : length*(N*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int owner, remote, current;
    par (owner = 0; owner < p; owner++)
      par (remote = 0; remote < p; remote++)
        if (remote == owner+1 || remote == owner-1)
          100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
}
"""

_cached: PerformanceModel | None = None


def jacobi_model() -> PerformanceModel:
    """The compiled ``Jacobi`` model (compiled once, cached)."""
    global _cached
    if _cached is None:
        _cached = compile_model(JACOBI_MODEL_SOURCE)
    return _cached


def bind_jacobi_model(p: int, k: int, n: int, rows: list[int]):
    """Bind to a panel decomposition."""
    return jacobi_model().bind(p, k, n, rows)
