"""Virtual-time SPMD execution engine.

Each MPI rank runs as a real Python thread carrying a **logical clock** in
seconds of virtual time.  The engine charges:

- ``compute(volume)`` — the machine's load-integrated time for ``volume``
  benchmark units (speed shared between co-located ranks);
- a send — CPU overhead of one protocol latency to the sender; the message
  is stamped with ``arrival = departure + latency + nbytes/bandwidth`` on
  the fastest (or pinned) protocol of the machine-pair link;
- a receive — the receiver's clock becomes ``max(clock, arrival)``.

Messages between the same ordered rank pair never overtake each other in
virtual time (per-pair arrival monotonisation), matching MPI's
non-overtaking guarantee.  Links are contention-free across distinct pairs,
matching the paper's switched Ethernet "enabling parallel communications".

Blocking receives block the *thread*, so algorithm-level blocking structure
is mirrored exactly and no global clock synchronisation is needed.  A
deterministic deadlock detector fires when every live rank is blocked: with
eager sends nothing can ever unblock them.  Machine failures (fault
injection) surface as :class:`MachineFailure` in the affected ranks and as
:class:`DeadlockError` (carrying the failure list) in ranks left waiting on
the dead ones.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Sequence
from typing import Any

from ..cluster.network import Cluster
from ..util.errors import DeadlockError, MachineFailure, MPIError
from .datatypes import decode_payload, encode_payload
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Message", "PostedRecv", "ProcessState", "Engine", "WORLD_CONTEXT",
           "ACK_CONTEXT"]

#: Context id of the world communicator.
WORLD_CONTEXT = 0
#: Internal context carrying synchronous-send acknowledgements; never used
#: by communicators, so ack traffic cannot match user receives.
ACK_CONTEXT = -1


class Message:
    """An in-flight or queued point-to-point message (world-rank addressed)."""

    __slots__ = ("context", "src", "dst", "tag", "payload", "nbytes",
                 "arrival", "ack_seq")

    def __init__(self, context: int, src: int, dst: int, tag: int,
                 payload: Any, nbytes: int, arrival: float,
                 ack_seq: int | None = None):
        self.context = context
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival = arrival
        self.ack_seq = ack_seq

    def matches(self, context: int, src: int, tag: int) -> bool:
        return (
            self.context == context
            and (src == ANY_SOURCE or self.src == src)
            and (tag == ANY_TAG or self.tag == tag)
        )

    def __repr__(self) -> str:
        return (f"Message(ctx={self.context}, {self.src}->{self.dst}, "
                f"tag={self.tag}, {self.nbytes}B, arrival={self.arrival:.6f})")


class PostedRecv:
    """A posted receive awaiting (or holding) its matched message."""

    __slots__ = ("context", "src", "tag", "message", "done")

    def __init__(self, context: int, src: int, tag: int):
        self.context = context
        self.src = src
        self.tag = tag
        self.message: Message | None = None
        self.done = False

    def accepts(self, msg: Message) -> bool:
        return msg.matches(self.context, self.src, self.tag)


class ProcessState:
    """Bookkeeping for one rank: clock, queues, thread, outcome."""

    __slots__ = (
        "rank", "machine_index", "clock", "cond", "unexpected", "posted",
        "last_arrival", "finished", "failed", "result", "exception", "thread",
        "waiting",
    )

    def __init__(self, rank: int, machine_index: int, lock: threading.RLock):
        self.rank = rank
        self.machine_index = machine_index
        self.clock = 0.0
        self.cond = threading.Condition(lock)
        self.unexpected: deque[Message] = deque()
        self.posted: deque[PostedRecv] = deque()
        self.last_arrival: dict[int, float] = {}
        self.finished = False
        self.failed = False
        self.result: Any = None
        self.exception: BaseException | None = None
        self.thread: threading.Thread | None = None
        # ("recv", PostedRecv) or ("probe", (context, src, tag)) while the
        # rank's thread is inside a blocking wait; None otherwise.
        self.waiting: tuple | None = None


class Engine:
    """Shared state of one SPMD run: processes, routing, contexts, clocks.

    Parameters
    ----------
    cluster:
        The HNOC the ranks execute on.
    placement:
        ``placement[world_rank]`` is the machine index the rank runs on.
        Several ranks may share a machine; they then share its speed.
    """

    def __init__(self, cluster: Cluster, placement: Sequence[int],
                 tracer: "object | None" = None):
        if not placement:
            raise MPIError("placement must map at least one rank")
        for m in placement:
            if not 0 <= m < cluster.size:
                raise MPIError(f"placement references unknown machine index {m}")
        self.cluster = cluster
        self.tracer = tracer
        self.placement = list(placement)
        self.nprocs = len(placement)
        self.lock = threading.RLock()
        self.procs = [ProcessState(r, placement[r], self.lock) for r in range(self.nprocs)]
        self.machine_counts = [0] * cluster.size
        for m in placement:
            self.machine_counts[m] += 1
        self._started = False
        self.deadlocked = False
        self.failures: list[MachineFailure] = []
        self._context_registry: dict[tuple, int] = {}
        self._next_context = WORLD_CONTEXT + 1
        self._sync_seq = 0

    # ------------------------------------------------------------------
    # context allocation (deterministic across ranks)
    # ------------------------------------------------------------------
    def allocate_context(self, key: tuple) -> int:
        """Context id for a communicator-creation event.

        All ranks participating in the same logical creation present the
        same ``key`` (derived from parent context, a per-comm creation
        counter, and color/group); the first caller allocates a fresh id
        and the rest look it up, so every rank agrees without extra
        messages.
        """
        with self.lock:
            ctx = self._context_registry.get(key)
            if ctx is None:
                ctx = self._next_context
                self._next_context += 1
                self._context_registry[key] = ctx
            return ctx

    # ------------------------------------------------------------------
    # virtual-time primitives
    # ------------------------------------------------------------------
    def compute(self, world_rank: int, volume: float,
                concurrency: int | None = None) -> float:
        """Advance the rank's clock by ``volume`` benchmark units of work.

        Returns the new clock.  Speed is the machine's base speed times its
        current load share, divided by ``concurrency`` — the number of
        ranks actively computing on the machine.  The default assumes every
        placed rank is active (true for SPMD phases like Recon); callers
        that know better (a group whose non-members are idle, waiting for
        the next group creation) pass the co-located member count, which is
        what HMPI's estimator assumes too.
        """
        proc = self.procs[world_rank]
        machine = self.cluster.machine(proc.machine_index)
        nshare = self.machine_counts[proc.machine_index] if concurrency is None else concurrency
        if nshare < 1:
            raise MPIError(f"concurrency must be >= 1, got {nshare}")
        start = proc.clock
        proc.clock = machine.compute_finish_time(start, volume, nshare)
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=world_rank, kind="compute", t0=start, t1=proc.clock,
                volume=volume,
            ))
        return proc.clock

    def vtime(self, world_rank: int) -> float:
        """Current virtual time of the rank (MPI_Wtime analogue)."""
        return self.procs[world_rank].clock

    def advance_clock(self, world_rank: int, seconds: float) -> float:
        """Advance the rank's clock by raw seconds (fixed-cost activities)."""
        if seconds < 0:
            raise MPIError(f"cannot advance clock by {seconds}")
        proc = self.procs[world_rank]
        proc.clock += seconds
        return proc.clock

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def post_send(self, src: int, dst: int, context: int, tag: int,
                  obj: Any, nbytes: int | None = None,
                  sync: bool = False) -> None:
        """Eager send: snapshot the payload, stamp arrival, deliver.

        With ``sync=True`` (MPI_Ssend semantics) the call additionally
        blocks until the receiver has matched and charged the message: the
        receiver returns a zero-byte acknowledgement whose arrival
        lower-bounds the sender's clock, so the rendezvous shows up in
        virtual time.
        """
        if not 0 <= dst < self.nprocs:
            raise MPIError(f"destination rank {dst} out of range")
        sproc = self.procs[src]
        smach = self.cluster.machine(sproc.machine_index)
        smach.check_alive(sproc.clock)
        payload, size = encode_payload(obj, nbytes)
        dmach_idx = self.placement[dst]
        link = self.cluster.link(sproc.machine_index, dmach_idx)
        proto = link.protocol_for(size)
        # Messages between one ordered rank pair serialise on their link:
        # a transfer starts when both the sender has issued it and the
        # previous transfer to the same destination has fully arrived.
        # This also gives MPI's non-overtaking guarantee for free, and it
        # is exactly the estimator's per-pair link-busy rule.
        depart = sproc.clock
        start = max(depart, sproc.last_arrival.get(dst, 0.0))
        arrival = start + proto.transfer_time(size)
        sproc.last_arrival[dst] = arrival
        if self.cluster.single_port:
            # The sender's interface is occupied until the transfer ends.
            sproc.clock = arrival
        else:
            # CPU-side cost of the send call only.
            sproc.clock = depart + proto.latency
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=src, kind="send", t0=depart, t1=sproc.clock,
                peer=dst, nbytes=size, tag=tag,
            ))
        ack_seq = None
        ack_pr = None
        if sync:
            with self.lock:
                ack_seq = self._sync_seq
                self._sync_seq += 1
            # Post the ack receive before delivering the payload so the
            # acknowledgement can never be lost to a race.
            ack_pr = self.post_recv(src, ACK_CONTEXT, dst, ack_seq)
        msg = Message(context, src, dst, tag, payload, size, arrival,
                      ack_seq=ack_seq)
        with self.lock:
            self._deliver(msg)
        if ack_pr is not None:
            # Rendezvous: the sender's clock advances to the ack's arrival.
            self.wait_recv(src, ack_pr)

    def _deliver(self, msg: Message) -> None:
        """Match against posted receives or queue as unexpected (lock held)."""
        dproc = self.procs[msg.dst]
        for pr in dproc.posted:
            if pr.accepts(msg):
                dproc.posted.remove(pr)
                pr.message = msg
                pr.done = True
                dproc.cond.notify_all()
                return
        dproc.unexpected.append(msg)
        dproc.cond.notify_all()  # wake iprobe/probe waiters

    def post_recv(self, dst: int, context: int, src: int, tag: int) -> PostedRecv:
        """Post a receive; matches an unexpected message immediately if any.

        Among queued matches the one with the smallest virtual arrival is
        taken.  For a fixed source this equals queue order (per-sender
        arrivals are monotone), and for wildcard receives it makes the
        match follow *virtual* time rather than the accident of real-time
        thread scheduling — a master self-scheduling over ANY_SOURCE then
        services the worker that (virtually) finished first.
        """
        pr = PostedRecv(context, src, tag)
        with self.lock:
            best = None
            for msg in self.procs[dst].unexpected:
                if pr.accepts(msg) and (best is None or msg.arrival < best.arrival):
                    best = msg
            if best is not None:
                self.procs[dst].unexpected.remove(best)
                pr.message = best
                pr.done = True
                return pr
            self.procs[dst].posted.append(pr)
        return pr

    def wait_recv(self, dst: int, pr: PostedRecv) -> tuple[Any, Status]:
        """Block until ``pr`` completes; charge arrival time; decode payload."""
        proc = self.procs[dst]
        with self.lock:
            proc.waiting = ("recv", pr)
            try:
                while not pr.done:
                    self._check_deadlock()
                    if self.deadlocked:
                        raise self._deadlock_error()
                    proc.cond.wait()
            finally:
                proc.waiting = None
            msg = pr.message
        assert msg is not None
        wait_from = proc.clock
        if msg.arrival > proc.clock:
            proc.clock = msg.arrival
        machine = self.cluster.machine(proc.machine_index)
        machine.check_alive(proc.clock)
        if msg.ack_seq is not None:
            # Synchronous send: acknowledge so the sender's rendezvous
            # completes; the ack costs one link latency back.
            back = self.cluster.link(proc.machine_index,
                                     self.placement[msg.src])
            ack = Message(ACK_CONTEXT, dst, msg.src, msg.ack_seq,
                          payload=encode_payload(None)[0], nbytes=0,
                          arrival=proc.clock + back.effective_latency())
            with self.lock:
                self._deliver(ack)
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=dst, kind="recv", t0=wait_from, t1=proc.clock,
                peer=msg.src, nbytes=msg.nbytes, tag=msg.tag,
            ))
        status = Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes,
                        arrival_vtime=msg.arrival)
        return decode_payload(msg.payload), status

    def probe(self, dst: int, context: int, src: int, tag: int, block: bool) -> Status | None:
        """MPI_(I)probe: peek at the first matching unexpected message."""
        proc = self.procs[dst]
        with self.lock:
            try:
                while True:
                    for msg in proc.unexpected:
                        if msg.matches(context, src, tag):
                            if msg.arrival > proc.clock:
                                proc.clock = msg.arrival
                            return Status(source=msg.src, tag=msg.tag,
                                          nbytes=msg.nbytes, arrival_vtime=msg.arrival)
                    if not block:
                        return None
                    proc.waiting = ("probe", (context, src, tag))
                    self._check_deadlock()
                    if self.deadlocked:
                        raise self._deadlock_error()
                    proc.cond.wait()
            finally:
                proc.waiting = None

    # ------------------------------------------------------------------
    # deadlock / failure accounting
    # ------------------------------------------------------------------
    def _condition_satisfied(self, proc: ProcessState) -> bool:
        """Whether a waiting rank's wake-up condition already holds (lock held)."""
        assert proc.waiting is not None
        kind, spec = proc.waiting
        if kind == "recv":
            return spec.done
        context, src, tag = spec
        return any(m.matches(context, src, tag) for m in proc.unexpected)

    def _check_deadlock(self) -> None:
        """Declare deadlock iff no unfinished rank can ever progress.

        Called (with the lock held) whenever a rank is about to block and
        whenever a rank finishes.  Sends are eager, so if every unfinished
        rank is waiting on an unsatisfied condition, no future delivery can
        occur and the run is stuck.
        """
        if not self._started:
            return
        any_unfinished = False
        for p in self.procs:
            if p.finished:
                continue
            any_unfinished = True
            if p.waiting is None or self._condition_satisfied(p):
                return
        if any_unfinished:
            self._declare_deadlock()

    def _declare_deadlock(self) -> None:
        self.deadlocked = True
        for p in self.procs:
            p.cond.notify_all()

    def _deadlock_error(self) -> DeadlockError:
        if self.failures:
            dead = ", ".join(f"{f.machine}@{f.vtime:.4f}" for f in self.failures)
            return DeadlockError(
                f"no rank can make progress; failed machines: {dead}"
            )
        return DeadlockError("all live ranks are blocked in receive: deadlock")

    # ------------------------------------------------------------------
    # SPMD run driver
    # ------------------------------------------------------------------
    def run(self, target: Callable[[int], Any], timeout: float | None = 120.0) -> None:
        """Run ``target(world_rank)`` on a thread per rank and join all.

        Exceptions are captured per rank; :class:`MachineFailure` is
        recorded in :attr:`failures` (fault injection is an expected
        outcome), any other exception re-raises after the join from the
        lowest failing rank.
        """

        def runner(rank: int) -> None:
            proc = self.procs[rank]
            try:
                proc.result = target(rank)
            except MachineFailure as mf:
                proc.failed = True
                proc.exception = mf
                with self.lock:
                    self.failures.append(mf)
            except BaseException as exc:  # noqa: BLE001 — reported after join
                proc.failed = True
                proc.exception = exc
                with self.lock:
                    # A rank crash (bug or injected) can leave peers waiting
                    # forever; wake them so the run terminates promptly.
                    if not isinstance(exc, DeadlockError):
                        self._declare_deadlock()
            finally:
                with self.lock:
                    proc.finished = True
                    self._check_deadlock()

        with self.lock:
            self._started = True
        for proc in self.procs:
            proc.thread = threading.Thread(
                target=runner, args=(proc.rank,), daemon=True,
                name=f"mpi-rank-{proc.rank}",
            )
        for proc in self.procs:
            proc.thread.start()
        for proc in self.procs:
            proc.thread.join(timeout)
            if proc.thread.is_alive():
                self._declare_deadlock()
                raise DeadlockError(
                    f"rank {proc.rank} did not finish within {timeout}s of real time"
                )
        # Re-raise the first program bug.  MachineFailure is an expected
        # fault-injection outcome, and a DeadlockError is secondary damage
        # when a failure exists (survivors stuck waiting on a dead rank).
        for proc in self.procs:
            exc = proc.exception
            if exc is None or isinstance(exc, MachineFailure):
                continue
            if isinstance(exc, DeadlockError) and self.failures:
                continue
            raise exc
