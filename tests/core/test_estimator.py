"""The Timeof estimator: resource-clock semantics and engine agreement."""

import numpy as np
import pytest

from repro.cluster import TCP_100MBIT, paper_network, uniform_network
from repro.core.estimator import (
    estimate_breakdown,
    estimate_time,
    record_trace,
    replay_trace,
)
from repro.core.netmodel import NetworkModel
from repro.perfmodel.builder import CallableModel, MatrixModel
from repro.util.errors import HMPIError


def netmodel(cluster=None):
    cluster = cluster or uniform_network([100.0, 50.0, 25.0])
    return NetworkModel(cluster, list(range(cluster.size)))


class TestComputeOnly:
    def test_single_processor(self):
        nm = netmodel()
        model = MatrixModel([200.0], np.zeros((1, 1)))
        assert estimate_time(model, nm, [0]) == pytest.approx(2.0)

    def test_parallel_computes_take_max(self):
        nm = netmodel()
        model = MatrixModel([100.0, 100.0], np.zeros((2, 2)))
        # machine 0: 1s, machine 1: 2s -> makespan 2s
        assert estimate_time(model, nm, [0, 1]) == pytest.approx(2.0)

    def test_speed_sharing_on_colocation(self):
        nm = netmodel()
        model = MatrixModel([100.0, 100.0], np.zeros((2, 2)))
        # both on machine 0: each at 50 units/s -> 2s
        assert estimate_time(model, nm, [0, 0]) == pytest.approx(2.0)

    def test_mapping_length_checked(self):
        nm = netmodel()
        model = MatrixModel([1.0], np.zeros((1, 1)))
        with pytest.raises(HMPIError):
            estimate_time(model, nm, [0, 1])


class TestTransfers:
    def test_transfer_then_compute_chains(self):
        nm = netmodel()
        links = np.zeros((2, 2))
        links[0, 1] = 12_500_000.0  # 1 second over 100 Mbit

        def scheme(v):
            v.transfer(100.0, 0, 1)
            v.compute(100.0, 1)

        model = MatrixModel([0.0, 50.0], links, scheme=scheme)
        t = estimate_time(model, nm, [0, 1])
        # 1s transfer (+latency), then 50 units at 50/s = 1s
        assert t == pytest.approx(2.0 + TCP_100MBIT.latency, rel=1e-4)

    def test_parallel_transfers_distinct_pairs_overlap(self):
        nm = netmodel()
        links = np.zeros((3, 3))
        links[0, 1] = links[2, 1] = 12_500_000.0

        def scheme(v):
            v.transfer(100.0, 0, 1)
            v.transfer(100.0, 2, 1)

        model = MatrixModel([0.0, 0.0, 0.0], links, scheme=scheme)
        t = estimate_time(model, nm, [0, 1, 2])
        assert t == pytest.approx(1.0, rel=0.01)  # not 2.0

    def test_same_pair_transfers_serialise_on_link(self):
        nm = netmodel()
        links = np.zeros((2, 2))
        links[0, 1] = 12_500_000.0

        def scheme(v):
            v.transfer(50.0, 0, 1)
            v.transfer(50.0, 0, 1)

        model = MatrixModel([0.0, 0.0], links, scheme=scheme)
        t = estimate_time(model, nm, [0, 1])
        assert t == pytest.approx(1.0 + 2 * TCP_100MBIT.latency, rel=1e-3)

    def test_transfer_waits_for_sender_compute(self):
        nm = netmodel()
        links = np.zeros((2, 2))
        links[0, 1] = 12_500_000.0

        def scheme(v):
            v.compute(100.0, 0)      # 1s on machine 0
            v.transfer(100.0, 0, 1)  # departs at 1s, arrives ~2s

        model = MatrixModel([100.0, 0.0], links, scheme=scheme)
        assert estimate_time(model, nm, [0, 1]) == pytest.approx(2.0, rel=1e-3)

    def test_colocated_transfer_uses_loopback(self):
        nm = netmodel()
        links = np.zeros((2, 2))
        links[0, 1] = 12_500_000.0
        model = MatrixModel([0.0, 0.0], links)
        t = estimate_time(model, nm, [0, 0])
        assert t < 0.05  # shared memory, not 1s of TCP


class TestTraceReplay:
    def test_trace_cached_on_model(self):
        model = MatrixModel([1.0, 1.0], np.zeros((2, 2)))
        t1 = record_trace(model)
        t2 = record_trace(model)
        assert t1 is t2

    def test_replay_matches_direct_estimate(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        rng = np.random.default_rng(0)
        node = rng.uniform(10, 100, size=5)
        links = rng.uniform(0, 1e6, size=(5, 5))
        np.fill_diagonal(links, 0)
        model = MatrixModel(node, links)
        machines = [0, 6, 7, 8, 3]
        t = estimate_time(model, nm, machines)
        t2 = replay_trace(record_trace(model), model.node_volumes(),
                          model.link_volumes(),
                          [nm.speed_of_machine(m) for m in machines],
                          nm, machines)
        assert t == pytest.approx(t2)

    def test_different_mappings_reuse_trace(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        model = MatrixModel([50.0, 100.0], np.zeros((2, 2)))
        fast = estimate_time(model, nm, [6, 7])
        slow = estimate_time(model, nm, [8, 8])
        assert fast < slow


class TestBreakdown:
    def test_diagnostics(self):
        nm = netmodel()
        links = np.zeros((2, 2))
        links[0, 1] = 1000.0
        model = MatrixModel([100.0, 50.0], links)
        info = estimate_breakdown(model, nm, [0, 1])
        assert info["makespan"] == pytest.approx(max(info["clocks"]))
        assert info["transfer_bytes"] == pytest.approx(1000.0)
        assert info["actions"] == 3  # 1 transfer + 2 computes
        assert info["compute_seconds"][0] == pytest.approx(1.0)


class TestEngineAgreement:
    def test_prediction_matches_execution(self):
        """The estimator and the execution engine share a cost model: a
        program that performs exactly the modelled actions must take the
        predicted time."""
        from repro.mpi import run_mpi

        cluster = uniform_network([100.0, 50.0])
        nm = NetworkModel(cluster, [0, 1])
        nbytes = 2_500_000  # 0.2 s over TCP
        links = np.zeros((2, 2))
        links[0, 1] = nbytes

        def scheme(v):
            v.compute(100.0, 0)
            v.transfer(100.0, 0, 1)
            v.compute(100.0, 1)

        model = MatrixModel([70.0, 30.0], links, scheme=scheme)
        predicted = estimate_time(model, nm, [0, 1])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                env.compute(70.0)
                c.send(np.zeros(nbytes // 8), 1)
            else:
                c.recv(0)
                env.compute(30.0)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.makespan == pytest.approx(predicted, rel=1e-6)
