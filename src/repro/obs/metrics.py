"""Virtual-time-aware metrics registry.

A :class:`MetricsRegistry` holds named instruments — :class:`Counter`,
:class:`Gauge`, :class:`Histogram` — each further keyed by a set of
**labels** (``group=3, machine="ws06", op="timeof"``), so one logical
metric fans out into one time series per label combination, exactly like
Prometheus/OpenMetrics clients.  Instruments are cheap to look up (one
dict access under one lock) and cheap to update (plain float/int
arithmetic), so instrumented hot paths cost a None-check when
observability is off and a few dict operations when it is on.

Virtual time: every update may carry the observing rank's virtual
timestamp.  The registry keeps the min/max virtual time it has seen, and
gauges remember the vtime of their last set — a snapshot therefore says
*when in the simulated run* its values were current, which wall-clock
metrics libraries cannot express.

``snapshot()`` returns a plain JSON-able dict; ``to_json()`` serialises
it.  The registry absorbs the selection engine's ad-hoc
:class:`repro.core.seleng.SelectionStats` via
:func:`publish_selection_stats`, which re-expresses its counters as
registry series under ``hmpi.selection.*``.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "publish_selection_stats",
]

#: Version of the ``snapshot()`` document shape.  Bump whenever the set
#: of top-level keys or per-series fields changes, and freeze the new
#: fingerprint in tests/obs/test_metrics.py — mirrors the
#: ``campaign/results.py`` schema contract so ``/snapshot`` consumers
#: and archived dumps can rely on field sets.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds: half-decade log scale covering
#: microseconds to hours of virtual time (and doubling fine for bytes).
DEFAULT_BUCKETS = tuple(
    round(10.0 ** (e / 2.0), 9) for e in range(-12, 9)
)


def _label_key(labels: dict[str, Any]) -> tuple:
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (events, bytes, cache hits)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (free processes, cache size)."""

    __slots__ = ("name", "labels", "value", "vtime")

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.vtime: float | None = None

    def set(self, value: float, vtime: float | None = None) -> None:
        self.value = value
        if vtime is not None:
            self.vtime = vtime

    def add(self, amount: float, vtime: float | None = None) -> None:
        self.set(self.value + amount, vtime)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"type": "gauge", "value": self.value}
        if self.vtime is not None:
            out["vtime"] = self.vtime
        return out


class Histogram:
    """Distribution summary: count/sum/min/max plus log-scale buckets.

    Buckets hold cumulative counts of observations ``<= bound`` (the
    Prometheus convention, with an implicit +Inf bucket equal to
    ``count``), so quantiles can be estimated without retaining samples.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "total", "min", "max")

    def __init__(self, name: str, labels: dict[str, Any],
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        the q-th observation falls in); min/max for q at the ends."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cum in zip(self.bounds, self.bucket_counts):
            if cum >= target:
                return min(bound, self.max)
        return self.max

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            # Cumulative <= bound pairs (the +Inf bucket is ``count``),
            # so exposition formats can be rendered from a snapshot
            # alone — no live Histogram object needed.
            "buckets": [[bound, cum] for bound, cum
                        in zip(self.bounds, self.bucket_counts)],
        }


class MetricsRegistry:
    """Thread-safe home of every instrument of one run.

    Instruments are addressed by ``(name, labels)``; the first access
    creates them.  A name is committed to one instrument type on first
    use — asking for ``counter("x")`` after ``gauge("x")`` is an error,
    catching the classic copy-paste instrumentation bug early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple], Any] = {}
        self._types: dict[str, type] = {}
        self._vtime_min: float | None = None
        self._vtime_max: float | None = None

    # -- instrument access ---------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, Any],
             **kwargs: Any) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            committed = self._types.setdefault(name, cls)
            if committed is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{committed.__name__}, requested {cls.__name__}"
                )
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, dict(labels), **kwargs)
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- virtual-time window -------------------------------------------
    def mark_vtime(self, vtime: float) -> None:
        """Record that an observation happened at virtual time ``vtime``."""
        with self._lock:
            if self._vtime_min is None or vtime < self._vtime_min:
                self._vtime_min = vtime
            if self._vtime_max is None or vtime > self._vtime_max:
                self._vtime_max = vtime

    # -- output --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: ``{"vtime": {...}, "metrics": [series...]}``."""
        with self._lock:
            series = [
                {"name": inst.name, "labels": dict(inst.labels),
                 **inst.as_dict()}
                for _, inst in sorted(self._instruments.items(),
                                      key=lambda kv: kv[0])
            ]
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "vtime": {"min": self._vtime_min, "max": self._vtime_max},
                "metrics": series,
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def get_value(self, name: str, **labels: Any) -> Any:
        """Value of one series (test/report convenience); None if absent."""
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
        if inst is None:
            return None
        if isinstance(inst, Histogram):
            return inst.as_dict()
        return inst.value

    def series(self, name: str) -> list[Any]:
        """Every instrument registered under ``name`` (any labels)."""
        with self._lock:
            return [inst for (n, _), inst in sorted(self._instruments.items(),
                                                    key=lambda kv: kv[0])
                    if n == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


def publish_selection_stats(registry: MetricsRegistry, stats: Any,
                            **labels: Any) -> None:
    """Re-express a :class:`~repro.core.seleng.SelectionStats` through the
    registry as ``hmpi.selection.<counter>`` gauges.

    Gauges, not counters: the stats object is live and cumulative, and
    publishing happens at snapshot time — setting the current totals is
    idempotent, repeated publishes do not double-count.
    """
    for field, value in stats.as_dict().items():
        registry.gauge(f"hmpi.selection.{field}", **labels).set(float(value))
