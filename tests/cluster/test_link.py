"""Link and protocol cost model."""

import pytest

from repro.cluster.link import (
    FAST_INTERCONNECT,
    SHARED_MEMORY,
    TCP_100MBIT,
    Link,
    Protocol,
)
from repro.util.errors import ClusterError


class TestProtocol:
    def test_hockney_model(self):
        p = Protocol("t", latency=0.001, bandwidth=1e6)
        assert p.transfer_time(0) == pytest.approx(0.001)
        assert p.transfer_time(1_000_000) == pytest.approx(1.001)

    def test_rejects_negative_latency(self):
        with pytest.raises(ClusterError):
            Protocol("t", latency=-1.0, bandwidth=1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ClusterError):
            Protocol("t", latency=0.0, bandwidth=0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ClusterError):
            TCP_100MBIT.transfer_time(-1)

    def test_paper_ethernet_bandwidth(self):
        # 100 Mbit/s = 12.5 MB/s
        assert TCP_100MBIT.bandwidth == pytest.approx(12.5e6)


class TestLink:
    def test_needs_a_protocol(self):
        with pytest.raises(ClusterError):
            Link([])

    def test_rejects_duplicate_protocol_names(self):
        with pytest.raises(ClusterError):
            Link([TCP_100MBIT, TCP_100MBIT])

    def test_single_protocol(self):
        link = Link.single(TCP_100MBIT)
        assert link.transfer_time(1000) == pytest.approx(
            TCP_100MBIT.transfer_time(1000)
        )

    def test_fastest_protocol_selected_per_size(self):
        # Low-latency/low-bandwidth vs high-latency/high-bandwidth crossover.
        slow_small = Protocol("bulk", latency=1.0, bandwidth=1e9)
        fast_small = Protocol("light", latency=0.001, bandwidth=1e3)
        link = Link([slow_small, fast_small])
        assert link.protocol_for(1).name == "light"     # 0.002 < 1.0
        assert link.protocol_for(10**10).name == "bulk"  # 11.0 vs 10^7

    def test_pin_forces_protocol(self):
        link = Link([TCP_100MBIT, FAST_INTERCONNECT])
        assert link.protocol_for(10**6).name == "fast"
        link.pin("tcp-100mbit")
        assert link.protocol_for(10**6).name == "tcp-100mbit"
        link.unpin()
        assert link.protocol_for(10**6).name == "fast"

    def test_pin_unknown_protocol(self):
        with pytest.raises(ClusterError):
            Link.single(TCP_100MBIT).pin("myrinet")

    def test_pinned_at_construction(self):
        link = Link([TCP_100MBIT, FAST_INTERCONNECT], pinned="tcp-100mbit")
        assert link.pinned == "tcp-100mbit"

    def test_shared_memory_much_faster_than_tcp(self):
        assert SHARED_MEMORY.transfer_time(10**6) < TCP_100MBIT.transfer_time(10**6) / 10

    def test_effective_parameters(self):
        link = Link.single(TCP_100MBIT)
        assert link.effective_latency() == TCP_100MBIT.latency
        assert link.effective_bandwidth() == TCP_100MBIT.bandwidth
