"""Flat vs hierarchical collectives on a clusters-of-clusters topology.

The two-site preset joins two equal-speed gigabit subnets with a slow
wide-area link.  A topology-blind binomial tree routes edges across the
WAN wherever the rank numbering happens to put them; the hierarchical
algorithms cross it once per remote site and keep everything else inside
the switches.  This bench sweeps message sizes for bcast and payload
sizes for reduce/allgather and records the virtual makespan per
algorithm, asserting the ISSUE's acceptance criteria:

- hierarchical bcast and reduce beat the flat binomial tree;
- ``algorithm="auto"`` never loses to the *worst* fixed choice (it is a
  selector, so its cost must track the good region of the space).

With ``--smoke`` the sweep shrinks to one size per collective (the CI
topology-smoke job runs this).
"""

from __future__ import annotations

import pytest

from repro.cluster import two_site_network
from repro.mpi.launcher import run_mpi
from repro.mpi.ops import SUM
from repro.util.tables import Table

BCAST_SIZES = (1 << 10, 1 << 16, 1 << 20)
REDUCE_LENGTHS = (16, 256, 4096)
SMOKE_BCAST_SIZES = (1 << 16,)
SMOKE_REDUCE_LENGTHS = (256,)

BCAST_ALGOS = ("binomial", "flat", "chain", "hierarchical", "auto")
REDUCE_ALGOS = ("binomial", "flat", "hierarchical", "auto")
ALLGATHER_ALGOS = ("ring", "hierarchical", "auto")


# Root 2: with root 0 and power-of-two contiguous sites the binomial
# tree happens to coincide with the hierarchical schedule; a rotated
# root (the generic case) makes the tree's virtual ranks straddle the
# site boundary and its WAN crossings multiply.
ROOT = 2


def _bcast_app(env, nbytes, algorithm):
    payload = b"x" if env.rank == ROOT else None
    env.comm_world.bcast(payload, root=ROOT, nbytes=nbytes, algorithm=algorithm)


def _reduce_app(env, length, algorithm):
    env.comm_world.reduce([float(env.rank)] * length, SUM, root=ROOT,
                          algorithm=algorithm)


def _allgather_app(env, length, algorithm):
    env.comm_world.allgather([float(env.rank)] * length, algorithm=algorithm)


def _sweep(cluster, app, sizes, algos):
    """{size: {algorithm: virtual makespan}} for one collective."""
    out: dict[int, dict[str, float]] = {}
    for size in sizes:
        out[size] = {
            algo: run_mpi(app, cluster, args=(size, algo)).makespan
            for algo in algos
        }
    return out


def _table(title, col, results):
    algos = list(next(iter(results.values())))
    table = Table(col, *[f"t_{a} (s)" for a in algos], title=title)
    for size, times in results.items():
        table.add(size, *[f"{times[a]:.6f}" for a in algos])
    return table.render()


def _check_acceptance(results, hier="hierarchical", flat_tree="binomial"):
    """Hierarchical beats the flat tree; auto never loses to the worst."""
    for size, times in results.items():
        fixed = {a: t for a, t in times.items() if a != "auto"}
        worst = max(fixed.values())
        assert times[hier] < times[flat_tree], (
            f"hierarchical ({times[hier]:.6f}s) does not beat "
            f"{flat_tree} ({times[flat_tree]:.6f}s) at size {size}"
        )
        assert times["auto"] <= worst + 1e-9, (
            f"auto ({times['auto']:.6f}s) loses to the worst fixed "
            f"algorithm ({worst:.6f}s) at size {size}"
        )


@pytest.mark.benchmark(group="topology-collectives")
def test_topology_collectives(benchmark, smoke, report):
    cluster = two_site_network()  # 2 sites x 4 machines, WAN between
    bcast_sizes = SMOKE_BCAST_SIZES if smoke else BCAST_SIZES
    reduce_lengths = SMOKE_REDUCE_LENGTHS if smoke else REDUCE_LENGTHS

    def run():
        return (
            _sweep(cluster, _bcast_app, bcast_sizes, BCAST_ALGOS),
            _sweep(cluster, _reduce_app, reduce_lengths, REDUCE_ALGOS),
            _sweep(cluster, _allgather_app, reduce_lengths, ALLGATHER_ALGOS),
        )

    bcast_res, reduce_res, allgather_res = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )

    report.emit(_table(
        "bcast on two_site (2x4, WAN between sites) — virtual makespan",
        "nbytes", bcast_res))
    report.emit(_table(
        "reduce(SUM) on two_site — virtual makespan", "list length",
        reduce_res))
    report.emit(_table(
        "allgather on two_site — virtual makespan", "list length",
        allgather_res))

    _check_acceptance(bcast_res)
    _check_acceptance(reduce_res)
    # Allgather has no binomial variant; hierarchical must beat the ring.
    _check_acceptance(allgather_res, flat_tree="ring")
