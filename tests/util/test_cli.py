"""Command-line interface."""

import json
import re
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig09_defaults(self):
        args = build_parser().parse_args(["fig09"])
        assert args.slots == 2
        assert args.niter == 8


class TestCommands:
    def test_fig09_small(self, capsys):
        assert main(["fig09", "--sizes", "4500", "--niter", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "4500" in out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--sizes", "9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "speedup" in out

    def test_cluster_json(self, capsys):
        assert main(["cluster", "--preset", "paper"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert len(blob["machines"]) == 9
        assert blob["machines"][6]["speed"] == 176

    def test_compile_model_file(self, tmp_path, capsys):
        model = tmp_path / "ring.mpc"
        model.write_text("""
        algorithm Ring(int p, int v[p]) {
          coord I=p;
          node {I>=0: bench*(v[I]);};
          link (L=p) { L == (I+1)%p : length*(64) [L]->[I]; };
          parent[0];
        }
        """)
        assert main(["compile", str(model)]) == 0
        out = capsys.readouterr().out
        assert "compiled 1 algorithm(s): Ring" in out
        assert "algorithm Ring" in out

    def test_compile_with_external_call(self, tmp_path, capsys):
        model = tmp_path / "ext.mpc"
        model.write_text("""
        algorithm Ext(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme { Helper(p); };
        }
        """)
        assert main(["compile", str(model)]) == 0
        assert "Ext" in capsys.readouterr().out


class TestCheckCommand:
    DEFECT = """
    algorithm Oob(int p) {
      coord I=p;
      node {I>=0: bench*(1);};
      scheme { 100%%[p]; };
    }
    """
    CLEAN = """
    algorithm Clean(int p) {
      coord I=p;
      node {I>=0: bench*(1);};
      scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
    }
    """

    def test_defective_model_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "oob.pmdl"
        f.write_text(self.DEFECT)
        assert main(["check", str(f)]) == 1
        out = capsys.readouterr().out
        assert "PM010" in out
        assert "error" in out

    def test_clean_model_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.pmdl"
        f.write_text(self.CLEAN)
        assert main(["check", str(f), "--strict"]) == 0

    def test_strict_gates_on_warnings(self, tmp_path):
        f = tmp_path / "warn.pmdl"
        f.write_text("""
        algorithm Warn(int p, int q) {
          coord I=p;
          node {I>=0: bench*(1);};
        }
        """)
        assert main(["check", str(f)]) == 0
        assert main(["check", str(f), "--strict"]) == 1

    def test_json_output(self, tmp_path, capsys):
        f = tmp_path / "oob.pmdl"
        f.write_text(self.DEFECT)
        assert main(["check", str(f), "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob[0]["errors"] == 1
        assert blob[0]["diagnostics"][0]["code"] == "PM010"

    def test_apps_are_clean_under_strict(self, capsys):
        assert main(["check", "--apps", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "<app:em3d>" in out
        assert "<app:matmul>" in out

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["check"]) == 2


class TestCheckExitCodeParity:
    """`check --json` must gate exactly like the text path (issue fix):
    warnings-only exits 0, `--strict` promotes warnings to 1 — in both
    output modes."""

    WARN = """
    algorithm Warn(int p, int q) {
      coord I=p;
      node {I>=0: bench*(1);};
    }
    """

    def test_json_warnings_only_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "warn.pmdl"
        f.write_text(self.WARN)
        assert main(["check", str(f), "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob[0]["errors"] == 0 and blob[0]["warnings"] >= 1

    def test_json_strict_promotes_warnings(self, tmp_path, capsys):
        f = tmp_path / "warn.pmdl"
        f.write_text(self.WARN)
        assert main(["check", str(f), "--json", "--strict"]) == 1
        json.loads(capsys.readouterr().out)  # still valid JSON on stdout

    def test_json_and_text_exits_agree(self, tmp_path, capsys):
        f = tmp_path / "warn.pmdl"
        f.write_text(self.WARN)
        for strict in (False, True):
            flags = ["--strict"] if strict else []
            text_exit = main(["check", str(f), *flags])
            json_exit = main(["check", str(f), "--json", *flags])
            capsys.readouterr()
            assert text_exit == json_exit


class TestCheckNet:
    FIXTURES = __import__("pathlib").Path(__file__).parent.parent \
        / "perfmodel" / "fixtures"

    def test_net_flag_reports_deadlock(self, capsys):
        f = self.FIXTURES / "net_deadlock.pmdl"
        assert main(["check", str(f), "--net"]) == 1
        out = capsys.readouterr().out
        assert "PM080" in out

    def test_without_net_flag_fixture_passes(self, capsys):
        f = self.FIXTURES / "net_deadlock.pmdl"
        assert main(["check", str(f)]) == 0

    def test_net_json_orphan_warning_gates_consistently(self, capsys):
        f = self.FIXTURES / "net_orphan.pmdl"
        assert main(["check", str(f), "--net", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob[0]["diagnostics"][0]["code"] == "PM081"
        assert main(["check", str(f), "--net", "--json", "--strict"]) == 1

    def test_apps_clean_under_strict_net(self, capsys):
        assert main(["check", "--apps", "--strict", "--net"]) == 0

    def test_net_dot_writes_graphs_and_implies_net(self, tmp_path, capsys):
        f = self.FIXTURES / "net_orphan.pmdl"
        dot = tmp_path / "net.dot"
        assert main(["check", str(f), "--net-dot", str(dot), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "PM081" in out  # --net implied
        text = dot.read_text()
        assert "digraph" in text and "->" in text


class TestNetCommand:
    FIXTURES = __import__("pathlib").Path(__file__).parent.parent \
        / "perfmodel" / "fixtures"

    def test_summary_and_deadlock_exit(self, capsys):
        f = self.FIXTURES / "net_deadlock.pmdl"
        assert main(["net", str(f)]) == 1
        out = capsys.readouterr().out
        assert "transitions" in out and "PM080" in out

    def test_app_matmul_unrolls(self, capsys):
        assert main(["net", "--app", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "ParallelAxB" in out and "transitions" in out

    def test_dot_output(self, tmp_path, capsys):
        dot = tmp_path / "em3d.dot"
        assert main(["net", "--app", "em3d", "--dot", str(dot)]) == 0
        assert "digraph" in dot.read_text()

    def test_trace_output_is_valid_chrome_json(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace
        out = tmp_path / "net_trace.json"
        assert main(["net", "--app", "jacobi", "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_bind_overrides_probe(self, tmp_path, capsys):
        src = tmp_path / "ring.pmdl"
        src.write_text("""
        algorithm Ring(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          link (L=p) { L == (I+1)%p : length*(64) [I]->[L]; };
          scheme {
            int i;
            par (i = 0; i < p; i++) {
              100%%[i]->[(i+1)%p];
              100%%[i];
            }
          };
        }
        """)
        assert main(["net", str(src), "--bind", "p=6"]) == 0
        out = capsys.readouterr().out
        assert "6 processors" in out

    def test_no_target_is_usage_error(self, capsys):
        assert main(["net"]) == 2


class TestCompileGating:
    def test_analysis_error_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "oob.pmdl"
        f.write_text(TestCheckCommand.DEFECT)
        assert main(["compile", str(f)]) == 1
        assert "PM010" in capsys.readouterr().err

    def test_bind_runs_linter_and_gates(self, tmp_path, capsys):
        f = tmp_path / "under.pmdl"
        f.write_text("""
        algorithm Bad(int p) {
          coord I=p;
          node {I>=0: bench*(10);};
          scheme { int i; par (i = 0; i < p; i++) 50%%[i]; };
        }
        """)
        assert main(["compile", str(f)]) == 0
        assert main(["compile", str(f), "--bind", "p=3"]) == 1
        assert "50.0000%" in capsys.readouterr().out

    def test_bind_consistent_model_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "ok.pmdl"
        f.write_text("""
        algorithm Ok(int p) {
          coord I=p;
          node {I>=0: bench*(10);};
          scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
        }
        """)
        assert main(["compile", str(f), "--bind", "p=4"]) == 0
        assert "consistent" in capsys.readouterr().out


class TestCampaignCommands:
    CONFIG = {
        "name": "cli-test",
        "app": "timeof_em3d",
        "fixed": {"p": 3, "total_nodes": 600},
        "axes": {"mapper": ["greedy", "default"]},
    }

    def write_config(self, tmp_path, raw=None):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(raw or self.CONFIG))
        return path

    def test_run_writes_results_and_exits_zero(self, tmp_path, capsys):
        cfg = self.write_config(tmp_path)
        out = tmp_path / "out"
        assert main(["campaign", "run", str(cfg), "--out", str(out)]) == 0
        assert (out / "results.jsonl").exists()
        assert (out / "summary.json").exists()
        assert "2 run(s), 0 error(s)" in capsys.readouterr().out

    def test_check_passes_against_own_baseline(self, tmp_path, capsys):
        from repro.campaign import baseline_from_rows, read_rows
        cfg = self.write_config(tmp_path)
        out = tmp_path / "out"
        main(["campaign", "run", str(cfg), "--out", str(out), "--quiet"])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(baseline_from_rows(read_rows(out))))
        capsys.readouterr()
        assert main(["campaign", "check", str(out),
                     "--baseline", str(baseline)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_flags_regression_with_exit_one(self, tmp_path, capsys):
        from repro.campaign import baseline_from_rows, read_rows
        cfg = self.write_config(tmp_path)
        out = tmp_path / "out"
        main(["campaign", "run", str(cfg), "--out", str(out), "--quiet"])
        rows = read_rows(out)
        baseline = baseline_from_rows(rows)
        for cell in baseline["cells"]:
            cell["metrics"]["predicted_time"] *= 1.05  # inject >2% drift
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        capsys.readouterr()
        assert main(["campaign", "check", str(out),
                     "--baseline", str(path)]) == 1
        assert "predicted_time" in capsys.readouterr().err

    def test_list_without_config_shows_drivers(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("timeof_em3d", "jacobi_ft", "iterative"):
            assert name in out

    def test_list_with_config_shows_expanded_runs(self, tmp_path, capsys):
        cfg = self.write_config(tmp_path)
        assert main(["campaign", "list", str(cfg)]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "default" in out


class TestCampaignUsageErrors:
    """Every malformed invocation exits 2 with a one-line error on
    stderr — never a traceback (the CampaignError -> OptionError ->
    exit-2 contract)."""

    def check(self, capsys, argv):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        return err

    def test_missing_config_file(self, tmp_path, capsys):
        err = self.check(capsys, ["campaign", "run",
                                  str(tmp_path / "nope.json")])
        assert "no campaign file" in err

    def test_invalid_json_config(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        self.check(capsys, ["campaign", "run", str(bad)])

    def test_unknown_driver(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "app": "nope",
                                   "axes": {"p": [1]}}))
        err = self.check(capsys, ["campaign", "run", str(bad)])
        assert "nope" in err and "timeof_em3d" in err

    def test_unknown_axis_parameter(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "app": "timeof_em3d",
                                   "axes": {"warp_factor": [9]}}))
        err = self.check(capsys, ["campaign", "run", str(bad)])
        assert "warp_factor" in err

    def test_check_missing_baseline(self, tmp_path, capsys):
        cfg = tmp_path / "c.json"
        cfg.write_text(json.dumps(TestCampaignCommands.CONFIG))
        out = tmp_path / "out"
        main(["campaign", "run", str(cfg), "--out", str(out), "--quiet"])
        capsys.readouterr()
        err = self.check(capsys, ["campaign", "check", str(out),
                                  "--baseline", str(tmp_path / "nope.json")])
        assert "no baseline" in err

    def test_check_missing_results(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(
            {"schema_version": 1, "tolerances": {}, "cells": []}))
        err = self.check(capsys, ["campaign", "check",
                                  str(tmp_path / "missing"),
                                  "--baseline", str(baseline)])
        assert "no results" in err


class TestCheckChoice:
    def test_choices_listed_in_declaration_order(self):
        from repro.util.errors import OptionError
        from repro.util.options import check_choice
        with pytest.raises(OptionError) as exc:
            check_choice("policy", "bogus",
                         ("never", "on-failure", "periodic"), OptionError)
        msg = str(exc.value)
        assert msg.index("never") < msg.index("on-failure") \
            < msg.index("periodic")

    def test_valid_choice_passes_through(self):
        from repro.util.errors import OptionError
        from repro.util.options import check_choice
        assert check_choice("policy", "periodic",
                            ("never", "on-failure", "periodic"),
                            OptionError) == "periodic"


class TestObservabilityCommands:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["trace", "--out", str(out),
                     "--metrics", str(metrics)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 0
        snap = json.loads(metrics.read_text())
        names = {s["name"] for s in snap["metrics"]}
        assert "hmpi.repairs" in names
        assert "Perfetto" in capsys.readouterr().out

    def test_trace_matmul_fault_free(self, tmp_path):
        out = tmp_path / "mm.json"
        assert main(["trace", "--app", "matmul", "--n", "9",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "HMPI_Timeof" in names

    def test_stats_prints_tables(self, capsys):
        assert main(["stats", "--app", "matmul", "--n", "9"]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "hmpi.selection.cache_misses" in out
        assert "Timeof prediction accuracy" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--app", "matmul", "--n", "9", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "metrics" in snap and "accuracy" in snap
        assert snap["accuracy"]["ParallelAxB"]["measured"] == 1

    def test_fig11_prints_selection_stats(self, capsys):
        assert main(["fig11", "--sizes", "9"]) == 0
        out = capsys.readouterr().out
        assert "Selection engine" in out
        assert "cache_misses" in out


class TestCampaignLiveAndMonitor:
    CONFIG = {
        "name": "cli-live",
        "app": "timeof_em3d",
        "fixed": {"p": 3, "total_nodes": 600},
        "axes": {"mapper": ["greedy", "default"]},
    }

    def write_config(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(self.CONFIG))
        return path

    def test_live_prints_progress_and_eta(self, tmp_path, capsys):
        cfg = self.write_config(tmp_path)
        assert main(["campaign", "run", str(cfg), "--live"]) == 0
        out = capsys.readouterr().out
        assert "live: 1/2 cells" in out
        assert "live: 2/2 cells" in out
        assert "ETA" in out

    def test_telemetry_flag_writes_jsonl_sidecar(self, tmp_path):
        cfg = self.write_config(tmp_path)
        sidecar = tmp_path / "events.jsonl"
        assert main(["campaign", "run", str(cfg), "--quiet",
                     "--telemetry", str(sidecar)]) == 0
        events = [json.loads(l)
                  for l in sidecar.read_text().splitlines()]
        assert [e["name"] for e in events] == [
            "start", "cell.start", "cell.finish",
            "cell.start", "cell.finish", "finish"]
        assert all(e["schema"] == 1 for e in events)

    def test_live_leaves_results_bytes_unchanged(self, tmp_path):
        cfg = self.write_config(tmp_path)
        plain, live = tmp_path / "plain", tmp_path / "live"
        assert main(["campaign", "run", str(cfg), "--quiet",
                     "--out", str(plain)]) == 0
        assert main(["campaign", "run", str(cfg), "--quiet", "--live",
                     "--out", str(live)]) == 0
        assert (plain / "results.jsonl").read_bytes() == \
            (live / "results.jsonl").read_bytes()

    def test_monitor_runs_campaign_and_serves_endpoint(
            self, tmp_path, capsys):
        cfg = self.write_config(tmp_path)
        out = tmp_path / "out"
        sidecar = tmp_path / "events.jsonl"
        assert main(["monitor", str(cfg), "--out", str(out),
                     "--telemetry", str(sidecar)]) == 0
        printed = capsys.readouterr().out
        assert "monitoring at http://127.0.0.1:" in printed
        assert "2 run(s), 0 error(s)" in printed
        assert (out / "results.jsonl").exists()
        assert sidecar.exists()

    def test_monitor_endpoint_live_during_hold(self, tmp_path):
        import threading
        import urllib.request

        from repro.obs import parse_openmetrics

        cfg = self.write_config(tmp_path)
        # Capture the bound URL from the printed banner via a pipe-less
        # trick: run main in a thread with --hold, scrape, then join.
        import contextlib
        import io

        banner = io.StringIO()
        codes = []

        def run_cli():
            with contextlib.redirect_stdout(banner):
                codes.append(main(["monitor", str(cfg), "--port", "0",
                                   "--hold", "3"]))

        thread = threading.Thread(target=run_cli)
        thread.start()
        try:
            url = None
            for _ in range(100):
                m = re.search(r"http://127\.0\.0\.1:\d+", banner.getvalue())
                if m and "holding" in banner.getvalue():
                    url = m.group(0)
                    break
                time.sleep(0.05)
            assert url, f"monitor never reached hold: {banner.getvalue()!r}"
            body = urllib.request.urlopen(url + "/metrics",
                                          timeout=5.0).read().decode()
            families = parse_openmetrics(body)
            assert families["campaign_cells_done"]["samples"] == [
                ("campaign_cells_done", {}, 2.0)]
            health = json.loads(urllib.request.urlopen(
                url + "/healthz", timeout=5.0).read())
            assert health["status"] == "ok"
        finally:
            thread.join(timeout=15.0)
        assert codes == [0]
