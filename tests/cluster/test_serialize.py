"""Cluster configuration serialization round trips."""

import pytest

from repro.cluster import (
    ConstantLoad,
    FAST_INTERCONNECT,
    Link,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
    TCP_100MBIT,
    multiprotocol_network,
    paper_network,
    uniform_network,
)
from repro.cluster.serialize import (
    cluster_from_dict,
    cluster_from_json,
    cluster_to_dict,
    cluster_to_json,
)
from repro.util.errors import ClusterError


class TestRoundTrip:
    def test_paper_network(self):
        original = paper_network()
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.speeds() == original.speeds()
        assert [m.name for m in restored.machines] == [m.name for m in original.machines]
        assert [m.os for m in restored.machines] == [m.os for m in original.machines]
        assert restored.transfer_time(0, 1, 10**6) == pytest.approx(
            original.transfer_time(0, 1, 10**6)
        )

    def test_json_round_trip(self):
        original = multiprotocol_network()
        restored = cluster_from_json(cluster_to_json(original))
        assert restored.transfer_time(0, 1, 10**7) == pytest.approx(
            original.transfer_time(0, 1, 10**7)
        )
        assert len(restored.link(0, 1).protocols) == 2

    def test_loopback_preserved(self):
        original = paper_network()
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.link(2, 2).protocols[0].name == "shm"

    def test_fail_at_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.machines[1].fail_at = 3.5
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.machine(1).fail_at == 3.5
        assert restored.machine(0).fail_at is None

    def test_pinned_link_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.set_link(0, 1, Link([TCP_100MBIT, FAST_INTERCONNECT],
                              pinned="tcp-100mbit"))
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.link(0, 1).pinned == "tcp-100mbit"

    def test_asymmetric_links_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.set_link(0, 1, Link.single(FAST_INTERCONNECT), symmetric=False)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.transfer_time(0, 1, 10**7) < restored.transfer_time(1, 0, 10**7)


class TestLoadModels:
    def test_constant(self):
        c = uniform_network([10.0])
        c.machines[0].load = ConstantLoad(0.25)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.machine(0).load.share_at(0.0) == 0.25

    def test_step(self):
        c = uniform_network([10.0])
        c.machines[0].load = StepLoad([(1.0, 0.5), (2.0, 0.75)], initial=0.9)
        restored = cluster_from_dict(cluster_to_dict(c))
        load = restored.machine(0).load
        assert load.share_at(0.5) == 0.9
        assert load.share_at(1.5) == 0.5
        assert load.share_at(2.5) == 0.75

    def test_square_wave(self):
        c = uniform_network([10.0])
        c.machines[0].load = SquareWaveLoad(period=4.0, high=1.0, low=0.3,
                                            phase=0.5)
        restored = cluster_from_dict(cluster_to_dict(c))
        for t in (0.0, 1.0, 2.0, 3.7):
            assert restored.machine(0).load.share_at(t) == \
                c.machines[0].load.share_at(t)

    def test_random_walk_refuses(self):
        c = uniform_network([10.0])
        c.machines[0].load = RandomWalkLoad(interval=1.0, seed=1)
        with pytest.raises(ClusterError, match="seed"):
            cluster_to_dict(c)


class TestErrors:
    def test_unknown_load_kind(self):
        with pytest.raises(ClusterError):
            cluster_from_dict({
                "machines": [{"name": "a", "speed": 1.0,
                              "load": {"kind": "martian"}}],
            })


class TestSinglePort:
    def test_single_port_round_trip(self):
        from repro.cluster import Cluster, Machine

        c = Cluster([Machine("a", 1.0), Machine("b", 2.0)], single_port=True)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.single_port is True

    def test_default_is_multi_port(self):
        restored = cluster_from_dict(cluster_to_dict(paper_network()))
        assert restored.single_port is False


class TestFaultBlobs:
    """Fault-campaign configuration must survive serialization: schedules,
    transient-fault configs (default and per-pair), and the seed that makes
    a campaign reproducible from its saved cluster file."""

    def _faulty_cluster(self):
        from repro.cluster import (
            FaultSchedule,
            TransientFaultConfig,
            TransientLinkFaults,
            attach_transient_faults,
            inject_faults,
        )

        c = uniform_network([100.0, 50.0, 25.0])
        inject_faults(c, FaultSchedule({"m01": 0.25, "m02": 1.5}))
        attach_transient_faults(c, TransientLinkFaults(
            TransientFaultConfig(drop_prob=0.3, delay_prob=0.1,
                                 delay=2e-3, start=0.1, stop=5.0),
            seed=42,
            pair_configs={("m00", "m02"): TransientFaultConfig(drop_prob=0.9)},
        ))
        return c

    def test_fault_schedule_round_trip(self):
        restored = cluster_from_dict(cluster_to_dict(self._faulty_cluster()))
        assert restored.machine("m01").fail_at == 0.25
        assert restored.machine("m02").fail_at == 1.5
        assert restored.machine("m00").fail_at is None

    def test_transient_config_round_trip(self):
        restored = cluster_from_dict(cluster_to_dict(self._faulty_cluster()))
        tf = restored.transient_faults
        assert tf is not None
        assert tf.seed == 42
        d = tf.default
        assert (d.drop_prob, d.delay_prob, d.delay) == (0.3, 0.1, 2e-3)
        assert (d.start, d.stop) == (0.1, 5.0)

    def test_pair_config_round_trip(self):
        restored = cluster_from_dict(cluster_to_dict(self._faulty_cluster()))
        tf = restored.transient_faults
        assert tf.config_for("m00", "m02").drop_prob == 0.9
        # non-overridden pairs fall back to the default
        assert tf.config_for("m00", "m01").drop_prob == 0.3

    def test_json_round_trip_with_faults(self):
        from repro.cluster.serialize import cluster_from_json, cluster_to_json

        restored = cluster_from_json(cluster_to_json(self._faulty_cluster()))
        assert restored.machine("m01").fail_at == 0.25
        assert restored.transient_faults.config_for("m00", "m02").drop_prob == 0.9

    def test_restored_cluster_reproduces_the_campaign(self):
        """The whole point of serializing a fault schedule: the restored
        cluster drives a bitwise-identical faulty run."""
        from repro.cluster import (
            TransientFaultConfig,
            TransientLinkFaults,
            attach_transient_faults,
        )
        from repro.mpi import FTConfig, run_mpi

        def pingpong(env):
            peer = 1 - env.rank
            for i in range(12):
                if env.rank == 0:
                    env.comm_world.send(i, peer, tag=i)
                    env.comm_world.recv(peer, tag=i)
                else:
                    env.comm_world.send(env.comm_world.recv(peer, tag=i),
                                        peer, tag=i)
            return env.wtime()

        original = uniform_network([100.0, 100.0])
        attach_transient_faults(original, TransientLinkFaults(
            TransientFaultConfig(drop_prob=0.4), seed=9))
        restored = cluster_from_dict(cluster_to_dict(original))
        ft = FTConfig(max_retries=16, retry_timeout=1e-3)
        a = run_mpi(pingpong, original, timeout=20, ft=ft)
        b = run_mpi(pingpong, restored, timeout=20, ft=ft)
        assert a.results == b.results
        assert a.makespan == b.makespan

    def test_no_transient_block_when_absent(self):
        blob = cluster_to_dict(uniform_network([10.0, 20.0]))
        assert "transient_faults" not in blob

    def test_load_model_with_faults_round_trip(self):
        """Load models and fault blobs coexist in one cluster file."""
        from repro.cluster import StepLoad

        c = self._faulty_cluster()
        c.machines[0].load = StepLoad([(0.0, 0.5), (2.0, 0.25)])
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.machine(0).load.share_at(1.0) == 0.5
        assert restored.machine(0).load.share_at(3.0) == 0.25
        assert restored.machine("m01").fail_at == 0.25


class TestTopologyRoundTrip:
    """Topology blocks in cluster blobs: round-trip + back-compat."""

    def test_topology_round_trips(self):
        from repro.cluster import two_site_network

        original = two_site_network()
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.topology is not None
        assert restored.topology.leaf_names() == original.topology.leaf_names()
        assert restored.topology.depth == original.topology.depth
        for a, b in [(0, 1), (0, 4), (3, 7)]:
            assert restored.transfer_time(a, b, 1 << 20) == pytest.approx(
                original.transfer_time(a, b, 1 << 20)
            )
            assert restored.machine_distance(a, b) == original.machine_distance(a, b)

    def test_three_level_json_round_trip(self):
        from repro.cluster import clusters_of_clusters

        original = clusters_of_clusters()
        restored = cluster_from_json(cluster_to_json(original))
        for a in range(original.size):
            for b in range(original.size):
                assert restored.transfer_time(a, b, 4096) == pytest.approx(
                    original.transfer_time(a, b, 4096)
                )

    def test_double_round_trip_is_stable(self):
        """Topology-derived links must not leak into the explicit link
        list: serializing a restored cluster gives the same blob."""
        from repro.cluster import two_site_network

        original = two_site_network()
        # Exercise the lazy topology-link cache before serializing.
        original.transfer_time(0, 5, 1000)
        blob1 = cluster_to_dict(original)
        blob2 = cluster_to_dict(cluster_from_dict(blob1))
        assert blob1 == blob2
        assert blob1["links"] == []  # nothing explicit was configured

    def test_absent_topology_stays_flat_mesh(self):
        """Back-compat: blobs without a topology key build flat clusters."""
        blob = cluster_to_dict(paper_network())
        assert "topology" not in blob
        restored = cluster_from_dict(blob)
        assert restored.topology is None
        assert restored.machine_distance(0, 5) == 1

    def test_explicit_links_survive_alongside_topology(self):
        from repro.cluster import FAST_INTERCONNECT, Link, two_site_network

        original = two_site_network()
        original.set_link(0, 1, Link([FAST_INTERCONNECT]), symmetric=True)
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.link(0, 1).protocols[0].name == "fast"
        assert restored.link(2, 3).protocols[0].name == "tcp-1gbit"
