"""The heterogeneous generalized-block distribution [6]."""

import numpy as np
import pytest

from repro.apps.matmul.distribution import (
    BlockDistribution,
    heights_tensor,
    heterogeneous_distribution,
    homogeneous_distribution,
    partition_generalized_block,
    proportional_partition,
)
from repro.util.errors import ReproError


class TestProportionalPartition:
    def test_sums_to_total(self):
        parts = proportional_partition(10, np.array([1.0, 2.0, 3.0]))
        assert parts.sum() == 10

    def test_proportionality(self):
        parts = proportional_partition(60, np.array([1.0, 2.0, 3.0]))
        assert parts.tolist() == [10, 20, 30]

    def test_minimum_respected(self):
        parts = proportional_partition(5, np.array([1000.0, 1.0, 1.0]))
        assert (parts >= 1).all()
        assert parts.sum() == 5

    def test_total_too_small(self):
        with pytest.raises(ReproError):
            proportional_partition(2, np.array([1.0, 1.0, 1.0]))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ReproError):
            proportional_partition(5, np.array([1.0, 0.0]))

    def test_monotone_in_weights(self):
        parts = proportional_partition(20, np.array([1.0, 5.0, 10.0]))
        assert parts[0] <= parts[1] <= parts[2]


class TestPartitionGeneralizedBlock:
    def test_paper_two_stage_balancing(self):
        speeds = np.array([[4.0, 1.0], [4.0, 1.0]])
        w, heights = partition_generalized_block(10, speeds)
        # columns sums 8 vs 2 -> widths 8 and 2
        assert w.tolist() == [8, 2]
        # within each column speeds equal -> heights 5/5
        assert heights[:, 0].tolist() == [5, 5]

    def test_heights_sum_to_l_per_column(self):
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1, 100, (3, 3))
        w, heights = partition_generalized_block(12, speeds)
        assert w.sum() == 12
        assert (heights.sum(axis=0) == 12).all()

    def test_l_less_than_m_rejected(self):
        with pytest.raises(ReproError):
            partition_generalized_block(2, np.ones((3, 3)))

    def test_nonsquare_rejected(self):
        with pytest.raises(ReproError):
            partition_generalized_block(5, np.ones((2, 3)))


class TestHeightsTensor:
    def test_own_height_on_diagonal(self):
        heights = np.array([[2, 3], [4, 3]])
        h4 = heights_tensor(heights)
        for i in range(2):
            for j in range(2):
                assert h4[i, j, i, j] == heights[i, j]

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        speeds = rng.uniform(1, 10, (3, 3))
        _, heights = partition_generalized_block(9, speeds)
        h4 = heights_tensor(heights)
        assert (h4 == h4.transpose(2, 3, 0, 1)).all()

    def test_same_column_disjoint_rows(self):
        heights = np.array([[2, 1], [4, 5]])
        h4 = heights_tensor(heights)
        # Different row slices in the same column never overlap.
        assert h4[0, 0, 1, 0] == 0
        assert h4[0, 1, 1, 1] == 0

    def test_overlap_totals(self):
        """Summing overlaps of R_IJ with all rectangles of another column
        recovers R_IJ's own height (partition completeness)."""
        rng = np.random.default_rng(2)
        speeds = rng.uniform(1, 10, (3, 3))
        _, heights = partition_generalized_block(12, speeds)
        h4 = heights_tensor(heights)
        for i in range(3):
            for j in range(3):
                for other in range(3):
                    assert h4[i, j, :, other].sum() == heights[i, j]


class TestBlockDistribution:
    def test_homogeneous_is_block_cyclic(self):
        dist = homogeneous_distribution(6, 2)
        # owner of (i, j) = (i % 2, j % 2)
        for i in range(6):
            for j in range(6):
                assert dist.owner(i, j) == (i % 2, j % 2)

    def test_blocks_partition_matrix(self):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(8, 4, speeds)
        seen = set()
        for g in range(4):
            blocks = dist.blocks_of(g)
            assert len(blocks) == dist.area(g)
            for b in blocks:
                assert b not in seen
                seen.add(b)
        assert len(seen) == 64

    def test_owner_rank_consistent_with_blocks_of(self):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(8, 4, speeds)
        for g in range(4):
            for (i, j) in dist.blocks_of(g):
                assert dist.owner_rank(i, j) == g

    def test_areas_track_speeds(self):
        speeds = np.array([[10.0, 1.0], [10.0, 1.0]])
        dist = heterogeneous_distribution(12, 12, speeds)
        fast = dist.area(0)   # (0,0): speed 10
        slow = dist.area(1)   # (0,1): speed 1
        assert fast > 3 * slow

    def test_n_not_multiple_of_l_rejected(self):
        with pytest.raises(ReproError):
            BlockDistribution(n=7, l=2, w=(1, 1), heights_matrix=((1, 1), (1, 1)))

    def test_h4_matches_heights_tensor(self):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(8, 4, speeds)
        assert (dist.h4() == heights_tensor(dist.heights)).all()

    def test_rows_and_cols_owned(self):
        dist = homogeneous_distribution(4, 2)
        assert dist.rows_owned_in_column(0, 0) == [0]
        assert dist.rows_owned_in_column(1, 0) == [1]
        assert dist.cols_owned(1) == [1]
