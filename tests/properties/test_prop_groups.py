"""Property-based tests of the MPI group algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.group import IDENT, Group
from repro.mpi.status import UNDEFINED

ranks = st.lists(st.integers(0, 30), unique=True, max_size=10)


def groups(draw_from=ranks):
    return draw_from.map(Group)


class TestAlgebraLaws:
    @given(groups(), groups())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert set(a) <= set(u)
        assert set(b) <= set(u)
        assert set(u) == set(a) | set(b)

    @given(groups(), groups())
    def test_intersection_is_set_intersection(self, a, b):
        assert set(a.intersection(b)) == set(a) & set(b)

    @given(groups(), groups())
    def test_difference_is_set_difference(self, a, b):
        assert set(a.difference(b)) == set(a) - set(b)

    @given(groups())
    def test_union_idempotent(self, a):
        assert a.union(a).compare(a) == IDENT

    @given(groups(), groups())
    def test_union_order_stability(self, a, b):
        """Union preserves the order of the first group as a prefix."""
        u = a.union(b)
        assert u.world_ranks[: a.size] == a.world_ranks

    @given(groups(), groups(), groups())
    def test_intersection_associative_on_sets(self, a, b, c):
        left = a.intersection(b).intersection(c)
        right = a.intersection(b.intersection(c))
        assert set(left) == set(right)


class TestRankMaps:
    @given(groups())
    def test_rank_of_world_rank_roundtrip(self, g):
        for gr in range(g.size):
            assert g.rank_of(g.world_rank(gr)) == gr

    @given(groups(), groups())
    def test_translate_consistency(self, a, b):
        translated = a.translate_ranks(list(range(a.size)), b)
        for gr, tr in enumerate(translated):
            wr = a.world_rank(gr)
            if wr in b:
                assert b.world_rank(tr) == wr
            else:
                assert tr == UNDEFINED


class TestInclExclDuality:
    @given(ranks)
    def test_incl_of_all_is_identity(self, rs):
        g = Group(rs)
        assert g.incl(list(range(g.size))).compare(g) == IDENT

    @given(ranks, st.data())
    def test_incl_excl_partition(self, rs, data):
        g = Group(rs)
        if g.size == 0:
            return
        chosen = data.draw(
            st.lists(st.integers(0, g.size - 1), unique=True)
        )
        inc = g.incl(chosen)
        exc = g.excl(chosen)
        assert set(inc) | set(exc) == set(g)
        assert set(inc) & set(exc) == set()
