"""Property-based differential test: HMPI_Timeof vs the engine.

For randomly drawn pipeline workloads (compute volumes, transfer sizes,
machine speeds), ``HMPI_Timeof``'s prediction must agree with the
virtual time the engine actually measures when the selected group runs
the modelled pattern — within the documented 5% tolerance (the scheme's
resource clocks capture exactly the dependency structure the program
executes).  The invariant must survive degraded mode: after a machine is
marked dead, both the prediction and the execution move to the
surviving subset and still agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_network
from repro.core import ExhaustiveMapper, run_hmpi
from repro.perfmodel import CallableModel

#: Documented agreement bound for mirrored executions (the integration
#: suite uses the same figure for the DSL pipeline).
REL_TOL = 0.05

speeds_st = st.lists(
    st.floats(min_value=25.0, max_value=400.0), min_size=4, max_size=5)
volumes_st = st.lists(
    st.floats(min_value=10.0, max_value=200.0), min_size=3, max_size=3)
# Transfers must carry real volume: a zero-byte link is no dependency in
# the model, while the mirrored program still blocks on its recv.
bytes_st = st.lists(
    st.integers(min_value=10_000, max_value=3_000_000),
    min_size=2, max_size=2)


def pipeline_model(v, b):
    """p-stage pipeline: compute stage i, then pass b[i] bytes to i+1."""
    p = len(v)
    links = np.zeros((p, p))
    for i in range(p - 1):
        links[i, i + 1] = b[i]

    def scheme(visitor):
        for i in range(p):
            visitor.compute(100.0, i)
            if i < p - 1:
                visitor.transfer(100.0, i, i + 1)

    return CallableModel(
        p,
        lambda i: float(v[i]),
        lambda s, d: float(links[s, d]),
        scheme=scheme,
        name="prop-pipeline",
    )


def mirrored_run(cluster, v, b, dead=()):
    """Predict with timeof, then execute the modelled pattern."""
    bound = pipeline_model(v, b)

    def app(hmpi):
        if hmpi.is_host():
            for r in dead:
                hmpi.mark_dead(r)
        predicted = hmpi.timeof(bound) if hmpi.is_host() else None
        gid = hmpi.group_create(bound, mapper=ExhaustiveMapper())
        measured = None
        if gid.is_member:
            comm = gid.comm
            comm.barrier()
            t0 = comm.wtime()
            me = comm.rank
            if me > 0:
                comm.recv(me - 1, tag=0)
            hmpi.compute(v[me])
            if me < comm.size - 1:
                comm.send(None, me + 1, tag=0, nbytes=int(b[me]))
            comm.barrier()
            measured = comm.wtime() - t0
            members = gid.world_ranks
            hmpi.group_free(gid)
        else:
            members = ()
        return (predicted, measured, members)

    res = run_hmpi(app, cluster, timeout=30)
    # ranks marked dead exit with MachineFailure and contribute None
    outcomes = [r for r in res.results if r is not None]
    predicted = res.results[0][0]
    measured = max(m for _, m, _ in outcomes if m is not None)
    members = res.results[0][2]
    return predicted, measured, members


class TestTimeofDifferential:
    @settings(max_examples=12, deadline=None)
    @given(speeds=speeds_st, v=volumes_st, b=bytes_st)
    def test_prediction_matches_execution(self, speeds, v, b):
        cluster = uniform_network(speeds)
        predicted, measured, _ = mirrored_run(cluster, v, b)
        assert measured == pytest.approx(predicted, rel=REL_TOL)

    @settings(max_examples=12, deadline=None)
    @given(speeds=speeds_st, v=volumes_st, b=bytes_st,
           victim=st.integers(min_value=1, max_value=3))
    def test_prediction_matches_execution_degraded(self, speeds, v, b,
                                                   victim):
        """Same invariant with a dead machine: prediction and execution
        both confine themselves to the survivors and still agree."""
        cluster = uniform_network(speeds)
        predicted, measured, members = mirrored_run(
            cluster, v, b, dead=(victim,))
        assert victim not in members
        assert measured == pytest.approx(predicted, rel=REL_TOL)

    def test_killing_the_fast_machines_slows_the_prediction(self):
        """Directional sanity: deaths can only remove options, so the
        degraded prediction is never better than the healthy one."""
        speeds = [100.0, 300.0, 300.0, 50.0, 50.0]
        v, b = [80.0, 80.0, 80.0], [100_000, 100_000]
        healthy, _, _ = mirrored_run(uniform_network(speeds), v, b)
        degraded, _, _ = mirrored_run(uniform_network(speeds), v, b,
                                      dead=(1, 2))
        assert degraded >= healthy - 1e-12
