"""Predicted-schedule export: unrolled communication nets as traces.

The :mod:`repro.perfmodel.net` lowering and the selection engine's
timing DAG know, *before any run*, exactly when every transition of a
model's communication net would fire on a given candidate mapping.  This
module turns that prediction into a regular
:class:`~repro.mpi.tracing.Tracer`, so the whole existing visualisation
pipeline applies unchanged: :func:`repro.util.gantt.render_gantt` for a
terminal chart, :func:`repro.obs.chrometrace.chrome_trace` +
:func:`~repro.obs.chrometrace.write_chrome_trace` for Perfetto.

Event mapping (one lane per **abstract processor**, not world rank):

- a compute transition becomes a ``"compute"`` event on its processor
  from its start (max of CPU and data-ready clocks) to its finish;
- a transfer transition becomes a ``"send"`` on the source (departure →
  CPU-side completion, the sender's modelled engagement) and a
  ``"recv"`` on the destination (link start → arrival, the message in
  flight toward it).

The timestamps replay the engine's longest-path arithmetic event for
event, so the trace's makespan is **bitwise identical** to
``NetEvaluator.evaluate`` / ``Timeof`` for the same mapping.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..core.netmodel import NetworkModel
from ..core.seleng import NetEvaluator
from ..mpi.tracing import TraceEvent, Tracer
from ..perfmodel.model import AbstractBoundModel
from ..perfmodel.net import CommNet, lower_model
from ..util.errors import HMPIError
from .chrometrace import chrome_trace

__all__ = ["schedule_net", "net_chrome_trace"]


def schedule_net(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    machines: Sequence[int],
    net: CommNet | None = None,
) -> Tracer:
    """Predicted firing schedule of the model's net on one mapping.

    Returns a :class:`~repro.mpi.tracing.Tracer` whose events carry the
    net's source lines and volumes (``label`` holds the transition
    label), ready for ``render_gantt``/``chrome_trace``.  ``net`` may be
    passed in when the caller already lowered the model.
    """
    if net is None:
        net = lower_model(model)
    evaluator = NetEvaluator(model, netmodel)
    ct = evaluator.trace
    if len(net.kept) != ct.nevents:
        raise HMPIError(
            f"net/trace mismatch: {len(net.kept)} kept transitions vs "
            f"{ct.nevents} compiled events"
        )
    dur, lat = evaluator._fill_costs(machines)
    dag = evaluator._dag
    single_port = evaluator.single_port

    tracer = Tracer()
    val = [0.0] * ct.nevents
    out = [0.0] * ct.nevents
    for i, (is_transfer, a, b, k) in enumerate(ct.ops):
        ev = net.kept[i]
        if ev.is_transfer != is_transfer or ev.a != a:
            raise HMPIError(f"net/trace mismatch at event {i}")
        cp = dag.cpu_pred[i]
        depart = out[cp] if cp >= 0 else 0.0
        if is_transfer:
            bp = dag.busy_pred[i]
            start = val[bp] if bp >= 0 else 0.0
            if depart > start:
                start = depart
            arrival = start + dur[i]
            val[i] = arrival
            out[i] = arrival if single_port else depart + lat[i]
            nbytes = int(ev.volume)
            tracer.record(TraceEvent(
                rank=a, kind="send", t0=depart, t1=out[i], peer=b,
                nbytes=nbytes, volume=ev.volume, label=ev.label(),
            ))
            tracer.record(TraceEvent(
                rank=b, kind="recv", t0=start, t1=arrival, peer=a,
                nbytes=nbytes, volume=ev.volume, label=ev.label(),
            ))
        else:
            r = 0.0
            for p in dag.ready_preds[i]:
                if val[p] > r:
                    r = val[p]
            start = depart if depart >= r else r
            finish = start + dur[i]
            val[i] = finish
            out[i] = finish
            tracer.record(TraceEvent(
                rank=a, kind="compute", t0=start, t1=finish,
                volume=ev.volume, label=ev.label(),
            ))
    return tracer


def net_chrome_trace(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    machines: Sequence[int],
    net: CommNet | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Chrome-trace document of the predicted net schedule.

    A thin composition of :func:`schedule_net` and the existing
    :func:`~repro.obs.chrometrace.chrome_trace` exporter; lanes are
    abstract processors.  Write it with
    :func:`~repro.obs.chrometrace.write_chrome_trace`.
    """
    if net is None:
        net = lower_model(model)
    meta = {
        "exporter": "repro.obs.netexport",
        "transitions": net.ntransitions,
        "places": net.nplaces,
        "machines": list(machines),
    }
    if metadata:
        meta.update(metadata)
    return chrome_trace(
        tracer=schedule_net(model, netmodel, machines, net=net),
        metadata=meta,
    )
