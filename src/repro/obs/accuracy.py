"""Prediction-accuracy tracking: ``HMPI_Timeof`` vs what actually ran.

The paper's selling point is that the runtime *predicts* execution times
well enough to pick the fastest group.  This module closes the loop at
run time: every selection records its predicted time here (keyed by the
performance model's name), applications report the engine-measured
execution time of the corresponding region, and :meth:`report` reduces
the pairs to per-model error distributions — count, mean/max relative
error, bias direction — that ``repro stats``/``repro trace`` print and
EXPERIMENTS.md tabulates.

Pairing is LIFO per key: a measurement of ``key`` resolves the *most
recent* unresolved prediction of ``key``.  That matches how the drivers
work — a ``Timeof`` sweep prices many parameter choices under the same
model name, then ``HMPI_Group_create`` records the prediction for the
chosen one just before the region runs — so the latest prediction is the
one the measured execution corresponds to.  Older sweep predictions
simply stay unresolved and are reported as such.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["PredictionRecord", "PredictionTracker", "model_key"]


def model_key(model: Any) -> str:
    """Stable report key for a performance model.

    Prefers the model's own ``name``; a PMDL ``BoundModel`` exposes the
    algorithm name through its performance model, so all bindings of one
    algorithm (different block sizes, group sizes) share a key.  Falls
    back to the type name.
    """
    if isinstance(model, str):
        return model
    name = getattr(model, "name", None)
    if isinstance(name, str) and name:
        return name
    pm = getattr(model, "_pm", None)
    name = getattr(pm, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(model).__name__


@dataclass
class PredictionRecord:
    """One prediction, optionally resolved by a measurement."""

    key: str
    predicted: float
    vtime: float
    mapper: str = ""
    measured: float | None = None

    @property
    def resolved(self) -> bool:
        return self.measured is not None

    @property
    def rel_error(self) -> float | None:
        """Signed relative error (predicted - measured) / measured."""
        if self.measured is None or self.measured == 0.0:
            return None
        return (self.predicted - self.measured) / self.measured

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key, "predicted": self.predicted,
            "measured": self.measured, "vtime": self.vtime,
            "mapper": self.mapper, "rel_error": self.rel_error,
        }


class PredictionTracker:
    """Collects predictions and measurements; reduces to error stats."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: list[PredictionRecord] = []
        # key -> indices of still-unresolved predictions; measure() pops
        # the newest (LIFO), see module docstring.
        self._pending: dict[str, list[int]] = {}

    def predict(self, key: str, seconds: float, vtime: float = 0.0,
                mapper: str = "") -> PredictionRecord:
        """Record one predicted execution time for ``key``."""
        rec = PredictionRecord(key=key, predicted=seconds, vtime=vtime,
                               mapper=mapper)
        with self._lock:
            self._pending.setdefault(key, []).append(len(self.records))
            self.records.append(rec)
        return rec

    def measure(self, key: str, seconds: float) -> PredictionRecord | None:
        """Resolve the newest unresolved prediction of ``key``.

        Returns the resolved record, or None when no prediction of that
        key is outstanding (the measurement is then recorded on its own,
        with no predicted value to compare against — visible in the
        report as an unpredicted run rather than silently dropped).
        """
        with self._lock:
            queue = self._pending.get(key)
            if queue:
                rec = self.records[queue.pop()]
                rec.measured = seconds
                return rec
            rec = PredictionRecord(key=key, predicted=float("nan"),
                                   vtime=0.0, measured=seconds)
            self.records.append(rec)
            return None

    # -- reporting ------------------------------------------------------
    def pairs(self, key: str | None = None) -> list[PredictionRecord]:
        """Resolved prediction/measurement pairs (optionally one key)."""
        with self._lock:
            return [r for r in self.records
                    if r.resolved and r.predicted == r.predicted
                    and (key is None or r.key == key)]

    def report(self) -> dict[str, dict[str, Any]]:
        """Per-key error distribution over the resolved pairs."""
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            records = list(self.records)
        keys = sorted({r.key for r in records})
        for key in keys:
            mine = [r for r in records if r.key == key]
            pairs = [r for r in mine
                     if r.resolved and r.predicted == r.predicted]
            errors = [r.rel_error for r in pairs if r.rel_error is not None]
            abs_errors = [abs(e) for e in errors]
            out[key] = {
                "predictions": sum(1 for r in mine
                                   if r.predicted == r.predicted),
                "measured": len(pairs),
                "mean_abs_rel_error": (sum(abs_errors) / len(abs_errors)
                                       if abs_errors else None),
                "max_abs_rel_error": max(abs_errors) if abs_errors else None,
                "mean_rel_error": (sum(errors) / len(errors)
                                   if errors else None),
            }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        with self._lock:
            records = [r.as_dict() for r in self.records]
        return json.dumps({"records": records, "report": self.report()},
                          indent=indent)

    def render(self) -> str:
        """Text table of the per-model report."""
        from ..util.tables import Table

        t = Table("model", "predictions", "measured runs",
                  "mean |rel err|", "max |rel err|", "bias",
                  title="Timeof prediction accuracy")
        for key, row in self.report().items():
            def fmt(x: float | None, signed: bool = False) -> str:
                if x is None:
                    return "-"
                return f"{x:+.2%}" if signed else f"{x:.2%}"
            t.add(key, row["predictions"], row["measured"],
                  fmt(row["mean_abs_rel_error"]),
                  fmt(row["max_abs_rel_error"]),
                  fmt(row["mean_rel_error"], signed=True))
        return t.render()

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)
