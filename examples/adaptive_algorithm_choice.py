#!/usr/bin/env python3
"""Runtime algorithm selection with HMPI_Timeof.

The paper: "This function allows the application programmers to write such
a parallel application that can follow different parallel algorithms to
solve the same problem, making choice at runtime depending on the
particular executing network and its actual performance."

Here a reduction can run either as a star (everyone sends to the root, root
combines everything) or as a balanced binary tree (combines spread over the
group).  Which wins depends on the network: with a fast root and slow links
the tree's extra hops lose; with a slow root the star's serialized combine
loses.  The program models both, asks HMPI_Timeof, and runs the winner.

Run:  python examples/adaptive_algorithm_choice.py
"""

from repro.cluster import uniform_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel

P = 7                    # group size
ITEM_BYTES = 4 << 20     # 4 MiB partial results
COMBINE_UNITS = 30.0     # work to combine one partial result


def star_model():
    """All partials to the root; root performs p-1 combines serially."""

    def scheme(v):
        for src in range(1, P):
            v.transfer(100.0, src, 0)
        v.compute(100.0, 0)

    return CallableModel(
        nproc=P,
        node_volume=lambda i: COMBINE_UNITS * (P - 1) if i == 0 else 0.0,
        link_volume=lambda s, d: float(ITEM_BYTES) if d == 0 and s != 0 else 0.0,
        scheme=scheme,
        name="star-reduce",
    )


def tree_model():
    """Binomial combine: lg(p) rounds, work spread over the group."""
    rounds = []
    mask = 1
    while mask < P:
        level = []
        for i in range(P):
            if i & mask == 0 and i | mask < P and i % (mask * 2) == 0:
                level.append((i | mask, i))  # child -> parent
        rounds.append(level)
        mask *= 2

    def scheme(v):
        for level in rounds:
            for src, dst in level:
                v.transfer(100.0, src, dst)
            for _, dst in level:
                v.compute(100.0 / sum(1 for lv in rounds for s, d in lv if d == dst), dst)

    combines = {d: 0 for d in range(P)}
    for level in rounds:
        for _, d in level:
            combines[d] += 1

    def node_volume(i):
        return COMBINE_UNITS * combines[i]

    def link_volume(s, d):
        return float(ITEM_BYTES) if any((s, d) in lv for lv in rounds) else 0.0

    return CallableModel(P, node_volume, link_volume, scheme=scheme,
                         name="tree-reduce")


def app(hmpi):
    star, tree = star_model(), tree_model()
    if hmpi.is_host():
        t_star = hmpi.timeof(star)
        t_tree = hmpi.timeof(tree)
        choice = ("star", t_star) if t_star <= t_tree else ("tree", t_tree)
        decision = (choice[0], t_star, t_tree)
    else:
        decision = None
    name, t_star, t_tree = hmpi.comm_world.bcast(decision, root=0)

    model = star_model() if name == "star" else tree_model()
    gid = hmpi.group_create(model)
    if gid.is_member:
        gid.comm.barrier()
        hmpi.group_free(gid)
    return (name, t_star, t_tree)


def main():
    scenarios = {
        # Fast host: the star's serial combine is cheap on the 800-speed root.
        "fast root":  [800.0] + [60.0] * 8,
        # Slow host: spreading combines over the tree wins.
        "slow root":  [40.0] + [300.0] * 8,
    }
    for label, speeds in scenarios.items():
        res = run_hmpi(app, uniform_network(speeds))
        name, t_star, t_tree = res.results[0]
        print(f"{label:10s}: Timeof(star) = {t_star:7.4f}s, "
              f"Timeof(tree) = {t_tree:7.4f}s  ->  chose {name.upper()}")


if __name__ == "__main__":
    main()
