"""Compiled selection engine — batched candidate-mapping evaluation.

``HMPI_Group_create`` and ``HMPI_Timeof`` spend their time pricing
candidate mappings: every mapper's search loop asks "how long would the
algorithm take if abstract processor *i* ran on machine ``machines[i]``?"
thousands of times per selection.  The straightforward answer — replay the
model's scheme through :class:`repro.core.estimator.TimelineVisitor` —
re-does per-call work that does not depend on the candidate at all: walking
the scheme, multiplying fractions into volumes, and resolving link costs.

This module compiles that invariant work out of the hot path:

1. :func:`compile_trace` turns the model's recorded action stream into flat
   event arrays (kind, endpoints, precomputed per-event volumes) exactly
   once per model, with zero-byte and self transfers dropped at compile
   time (they cannot move any clock);
2. :class:`TraceEvaluator` prices one candidate with a tight
   array-indexed replay whose link costs come from a table keyed by
   **machine pairs** — shared between every candidate that routes a given
   abstract pair over the same physical link;
3. :meth:`TraceEvaluator.evaluate_batch` amortises all of that setup
   across a whole neighbourhood (RefineMapper's swaps/moves,
   ExhaustiveMapper's permutation stream) and, for large batches, replays
   every candidate simultaneously with numpy vectors.

:class:`repro.core.estimator.TimelineVisitor` remains the semantic oracle:
the engine reproduces its arithmetic operation-for-operation (including
the byte rounding inside :meth:`Link.transfer_time` and the 1-byte
latency charge of non-single-port sends), and the property suite pins the
two together.

:class:`SelectionStats` carries the runtime's selection counters —
cache hits/misses, engine evaluations, batches, and the exhaustive
mapper's symmetry-pruning count — for benchmarks and regression tests.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import asdict, dataclass

import numpy as np

from ..perfmodel.model import AbstractBoundModel
from ..util.errors import HMPIError, OptionError
from ..util.options import check_choice
from .estimator import TimelineVisitor, _effective_speeds, record_trace
from .netmodel import NetworkModel

__all__ = [
    "SelectionStats",
    "CompiledTrace",
    "compile_trace",
    "TraceEvaluator",
    "NetEvaluator",
    "InterpEvaluator",
    "TimingDag",
    "compile_timing_dag",
    "make_evaluator",
    "TIMEOF_BACKENDS",
    "evaluate_mapping",
    "evaluate_mappings",
    "EvaluatorPool",
]

#: Candidate-evaluation backends selectable at runtime entry points via
#: ``timeof_backend=``: ``"trace"`` (default) replays the compiled event
#: arrays, ``"net"`` runs longest-path over the precomputed timing DAG of
#: the unrolled communication net, ``"interp"`` re-interprets the scheme
#: through :class:`repro.core.estimator.TimelineVisitor` per candidate
#: (the semantic oracle — slow, for differential checks).
TIMEOF_BACKENDS = ("trace", "net", "interp")

#: Batches at least this large take the numpy-vectorised replay path;
#: smaller ones loop the scalar replay (lower constant overhead).  The
#: crossover was measured on the paper-network EM3D selection problem.
BATCH_VECTOR_THRESHOLD = 96


@dataclass
class SelectionStats:
    """Counters describing where selection effort went.

    One instance lives on :class:`repro.core.runtime.HMPIRuntimeState`
    (``state.selection_stats``) and is threaded through every selection
    the runtime performs.

    Attributes
    ----------
    cache_hits / cache_misses:
        Selection-cache outcomes of ``timeof``/``group_create`` calls.
    evaluations:
        Candidate mappings priced by the engine.
    batches:
        ``evaluate_batch`` calls (each amortises setup over many
        evaluations).
    symmetry_skips:
        Permutations the exhaustive mapper pruned as speed-symmetric
        duplicates.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    evaluations: int = 0
    batches: int = 0
    symmetry_skips: int = 0

    def reset(self) -> None:
        self.cache_hits = self.cache_misses = 0
        self.evaluations = self.batches = self.symmetry_skips = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


class CompiledTrace:
    """A model's scheme compiled to flat event arrays.

    Events appear in scheme order.  Computes keep their per-event volume
    in benchmark units; transfers keep their per-event byte counts grouped
    by distinct abstract (src, dst) pair so per-pair link costs can be
    resolved once per physical link and broadcast over all of a pair's
    events.  Zero-byte and self transfers are dropped (no clock moves);
    zero-volume computes are kept because they still merge a processor's
    CPU and data-ready clocks.
    """

    __slots__ = (
        "nproc", "nevents", "ops",
        "comp_idx", "comp_proc", "comp_vol", "comp_events",
        "pair_src", "pair_dst", "pair_ends",
        "pair_event_idx", "pair_event_pos",
        "pair_vols", "pair_vols_rounded", "npairs",
    )

    def __init__(self, model: AbstractBoundModel):
        trace = record_trace(model)
        nv = model.node_volumes()
        lv = model.link_volumes()
        self.nproc = model.nproc

        ops: list[tuple[bool, int, int, int]] = []
        comp_idx: list[int] = []
        comp_proc: list[int] = []
        comp_vol: list[float] = []
        pair_index: dict[tuple[int, int], int] = {}
        pair_event_idx: list[list[int]] = []
        pair_vols: list[list[float]] = []

        for is_transfer, fraction, a, b in trace:
            if not is_transfer:
                volume = fraction * float(nv[a])
                if volume < 0:
                    raise HMPIError(f"negative compute volume on processor {a}")
                comp_idx.append(len(ops))
                comp_proc.append(a)
                comp_vol.append(volume)
                ops.append((False, a, 0, 0))
                continue
            nbytes = fraction * float(lv[a, b])
            if nbytes < 0:
                raise HMPIError(f"negative transfer volume {a}->{b}")
            if nbytes == 0.0 or a == b:
                continue
            k = pair_index.setdefault((a, b), len(pair_index))
            if k == len(pair_event_idx):
                pair_event_idx.append([])
                pair_vols.append([])
            pair_event_idx[k].append(len(ops))
            pair_vols[k].append(nbytes)
            ops.append((True, a, b, k))

        self.ops = ops
        self.nevents = len(ops)
        self.comp_idx = np.asarray(comp_idx, dtype=np.intp)
        self.comp_proc = np.asarray(comp_proc, dtype=np.intp)
        self.comp_vol = np.asarray(comp_vol, dtype=float)
        # Python-list twin of the compute columns for the scalar replay.
        self.comp_events = list(zip(comp_idx, comp_proc, comp_vol))
        pairs = sorted(pair_index, key=pair_index.get)
        self.pair_src = np.asarray([p[0] for p in pairs], dtype=np.intp)
        self.pair_dst = np.asarray([p[1] for p in pairs], dtype=np.intp)
        self.pair_ends = tuple(pairs)
        self.pair_event_idx = tuple(
            np.asarray(idx, dtype=np.intp) for idx in pair_event_idx
        )
        self.pair_event_pos = tuple(tuple(idx) for idx in pair_event_idx)
        self.pair_vols = tuple(np.asarray(v, dtype=float) for v in pair_vols)
        # Byte counts rounded once, the way Link.transfer_time rounds them
        # (np.rint == round-half-to-even == builtin round on floats).
        self.pair_vols_rounded = tuple(
            np.rint(v).tolist() for v in self.pair_vols
        )
        self.npairs = len(pairs)


def compile_trace(model: AbstractBoundModel) -> CompiledTrace:
    """Compile (and cache on the model) the model's scheme trace."""
    cached = getattr(model, "_repro_compiled_trace", None)
    if cached is None:
        cached = CompiledTrace(model)
        try:
            model._repro_compiled_trace = cached  # type: ignore[attr-defined]
        except AttributeError:  # models with __slots__ just skip the cache
            pass
    return cached


class TraceEvaluator:
    """Prices candidate mappings of one model against one network model.

    Holds the compiled trace plus a link-cost table keyed by
    ``(pair, machine_src, machine_dst)``, so candidates that route an
    abstract pair over the same physical link share the cost computation.
    The table is built through ``cluster.link``, so when the cluster has a
    :class:`~repro.cluster.topology.Topology` each entry carries the
    hierarchy-derived protocols of the pair's deepest common ancestor —
    selection prices candidate mappings with the same site/subnet/switch
    structure the execution engine charges.  Create one per selection
    (the mappers do); the table assumes link parameters and machine
    speeds are stable for the evaluator's lifetime.
    """

    def __init__(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        stats: SelectionStats | None = None,
    ):
        self.trace = compile_trace(model)
        self.netmodel = netmodel
        self.cluster = netmodel.cluster
        self.single_port = bool(self.cluster.single_port)
        self.stats = stats
        # (pair k, machine_src, machine_dst) ->
        #     (cpu latency, per-event seconds array, same seconds as a list)
        self._pair_cache: dict[
            tuple[int, int, int], tuple[float, np.ndarray, list[float]]
        ] = {}
        # (machine_src, machine_dst) -> (cpu latency, [(latency, bandwidth)])
        self._link_cache: dict[
            tuple[int, int], tuple[float, list[tuple[float, float]]]
        ] = {}

    # ------------------------------------------------------------------
    # link-cost table
    # ------------------------------------------------------------------
    def _link_params(
        self, mu: int, mv: int
    ) -> tuple[float, list[tuple[float, float]]]:
        hit = self._link_cache.get((mu, mv))
        if hit is None:
            link = self.cluster.link(mu, mv)
            if link.pinned is not None or len(link.protocols) == 1:
                proto = link.protocol_for(1)
                params = [(proto.latency, proto.bandwidth)]
            else:
                params = [(p.latency, p.bandwidth) for p in link.protocols]
            # Non-single-port sends charge the CPU the pair's per-message
            # latency, which the oracle resolves for a 1-byte probe.
            hit = (link.effective_latency(), params)
            self._link_cache[(mu, mv)] = hit
        return hit

    def _pair_cost(
        self, k: int, mu: int, mv: int
    ) -> tuple[float, np.ndarray, list[float]]:
        key = (k, int(mu), int(mv))
        hit = self._pair_cache.get(key)
        if hit is None:
            cpu_lat, params = self._link_params(key[1], key[2])
            # Volumes were rounded at compile time, matching the rounding
            # inside Link.transfer_time; the Hockney formula itself is
            # plain float arithmetic (bit-identical to the oracle's).
            rounded = self.trace.pair_vols_rounded[k]
            if len(params) == 1:
                lat, bw = params[0]
                sec_list = [lat + v / bw for v in rounded]
            else:
                sec_list = [
                    min(lat + v / bw for lat, bw in params) for v in rounded
                ]
            hit = (cpu_lat, np.asarray(sec_list), sec_list)
            self._pair_cache[key] = hit
        return hit

    # ------------------------------------------------------------------
    # single-candidate path
    # ------------------------------------------------------------------
    def evaluate(self, machines: Sequence[int]) -> float:
        """Predicted makespan of one candidate mapping."""
        if self.stats is not None:
            self.stats.evaluations += 1
        return self._evaluate_one(machines)

    def _evaluate_one(self, machines: Sequence[int]) -> float:
        return self._replay_scalar(*self._fill_costs(machines))

    def _fill_costs(
        self, machines: Sequence[int]
    ) -> tuple[list[float], list[float]]:
        """Per-event (duration, cpu-latency) arrays for one candidate."""
        ct = self.trace
        if len(machines) != ct.nproc:
            raise HMPIError(
                f"mapping length {len(machines)} != model nproc {ct.nproc}"
            )
        # Plain-list fill: for the trace sizes selection sees (tens to a few
        # hundred events) this beats numpy fancy indexing by a wide margin.
        dur = [0.0] * ct.nevents
        lat = [0.0] * ct.nevents
        if ct.comp_events:
            counts = Counter(machines)
            speed_of = self.netmodel.speed_of_machine
            eff = [speed_of(m) / counts[m] for m in machines]
            for pos, a, vol in ct.comp_events:
                dur[pos] = vol / eff[a]
        for k, (ps, pd) in enumerate(ct.pair_ends):
            cpu_lat, _, sec_list = self._pair_cost(k, machines[ps], machines[pd])
            for pos, s in zip(ct.pair_event_pos[k], sec_list):
                dur[pos] = s
                lat[pos] = cpu_lat
        return dur, lat

    def _replay_scalar(self, dur: list[float], lat: list[float]) -> float:
        ct = self.trace
        n = ct.nproc
        cpu = [0.0] * n
        ready = [0.0] * n
        busy = [0.0] * ct.npairs
        single_port = self.single_port
        for i, (is_transfer, a, b, k) in enumerate(ct.ops):
            if is_transfer:
                depart = cpu[a]
                start = busy[k]
                if depart > start:
                    start = depart
                arrival = start + dur[i]
                busy[k] = arrival
                cpu[a] = arrival if single_port else depart + lat[i]
                if arrival > ready[b]:
                    ready[b] = arrival
            else:
                c = cpu[a]
                r = ready[a]
                finish = (c if c >= r else r) + dur[i]
                cpu[a] = finish
                ready[a] = finish
        best = 0.0
        for c, r in zip(cpu, ready):
            if c > best:
                best = c
            if r > best:
                best = r
        return best

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def evaluate_batch(self, mappings: Sequence[Sequence[int]]) -> np.ndarray:
        """Predicted makespans of many candidate mappings at once.

        Setup (effective speeds, link costs) is shared across the batch;
        batches of :data:`BATCH_VECTOR_THRESHOLD` or more replay all
        candidates simultaneously with numpy vectors.
        """
        nmappings = len(mappings)
        if self.stats is not None:
            self.stats.evaluations += nmappings
            self.stats.batches += 1
        if nmappings == 0:
            return np.empty(0)
        ct = self.trace
        if nmappings < BATCH_VECTOR_THRESHOLD or ct.nevents == 0:
            return np.asarray([self._evaluate_one(m) for m in mappings])
        return self._evaluate_vectorised(mappings)

    def _evaluate_vectorised(self, mappings: Sequence[Sequence[int]]) -> np.ndarray:
        ct = self.trace
        n = ct.nproc
        mapmat = np.asarray(mappings, dtype=np.intp)
        if mapmat.ndim != 2 or mapmat.shape[1] != n:
            raise HMPIError(
                f"candidate mappings must all have length {n}, "
                f"got shape {mapmat.shape}"
            )
        nbatch = mapmat.shape[0]
        rows = np.arange(nbatch)[:, None]

        dur = np.empty((nbatch, ct.nevents))
        lat_pair = np.zeros((nbatch, max(ct.npairs, 1)))

        if len(ct.comp_idx):
            nmach = self.cluster.size
            speeds = self.netmodel.speeds()
            counts = np.zeros((nbatch, nmach))
            np.add.at(counts, (rows, mapmat), 1.0)
            # Same arithmetic as the oracle: speed / co-location count,
            # then volume / effective speed.
            eff = speeds[mapmat] / counts[rows, mapmat]
            dur[:, ct.comp_idx] = ct.comp_vol[None, :] / eff[:, ct.comp_proc]

        for k in range(ct.npairs):
            mu = mapmat[:, ct.pair_src[k]]
            mv = mapmat[:, ct.pair_dst[k]]
            keys = mu * self.cluster.size + mv
            uniq, inverse = np.unique(keys, return_inverse=True)
            sec_rows = np.empty((len(uniq), len(ct.pair_vols[k])))
            lat_rows = np.empty(len(uniq))
            for u, key in enumerate(uniq):
                cpu_lat, seconds, _ = self._pair_cost(
                    k, int(key) // self.cluster.size, int(key) % self.cluster.size
                )
                sec_rows[u] = seconds
                lat_rows[u] = cpu_lat
            dur[:, ct.pair_event_idx[k]] = sec_rows[inverse]
            lat_pair[:, k] = lat_rows[inverse]

        cpu = np.zeros((nbatch, n))
        ready = np.zeros((nbatch, n))
        busy = np.zeros((nbatch, max(ct.npairs, 1)))
        single_port = self.single_port
        for i, (is_transfer, a, b, k) in enumerate(ct.ops):
            d = dur[:, i]
            if is_transfer:
                depart = cpu[:, a]
                start = np.maximum(depart, busy[:, k])
                arrival = start + d
                busy[:, k] = arrival
                if single_port:
                    cpu[:, a] = arrival
                else:
                    cpu[:, a] = depart + lat_pair[:, k]
                np.maximum(ready[:, b], arrival, out=ready[:, b])
            else:
                finish = np.maximum(cpu[:, a], ready[:, a]) + d
                cpu[:, a] = finish
                ready[:, a] = finish
        return np.max(np.maximum(cpu, ready), axis=1)


class TimingDag:
    """Per-event dependency structure of a compiled trace.

    The trace's clock semantics make every event's timestamps a function
    of a *fixed* set of earlier events — which events is a property of
    the (model, shape) alone, not of the candidate mapping:

    - every event departs from the value its processor's **last CPU
      writer** left (``cpu_pred``; -1 means the zero clock);
    - a transfer also waits for the **previous transfer on its abstract
      pair** (``busy_pred``);
    - a compute also waits for its processor's **data-ready** value: the
      previous compute on the processor plus every arrival recorded
      since it (``ready_preds``).

    Because the trace is emitted in interpretation order, each
    predecessor index is strictly smaller than its event's — the event
    arrays *are* a topological order of the unrolled communication net
    (see :mod:`repro.perfmodel.net`), so one forward pass evaluates the
    whole DAG.  Built once per (model, shape) and cached on the model.
    """

    __slots__ = ("cpu_pred", "busy_pred", "ready_preds")

    def __init__(self, ct: CompiledTrace):
        nproc, npairs = ct.nproc, ct.npairs
        last_cpu = [-1] * nproc   # last event that wrote the proc's cpu clock
        last_pair = [-1] * npairs
        last_comp = [-1] * nproc
        pending: list[list[int]] = [[] for _ in range(nproc)]
        cpu_pred: list[int] = []
        busy_pred: list[int] = []
        ready_preds: list[tuple[int, ...] | None] = []
        for i, (is_transfer, a, b, k) in enumerate(ct.ops):
            cpu_pred.append(last_cpu[a])
            if is_transfer:
                busy_pred.append(last_pair[k])
                ready_preds.append(None)
                last_pair[k] = i
                pending[b].append(i)
            else:
                busy_pred.append(-1)
                preds = [last_comp[a]] if last_comp[a] >= 0 else []
                preds += pending[a]
                pending[a].clear()
                ready_preds.append(tuple(preds))
                last_comp[a] = i
            last_cpu[a] = i
        self.cpu_pred = cpu_pred
        self.busy_pred = busy_pred
        self.ready_preds = ready_preds


def compile_timing_dag(model: AbstractBoundModel, ct: CompiledTrace) -> TimingDag:
    """Build (and cache on the model) the trace's timing DAG."""
    cached = getattr(model, "_repro_timing_dag", None)
    if cached is None:
        cached = TimingDag(ct)
        try:
            model._repro_timing_dag = cached  # type: ignore[attr-defined]
        except AttributeError:  # models with __slots__ just skip the cache
            pass
    return cached


class NetEvaluator(TraceEvaluator):
    """Longest-path candidate pricing over the precomputed timing DAG.

    The ``"net"`` Timeof backend: instead of replaying resource clocks,
    each event's time is computed directly from its DAG predecessors in
    one topological pass, and the makespan is the longest path (every
    clock is monotone, so the maximum over all event values equals the
    maximum over the final clocks).  The arithmetic reproduces
    :meth:`TraceEvaluator._replay_scalar` operation-for-operation, so
    predictions are **bitwise identical** to the trace backend and the
    :class:`~repro.core.estimator.TimelineVisitor` oracle; what changes
    is the shape of the per-candidate work — a single pre-resolved
    dependency sweep, with the DAG construction amortised across every
    candidate and selection for the (model, shape).

    Batches always take the scalar DAG pass (no vectorised fallback):
    the point of the backend is that per-candidate evaluation *is* the
    precomputed structure.
    """

    def __init__(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        stats: SelectionStats | None = None,
    ):
        super().__init__(model, netmodel, stats)
        self._dag = compile_timing_dag(model, self.trace)

    def _evaluate_one(self, machines: Sequence[int]) -> float:
        return self._longest_path(*self._fill_costs(machines))

    def _longest_path(self, dur: list[float], lat: list[float]) -> float:
        ct = self.trace
        dag = self._dag
        cpu_pred, busy_pred, ready_preds = (
            dag.cpu_pred, dag.busy_pred, dag.ready_preds,
        )
        single_port = self.single_port
        val = [0.0] * ct.nevents   # arrival (transfer) / finish (compute)
        out = [0.0] * ct.nevents   # cpu-clock value the event leaves behind
        best = 0.0
        for i, (is_transfer, a, b, k) in enumerate(ct.ops):
            cp = cpu_pred[i]
            depart = out[cp] if cp >= 0 else 0.0
            if is_transfer:
                bp = busy_pred[i]
                start = val[bp] if bp >= 0 else 0.0
                if depart > start:
                    start = depart
                arrival = start + dur[i]
                val[i] = arrival
                o = arrival if single_port else depart + lat[i]
                out[i] = o
                if arrival > best:
                    best = arrival
                if o > best:
                    best = o
            else:
                r = 0.0
                for p in ready_preds[i]:
                    v = val[p]
                    if v > r:
                        r = v
                finish = (depart if depart >= r else r) + dur[i]
                val[i] = finish
                out[i] = finish
                if finish > best:
                    best = finish
        return best

    def evaluate_batch(self, mappings: Sequence[Sequence[int]]) -> np.ndarray:
        nmappings = len(mappings)
        if self.stats is not None:
            self.stats.evaluations += nmappings
            self.stats.batches += 1
        if nmappings == 0:
            return np.empty(0)
        return np.asarray([self._evaluate_one(m) for m in mappings])


class InterpEvaluator:
    """Per-candidate scheme re-interpretation (the ``"interp"`` backend).

    Walks the model's scheme through the
    :class:`~repro.core.estimator.TimelineVisitor` oracle for every
    candidate — no compiled trace, no shared link-cost table.  This is
    the honest pre-engine cost model: differential tests pin the other
    backends to it, and the timeof-net benchmark measures the compiled
    backends' speedup against it.
    """

    def __init__(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        stats: SelectionStats | None = None,
    ):
        self.model = model
        self.netmodel = netmodel
        self.stats = stats

    def _evaluate_one(self, machines: Sequence[int]) -> float:
        model = self.model
        if len(machines) != model.nproc:
            raise HMPIError(
                f"mapping length {len(machines)} != model nproc {model.nproc}"
            )
        visitor = TimelineVisitor(
            node_volumes=model.node_volumes(),
            link_volumes=model.link_volumes(),
            speeds=_effective_speeds(self.netmodel, machines),
            netmodel=self.netmodel,
            machines=list(machines),
        )
        model.walk_scheme(visitor)
        return visitor.makespan

    def evaluate(self, machines: Sequence[int]) -> float:
        if self.stats is not None:
            self.stats.evaluations += 1
        return self._evaluate_one(machines)

    def evaluate_batch(self, mappings: Sequence[Sequence[int]]) -> np.ndarray:
        if self.stats is not None:
            self.stats.evaluations += len(mappings)
            self.stats.batches += 1
        if not len(mappings):
            return np.empty(0)
        return np.asarray([self._evaluate_one(m) for m in mappings])


def make_evaluator(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    stats: SelectionStats | None = None,
    backend: str | None = None,
) -> TraceEvaluator | InterpEvaluator:
    """Construct the candidate evaluator for a Timeof backend name.

    ``None`` means the default ``"trace"`` backend; unknown names raise
    :class:`~repro.util.errors.OptionError` (uniform with every other
    registry-string option).
    """
    backend = check_choice(
        "timeof backend", backend or "trace", TIMEOF_BACKENDS, OptionError
    )
    if backend == "net":
        return NetEvaluator(model, netmodel, stats)
    if backend == "interp":
        return InterpEvaluator(model, netmodel, stats)
    return TraceEvaluator(model, netmodel, stats)


def evaluate_mapping(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    machines: Sequence[int],
    stats: SelectionStats | None = None,
) -> float:
    """Predicted makespan of one candidate mapping (one-shot evaluator)."""
    return TraceEvaluator(model, netmodel, stats).evaluate(machines)


def evaluate_mappings(
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    candidate_mappings: Sequence[Sequence[int]],
    stats: SelectionStats | None = None,
    backend: str | None = None,
    pool: "EvaluatorPool | None" = None,
) -> np.ndarray:
    """Predicted makespans of many candidate mappings (batch entry point).

    ``candidate_mappings[j][i]`` is the machine index abstract processor
    ``i`` runs on under candidate ``j``.  Returns one predicted time per
    candidate, in order.  ``backend`` selects the Timeof backend
    (default compiled trace); ``pool`` reuses a shared evaluator (and
    its compiled link tables) instead of building one per call — the
    serve layer batches coalesced Timeof requests through here.
    """
    if pool is not None:
        evaluator = pool.get(model, netmodel, stats=stats, backend=backend)
    else:
        evaluator = make_evaluator(model, netmodel, stats, backend)
    return evaluator.evaluate_batch(candidate_mappings)


class EvaluatorPool:
    """Cross-call evaluator cache — the engine's cache-sharing hook.

    Evaluator construction re-derives per-(model, cluster) state that is
    invariant across calls: the compiled event trace and the
    machine-pair link-cost tables.  A long-lived embedder (the job
    server prices many requests against few distinct worlds) keeps one
    pool and calls :meth:`get` instead of :func:`make_evaluator`; the
    returned evaluator is shared by ``(model, netmodel, backend)``
    identity and stays correct across speed updates because evaluators
    read machine speeds live from the network model at evaluation time.

    ``stats`` is rebound on every :meth:`get`, so each caller's counters
    receive that caller's evaluations even on a shared instance.  Not
    thread-safe for concurrent *evaluation* of one entry — the serve
    workers each own a pool, which is the intended deployment.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise OptionError("EvaluatorPool capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple, TraceEvaluator | InterpEvaluator] = {}
        self._order: list[tuple] = []

    def get(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> TraceEvaluator | InterpEvaluator:
        backend = check_choice(
            "timeof backend", backend or "trace", TIMEOF_BACKENDS, OptionError
        )
        key = (id(model), id(netmodel), backend)
        evaluator = self._entries.get(key)
        if evaluator is None:
            self.misses += 1
            evaluator = make_evaluator(model, netmodel, stats, backend)
            self._entries[key] = evaluator
            self._order.append(key)
            while len(self._order) > self.capacity:
                evicted = self._order.pop(0)
                self._entries.pop(evicted, None)
        else:
            self.hits += 1
            self._order.remove(key)
            self._order.append(key)
            evaluator.stats = stats
        return evaluator

    def stats_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries)}
