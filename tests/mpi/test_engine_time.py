"""Virtual-time semantics of the execution engine."""

import numpy as np
import pytest

from repro.cluster import TCP_100MBIT, uniform_network
from repro.mpi import run_mpi


class TestComputeTime:
    def test_speed_determines_duration(self, pair_cluster):
        # machine 0: speed 100, machine 1: speed 50
        def app(env):
            env.compute(100.0)
            return env.wtime()

        res = run_mpi(app, pair_cluster)
        assert res.results[0] == pytest.approx(1.0)
        assert res.results[1] == pytest.approx(2.0)

    def test_compute_accumulates(self, pair_cluster):
        def app(env):
            env.compute(50.0)
            env.compute(50.0)
            return env.wtime()

        res = run_mpi(app, pair_cluster)
        assert res.results[0] == pytest.approx(1.0)

    def test_colocated_ranks_share_speed(self):
        cluster = uniform_network([100.0])

        def app(env):
            env.compute(100.0)
            return env.wtime()

        res = run_mpi(app, cluster, placement=[0, 0])
        # Two ranks share the machine: each runs at 50 units/s.
        assert res.results == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_elapse_raw_seconds(self, pair_cluster):
        def app(env):
            env.elapse(0.25)
            return env.wtime()

        res = run_mpi(app, pair_cluster)
        assert res.results[0] == pytest.approx(0.25)


class TestTransferTime:
    def test_hockney_cost_charged_to_receiver(self, pair_cluster):
        nbytes = 1_000_000
        expected = TCP_100MBIT.latency + nbytes / TCP_100MBIT.bandwidth

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(nbytes // 8), 1)
                return env.wtime()
            c.recv(0)
            return env.wtime()

        res = run_mpi(app, pair_cluster)
        # Sender pays only the latency; receiver sees the full transfer.
        assert res.results[0] == pytest.approx(TCP_100MBIT.latency)
        assert res.results[1] == pytest.approx(expected)

    def test_receiver_not_delayed_if_already_late(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(10), 1)
                return None
            env.compute(500.0)  # 10s on speed-50 machine — long after arrival
            t_before = env.wtime()
            c.recv(0)
            return env.wtime() - t_before

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == pytest.approx(0.0, abs=1e-12)

    def test_nbytes_override_charges_modelled_size(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send("tiny", 1, nbytes=12_500_000)  # modelled 1 second
                return None
            c.recv(0)
            return env.wtime()

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == pytest.approx(1.0 + TCP_100MBIT.latency)

    def test_loopback_cheap_for_colocated(self):
        cluster = uniform_network([100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(125_000), 1)  # 1 MB
                return None
            c.recv(0)
            return env.wtime()

        res = run_mpi(app, cluster, placement=[0, 0])
        # Over shm (1 GB/s) this is ~1 ms; over TCP it would be 80 ms.
        assert res.results[1] < 0.01


class TestOrdering:
    def test_non_overtaking_virtual_arrivals(self, pair_cluster):
        """A small message sent after a large one must not arrive earlier."""

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(1_250_000), 1, tag=1)  # 10 MB ~ 0.8s
                c.send(np.zeros(1), 1, tag=2)          # tiny
                return None
            import repro.mpi as M

            st1 = M.Status()
            st2 = M.Status()
            c.recv(0, 1, status=st1)
            c.recv(0, 2, status=st2)
            return (st1.arrival_vtime, st2.arrival_vtime)

        res = run_mpi(app, pair_cluster)
        big, small = res.results[1]
        assert small >= big

    def test_parallel_pairs_do_not_contend(self):
        """Switched network: disjoint pairs transfer concurrently."""
        cluster = uniform_network([100.0, 100.0, 100.0, 100.0])
        nbytes = 12_500_000  # 1 second each

        def app(env):
            c = env.comm_world
            if env.rank in (0, 1):
                c.send(np.zeros(nbytes // 8), env.rank + 2)
                return None
            c.recv(env.rank - 2)
            return env.wtime()

        res = run_mpi(app, cluster)
        # Both transfers complete in ~1s, not 2s.
        assert res.results[2] == pytest.approx(1.0, rel=0.01)
        assert res.results[3] == pytest.approx(1.0, rel=0.01)


class TestMakespan:
    def test_makespan_is_last_finisher(self, pair_cluster):
        def app(env):
            env.compute(100.0 if env.rank == 0 else 10.0)
            return None

        res = run_mpi(app, pair_cluster)
        assert res.makespan == pytest.approx(1.0)  # rank 0: 100/100
