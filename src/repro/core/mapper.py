"""Process-selection algorithms — the heart of ``HMPI_Group_create``.

Given a bound performance model, the network model, and the set of
available world processes (the parent plus all free processes), a mapper
chooses which process runs each abstract processor so that the *predicted*
execution time (:func:`repro.core.estimator.estimate_time`) is minimal.
The paper defers these algorithms to the mpC runtime [7]; we provide:

- :class:`ExhaustiveMapper` — optimal by enumeration, with optional
  machine-speed symmetry reduction; the oracle used in tests.
- :class:`GreedyMapper` — LPT-style: largest computation volumes onto the
  machines that finish them soonest, with speed sharing.  Fast,
  communication-blind.
- :class:`RefineMapper` — hill-climbing over swaps/moves evaluated with the
  full estimator (communication-aware), seeded by another mapper.
- :class:`DefaultMapper` — greedy seed + refinement; what the HMPI runtime
  uses unless told otherwise.

A mapping may pin abstract processors to specific processes via ``fixed`` —
the runtime pins the model's ``parent`` to the calling host so that "every
newly created group has exactly one process shared with already existing
groups".
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

from ..perfmodel.model import AbstractBoundModel
from ..util.errors import MappingError
from .estimator import estimate_time
from .netmodel import NetworkModel

__all__ = [
    "Mapping",
    "Mapper",
    "ExhaustiveMapper",
    "GreedyMapper",
    "RefineMapper",
    "DefaultMapper",
]


@dataclass(frozen=True)
class Mapping:
    """A complete assignment of abstract processors to world processes."""

    processes: tuple[int, ...]  # world rank per abstract processor
    machines: tuple[int, ...]   # machine index per abstract processor
    time: float                 # predicted execution time of one scheme run

    def __post_init__(self) -> None:
        if len(self.processes) != len(self.machines):
            raise MappingError("processes and machines must have equal length")


def _build_mapping(
    processes: Sequence[int],
    model: AbstractBoundModel,
    netmodel: NetworkModel,
) -> Mapping:
    machines = tuple(netmodel.machine_of(p) for p in processes)
    t = estimate_time(model, netmodel, machines)
    return Mapping(tuple(processes), machines, t)


def _check_inputs(
    model: AbstractBoundModel,
    candidates: Sequence[int],
    fixed: MappingABC[int, int],
) -> None:
    n = model.nproc
    if len(set(candidates)) != len(candidates):
        raise MappingError(f"duplicate candidate processes: {candidates}")
    if len(candidates) < n:
        raise MappingError(
            f"algorithm needs {n} processes but only {len(candidates)} are available"
        )
    for idx, proc in fixed.items():
        if not 0 <= idx < n:
            raise MappingError(f"fixed abstract processor {idx} out of range")
        if proc not in candidates:
            raise MappingError(
                f"fixed process {proc} (abstract {idx}) is not a candidate"
            )
    if len(set(fixed.values())) != len(fixed):
        raise MappingError("two abstract processors fixed to the same process")


class Mapper(ABC):
    """Strategy interface for process selection."""

    @abstractmethod
    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
    ) -> Mapping:
        """Choose a process per abstract processor minimising predicted time."""


class ExhaustiveMapper(Mapper):
    """Optimal selection by enumeration.

    Enumerates injective assignments of the non-fixed abstract processors
    to the remaining candidates.  With ``reduce_symmetry`` (default on),
    candidate processes whose machines have identical speed estimates are
    treated as interchangeable, which collapses the paper's 9-machine
    search from 9! to a few hundred evaluations — exact whenever links are
    uniform (as on the paper's switched Ethernet); set it to False for
    clusters with heterogeneous links.

    ``max_evaluations`` guards against combinatorial blow-up.
    """

    def __init__(self, reduce_symmetry: bool = True, max_evaluations: int = 200_000):
        self.reduce_symmetry = reduce_symmetry
        self.max_evaluations = max_evaluations

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        _check_inputs(model, candidates, fixed)
        n = model.nproc
        free_slots = [i for i in range(n) if i not in fixed]
        pool = [c for c in candidates if c not in set(fixed.values())]

        best: Mapping | None = None
        evaluations = 0
        seen_signatures: set[tuple] = set()
        for combo in itertools.permutations(pool, len(free_slots)):
            assignment = [0] * n
            for idx, proc in fixed.items():
                assignment[idx] = proc
            for slot, proc in zip(free_slots, combo):
                assignment[slot] = proc
            if self.reduce_symmetry:
                signature = tuple(
                    (netmodel.speed_of_machine(netmodel.machine_of(p)),)
                    for p in assignment
                )
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
            evaluations += 1
            if evaluations > self.max_evaluations:
                raise MappingError(
                    f"exhaustive search exceeded {self.max_evaluations} "
                    "evaluations; use GreedyMapper/DefaultMapper"
                )
            mapping = _build_mapping(assignment, model, netmodel)
            if best is None or mapping.time < best.time:
                best = mapping
        assert best is not None
        return best


class GreedyMapper(Mapper):
    """LPT-style compute-balancing heuristic (communication-blind).

    Sorts abstract processors by computation volume (largest first) and
    assigns each to the candidate process whose machine would finish its
    accumulated volume soonest, honouring speed sharing between co-located
    assignments.  Runs in O(n · |candidates|).
    """

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        _check_inputs(model, candidates, fixed)
        n = model.nproc
        volumes = model.node_volumes()
        assignment: list[int | None] = [None] * n
        machine_load: Counter[int] = Counter()  # accumulated volume per machine
        used: set[int] = set()

        for idx, proc in fixed.items():
            assignment[idx] = proc
            machine_load[netmodel.machine_of(proc)] += volumes[idx]
            used.add(proc)

        order = sorted(
            (i for i in range(n) if i not in fixed),
            key=lambda i: -volumes[i],
        )
        for i in order:
            best_proc = None
            best_finish = None
            for proc in candidates:
                if proc in used:
                    continue
                m = netmodel.machine_of(proc)
                finish = (machine_load[m] + volumes[i]) / netmodel.speed_of_machine(m)
                if best_finish is None or finish < best_finish:
                    best_finish = finish
                    best_proc = proc
            assert best_proc is not None  # _check_inputs guarantees capacity
            assignment[i] = best_proc
            machine_load[netmodel.machine_of(best_proc)] += volumes[i]
            used.add(best_proc)

        return _build_mapping([p for p in assignment if p is not None], model, netmodel)


class RefineMapper(Mapper):
    """Hill climbing with the full (communication-aware) estimator.

    Starts from ``seed``'s mapping and repeatedly applies the best
    improving move among (a) swapping the processes of two abstract
    processors and (b) moving one abstract processor to an unused
    candidate, until a local optimum or ``max_rounds``.
    """

    def __init__(self, seed: Mapper | None = None, max_rounds: int = 20):
        self.seed = seed or GreedyMapper()
        self.max_rounds = max_rounds

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        current = self.seed.select(model, netmodel, candidates, fixed)
        n = model.nproc
        pinned = set(fixed.keys())

        for _ in range(self.max_rounds):
            best_next: Mapping | None = None
            assignment = list(current.processes)
            unused = [c for c in candidates if c not in set(assignment)]
            # swap moves
            for i in range(n):
                if i in pinned:
                    continue
                for j in range(i + 1, n):
                    if j in pinned:
                        continue
                    if assignment[i] == assignment[j]:
                        continue
                    trial = list(assignment)
                    trial[i], trial[j] = trial[j], trial[i]
                    mapping = _build_mapping(trial, model, netmodel)
                    if mapping.time < current.time and (
                        best_next is None or mapping.time < best_next.time
                    ):
                        best_next = mapping
            # move-to-unused moves
            for i in range(n):
                if i in pinned:
                    continue
                for proc in unused:
                    trial = list(assignment)
                    trial[i] = proc
                    mapping = _build_mapping(trial, model, netmodel)
                    if mapping.time < current.time and (
                        best_next is None or mapping.time < best_next.time
                    ):
                        best_next = mapping
            if best_next is None:
                break
            current = best_next
        return current


class DefaultMapper(Mapper):
    """The runtime default: greedy seed, then communication-aware refinement."""

    def __init__(self, max_rounds: int = 20):
        self._impl = RefineMapper(seed=GreedyMapper(), max_rounds=max_rounds)

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
    ) -> Mapping:
        return self._impl.select(model, netmodel, candidates, fixed)
