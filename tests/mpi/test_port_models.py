"""Single-port vs multi-port network models and broadcast algorithms."""

import pytest

from repro.cluster import TCP_100MBIT, Cluster, Machine, uniform_network
from repro.mpi import run_mpi
from repro.util.errors import MPICommError


def single_port_network(n, speed=100.0):
    return Cluster([Machine(f"sp{i:02d}", speed) for i in range(n)],
                   single_port=True)


NBYTES = 12_500_000  # 1 second over 100 Mbit
HOP = TCP_100MBIT.transfer_time(NBYTES)


class TestSenderOccupancy:
    def test_multi_port_sends_overlap(self):
        cluster = uniform_network([100.0] * 3)

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(b"", 1, tag=0, nbytes=NBYTES)
                c.send(b"", 2, tag=0, nbytes=NBYTES)
                return env.wtime()
            c.recv(0, 0)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.results[0] < 0.01            # sender returns immediately
        assert res.results[1] == pytest.approx(HOP, rel=1e-3)
        assert res.results[2] == pytest.approx(HOP, rel=1e-3)

    def test_single_port_sends_serialise(self):
        cluster = single_port_network(3)

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(b"", 1, tag=0, nbytes=NBYTES)
                c.send(b"", 2, tag=0, nbytes=NBYTES)
                return env.wtime()
            c.recv(0, 0)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.results[0] == pytest.approx(2 * HOP, rel=1e-3)
        assert res.results[1] == pytest.approx(HOP, rel=1e-3)
        assert res.results[2] == pytest.approx(2 * HOP, rel=1e-3)

    def test_estimator_matches_single_port_engine(self):
        import numpy as np

        from repro.core.estimator import estimate_time
        from repro.core.netmodel import NetworkModel
        from repro.perfmodel.builder import MatrixModel

        cluster = single_port_network(3)
        nm = NetworkModel(cluster, [0, 1, 2])
        links = np.zeros((3, 3))
        links[0, 1] = links[0, 2] = NBYTES

        def scheme(v):
            v.transfer(100.0, 0, 1)
            v.transfer(100.0, 0, 2)

        model = MatrixModel([0.0, 0.0, 0.0], links, scheme=scheme)
        predicted = estimate_time(model, nm, [0, 1, 2])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(b"", 1, tag=0, nbytes=NBYTES)
                c.send(b"", 2, tag=0, nbytes=NBYTES)
            else:
                c.recv(0, 0)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert max(res.results) == pytest.approx(predicted, rel=1e-9)


class TestBcastAlgorithms:
    @pytest.mark.parametrize("algorithm", ["binomial", "flat", "chain"])
    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_all_algorithms_correct(self, algorithm, size):
        from repro.cluster import homogeneous_network

        def app(env):
            value = {"data": 42} if env.rank == 0 else None
            return env.comm_world.bcast(value, root=0, algorithm=algorithm)

        res = run_mpi(app, homogeneous_network(size))
        assert res.results == [{"data": 42}] * size

    def test_nonzero_root_all_algorithms(self):
        from repro.cluster import homogeneous_network

        for algorithm in ("binomial", "flat", "chain"):
            def app(env, alg=algorithm):
                value = "x" if env.rank == 2 else None
                return env.comm_world.bcast(value, root=2, algorithm=alg)

            res = run_mpi(app, homogeneous_network(4))
            assert res.results == ["x"] * 4

    def test_unknown_algorithm(self):
        from repro.cluster import homogeneous_network

        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.bcast(1, algorithm="quantum")
            return True

        run_mpi(app, homogeneous_network(2))

    def test_flat_beats_binomial_on_switched_network(self):
        """Contention-free network: the flat fan-out is one hop."""
        from repro.cluster import homogeneous_network

        def timed(algorithm):
            def app(env):
                env.comm_world.bcast(b"" if env.rank == 0 else None,
                                     root=0, nbytes=NBYTES,
                                     algorithm=algorithm)
                env.comm_world.barrier()
                return env.wtime()

            return max(run_mpi(app, homogeneous_network(8)).results)

        assert timed("flat") < timed("binomial")

    def test_binomial_beats_flat_under_single_port(self):
        """Single-port root serialises the flat fan-out; the tree spreads
        the sending over the ranks that already have the data."""

        def timed(algorithm):
            def app(env):
                env.comm_world.bcast(b"" if env.rank == 0 else None,
                                     root=0, nbytes=NBYTES,
                                     algorithm=algorithm)
                env.comm_world.barrier()
                return env.wtime()

            return max(run_mpi(app, single_port_network(8)).results)

        assert timed("binomial") < timed("flat")
