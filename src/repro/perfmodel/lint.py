"""Performance-model consistency linter.

A PMDL model makes two kinds of statements that can silently disagree: the
*declarative* volumes (``node``/``link``) and the *operational* ``scheme``
(which performs percentages of those volumes).  A well-formed model's
scheme performs exactly 100% of every processor's computation and 100% of
every pair's communication — both paper models do (verified in the test
suite).  A model whose author got a percentage denominator wrong will
still compile and estimate, just wrongly; this linter catches that.

The linter runs on a *bound* model (concrete parameters); the symbolic
generalization that needs no binding lives in
:mod:`repro.perfmodel.analyze`.  Both report through the shared
:mod:`repro.perfmodel.diagnostics` framework: every lint finding is a
:class:`~repro.perfmodel.diagnostics.Diagnostic` with a stable ``PM07x``
code, and ``LintReport.issues`` keeps exposing the plain message strings.

>>> report = lint_model(bound_model)
>>> report.ok
True
>>> print(report)                                  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .diagnostics import Diagnostic, Severity, register_rule
from .model import AbstractBoundModel, LinearActionVisitor

__all__ = ["LintReport", "lint_model"]

_TOLERANCE = 1e-6

PM070 = register_rule("PM070", "compute-coverage", Severity.ERROR,
                      "scheme does not perform 100% of a declared compute volume")
PM071 = register_rule("PM071", "compute-on-zero-volume", Severity.ERROR,
                      "scheme computes on a processor with zero declared volume")
PM072 = register_rule("PM072", "transfer-coverage", Severity.ERROR,
                      "scheme does not transfer 100% of a declared link volume")
PM073 = register_rule("PM073", "transfer-on-zero-pair", Severity.ERROR,
                      "scheme transfers on a pair with zero declared volume")
PM074 = register_rule("PM074", "negative-percent", Severity.ERROR,
                      "scheme performs a negative percentage")


@dataclass
class LintReport:
    """Outcome of linting one bound model.

    ``diagnostics`` carries the coded findings; ``issues`` is the
    backward-compatible list of message strings.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    compute_percent: dict[int, float] = field(default_factory=dict)
    transfer_percent: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def issues(self) -> list[str]:
        return [d.message for d in self.diagnostics]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def __str__(self) -> str:
        if self.ok:
            return "model is consistent: scheme covers 100% of all volumes"
        return "model inconsistencies:\n" + "\n".join(
            f"  - [{d.code}] {d.message}" for d in self.diagnostics)


class _Accumulator(LinearActionVisitor):
    def __init__(self) -> None:
        self.compute_pct: dict[int, float] = {}
        self.transfer_pct: dict[tuple[int, int], float] = {}
        self.negative: list[str] = []

    def compute(self, percent: float, proc: int) -> None:
        if percent < 0:
            self.negative.append(f"negative compute percent {percent} on {proc}")
        self.compute_pct[proc] = self.compute_pct.get(proc, 0.0) + percent

    def transfer(self, percent: float, src: int, dst: int) -> None:
        if percent < 0:
            self.negative.append(
                f"negative transfer percent {percent} on {src}->{dst}"
            )
        key = (src, dst)
        self.transfer_pct[key] = self.transfer_pct.get(key, 0.0) + percent


def lint_model(model: AbstractBoundModel, tolerance: float = _TOLERANCE) -> LintReport:
    """Check that the scheme covers exactly the declared volumes."""
    acc = _Accumulator()
    model.walk_scheme(acc)
    report = LintReport(
        compute_percent=dict(acc.compute_pct),
        transfer_percent=dict(acc.transfer_pct),
    )
    for message in acc.negative:
        report.diagnostics.append(PM074.at(0, message))

    node = model.node_volumes()
    links = model.link_volumes()
    n = model.nproc

    for proc in range(n):
        pct = acc.compute_pct.get(proc, 0.0)
        if node[proc] > 0 and abs(pct - 100.0) > tolerance * 100:
            report.diagnostics.append(PM070.at(
                0,
                f"processor {proc}: scheme performs {pct:.4f}% of its "
                f"computation (declared volume {node[proc]:g})",
            ))
        elif node[proc] == 0 and pct > tolerance * 100:
            report.diagnostics.append(PM071.at(
                0,
                f"processor {proc}: scheme computes {pct:.4f}% but the "
                "node declaration gives it zero volume",
            ))

    # only the declared (nonzero) pairs plus the pairs the scheme actually
    # touched can be inconsistent — no need for the dense n×n sweep
    declared_pairs = {
        (int(s), int(d)) for s, d in zip(*np.nonzero(links))
    }
    for src, dst in sorted(declared_pairs | set(acc.transfer_pct)):
        declared = links[src, dst]
        pct = acc.transfer_pct.get((src, dst), 0.0)
        if declared > 0 and abs(pct - 100.0) > tolerance * 100:
            report.diagnostics.append(PM072.at(
                0,
                f"link {src}->{dst}: scheme transfers {pct:.4f}% of the "
                f"declared {declared:g} bytes",
            ))
        elif declared == 0 and (src, dst) in acc.transfer_pct and pct > 0:
            report.diagnostics.append(PM073.at(
                0,
                f"link {src}->{dst}: scheme transfers on a pair with "
                "zero declared volume",
            ))
    return report
