"""HMPI — Heterogeneous MPI for networks of computers (IPPS 2003), reproduced.

A complete Python reproduction of Lastovetsky & Reddy's HMPI: a
message-passing library extension that lets the programmer describe the
performance model of a parallel algorithm and have the runtime create the
group of processes that executes it fastest on a heterogeneous network.

Layers (bottom-up):

- :mod:`repro.cluster` — the simulated heterogeneous network of computers
  (machines with speeds and multi-user load, links with latency/bandwidth
  and multiple protocols, fault injection);
- :mod:`repro.mpi` — an MPI-like message-passing library executing each
  rank as a thread over virtual time charged against the cluster;
- :mod:`repro.perfmodel` — the performance-model definition language
  (the mpC-derived DSL of the paper's Figures 4 and 7), its compiler, and
  a Python-native model builder;
- :mod:`repro.core` — HMPI proper: ``HMPI_Recon`` / ``HMPI_Timeof`` /
  ``HMPI_Group_create`` and the process-selection algorithms;
- :mod:`repro.apps` — the paper's two applications, EM3D and
  heterogeneous parallel matrix multiplication, each in MPI-baseline and
  HMPI form.

Quickstart::

    from repro.cluster import paper_network
    from repro.core import run_hmpi
    from repro.perfmodel import CallableModel

    def app(hmpi):
        hmpi.recon()
        model = CallableModel(nproc=3,
                              node_volume=lambda i: [300, 200, 100][i],
                              link_volume=lambda s, d: 8192.0)
        gid = hmpi.group_create(model)
        if gid.is_member:
            hmpi.compute([300, 200, 100][gid.rank])
            gid.comm.barrier()
            hmpi.group_free(gid)

    result = run_hmpi(app, paper_network())

or, with the session facade (:mod:`repro.hmpi`) holding launch options::

    from repro.hmpi import session

    with session(paper_network(), mapper="greedy", engine="events") as s:
        result = s.run(app)
"""

from . import apps, cluster, core, hmpi, mpi, perfmodel, util
from .cluster import Cluster, Machine, paper_network
from .core import HMPI, run_hmpi
from .hmpi import HMPISession
from .mpi import run_mpi
from .perfmodel import CallableModel, PerformanceModel, compile_model

__version__ = "1.0.0"

__all__ = [
    "cluster",
    "mpi",
    "perfmodel",
    "core",
    "apps",
    "util",
    "hmpi",
    "HMPISession",
    "Cluster",
    "Machine",
    "paper_network",
    "HMPI",
    "run_hmpi",
    "run_mpi",
    "compile_model",
    "PerformanceModel",
    "CallableModel",
    "__version__",
]
