"""Abstract syntax tree of the PMDL.

The tree mirrors the structure of the paper's model definitions: an
``algorithm`` has parameters, ``coord`` declarations, a ``node`` block of
(condition : bench*(expr)) rules, a ``link`` block of
(condition : length*(expr) [src]->[dst]) rules with optional link-local
loop variables, a ``parent`` coordinate, and a ``scheme`` — an imperative
mini-program whose primitive statements are the two *actions*:
``e %% [coords]`` (perform e percent of the processor's total computation)
and ``e %% [src] -> [dst]`` (transfer e percent of the pair's total data).

All nodes carry their source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLit", "FloatLit", "Name", "Index", "Member", "Unary", "Binary",
    "Assign", "IncDec", "Call", "AddrOf", "Sizeof", "Conditional",
    "Param", "StructDef", "StructField",
    "CoordDecl", "NodeRule", "LinkVar", "LinkRule", "ParentDecl",
    "VarDecl", "Declarator", "ExprStmt", "Block", "If", "For", "Par",
    "While", "ComputeAction", "TransferAction", "EmptyStmt",
    "Scheme", "Algorithm",
    "iter_child_nodes", "walk",
]


@dataclass
class Node:
    """Base class: every AST node knows its source line."""
    line: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str


@dataclass
class Unary(Expr):
    op: str  # '-', '+', '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, logical
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""
    target: Expr
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass
class IncDec(Expr):
    """``target++`` / ``target--`` (postfix; the models use no prefix form)."""
    target: Expr
    op: str  # '++' or '--'


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


@dataclass
class AddrOf(Expr):
    """``&lvalue`` — pass-by-reference into an external function."""
    operand: Expr


@dataclass
class Sizeof(Expr):
    type_name: str


@dataclass
class Conditional(Expr):
    """C ternary ``cond ? a : b``."""
    cond: Expr
    then: Expr
    otherwise: Expr


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------

@dataclass
class Param(Node):
    """An algorithm parameter, e.g. ``int dep[p][p]``.

    ``dims`` holds one expression per array dimension (empty for scalars);
    dimensions may reference earlier parameters.
    """
    type_name: str
    name: str
    dims: list[Expr]


@dataclass
class StructField(Node):
    type_name: str
    name: str


@dataclass
class StructDef(Node):
    """``typedef struct { ... } Name;``"""
    name: str
    fields: list[StructField]


@dataclass
class CoordDecl(Node):
    """One coordinate variable: name and extent expression."""
    name: str
    extent: Expr


@dataclass
class NodeRule(Node):
    """``condition : bench*(volume);`` — computation volume of matching
    processors, in benchmark units."""
    condition: Expr
    volume: Expr


@dataclass
class LinkVar(Node):
    """A link-block loop variable, e.g. the ``K=m`` in ``link (K=m, L=m)``."""
    name: str
    extent: Expr


@dataclass
class LinkRule(Node):
    """``condition : length*(volume) [src]->[dst];`` — bytes moved between
    each matching pair over the whole algorithm."""
    condition: Expr
    volume: Expr
    src: list[Expr]
    dst: list[Expr]


@dataclass
class ParentDecl(Node):
    """``parent[c0, c1, ...];`` — coordinates of the parent processor."""
    coords: list[Expr]


# ----------------------------------------------------------------------
# scheme statements
# ----------------------------------------------------------------------

class Stmt(Node):
    pass


@dataclass
class Declarator(Node):
    name: str
    init: Expr | None


@dataclass
class VarDecl(Stmt):
    """``int a, b = 0;`` or ``Processor Root, Receiver;``"""
    type_name: str
    declarators: list[Declarator]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    body: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Stmt | None


@dataclass
class For(Stmt):
    """Sequential C-style loop; any header part may be None."""
    init: Expr | VarDecl | None
    cond: Expr | None
    update: Expr | None
    body: Stmt


@dataclass
class Par(Stmt):
    """The parallel algorithmic pattern: same header shape as ``for``, but
    declares that iterations are mutually independent (executed in parallel
    by the abstract processors involved)."""
    init: Expr | VarDecl | None
    cond: Expr | None
    update: Expr | None
    body: Stmt


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class ComputeAction(Stmt):
    """``percent %% [coords];``"""
    percent: Expr
    coords: list[Expr]


@dataclass
class TransferAction(Stmt):
    """``percent %% [src] -> [dst];``"""
    percent: Expr
    src: list[Expr]
    dst: list[Expr]


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Scheme(Node):
    body: list[Stmt]


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------

@dataclass
class Algorithm(Node):
    """A complete performance-model definition."""
    name: str
    params: list[Param]
    coords: list[CoordDecl]
    node_rules: list[NodeRule]
    link_vars: list[LinkVar]
    link_rules: list[LinkRule]
    parent: ParentDecl | None
    scheme: Scheme | None
    structs: list[StructDef] = field(default_factory=list)


# ----------------------------------------------------------------------
# generic traversal (used by the static analyzer)
# ----------------------------------------------------------------------

def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield every direct child :class:`Node` of ``node``, in field order.

    Lists of nodes are flattened; ``None`` children and non-node fields
    (names, operators, literal values) are skipped.
    """
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, depth-first, in source order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(iter_child_nodes(current))))
