"""Wire-protocol validation: eager, total, and digest semantics."""

import pytest

from repro.serve import BadRequest, validate_request
from repro.serve.protocol import SERVE_OPS, canonical_digest

RING = """
algorithm Ring(int p, int v[p]) {
  coord I=p;
  node {I>=0: bench*(v[I]);};
  link (L=p) { L == (I+1)%p : length*(64) [L]->[I]; };
  parent[0];
}
"""


def ring_request(**over):
    raw = {"op": "timeof", "model": RING,
           "params": {"p": 4, "v": [10, 20, 30, 40]}, "cluster": "paper"}
    raw.update(over)
    return raw


class TestValidation:
    def test_ops_registry(self):
        assert set(SERVE_OPS) == {
            "timeof", "group_create", "check", "campaign_cell"}

    def test_minimal_timeof_validates(self):
        req = validate_request(ring_request())
        assert req.op == "timeof"
        assert req.tenant == "anonymous"
        assert req.model_digest and req.world_digest and req.shape_digest
        assert req.batch_key[0] == "select"

    def test_hyphenated_op_spelling_normalises(self):
        req = validate_request(ring_request(
            op="campaign-cell", model=None, cluster=None,
            params=None, campaign={"name": "x", "app": "timeof_em3d"}))
        assert req.op == "campaign_cell"

    def test_non_object_request_rejected(self):
        with pytest.raises(BadRequest, match="JSON object"):
            validate_request([1, 2, 3])

    def test_unknown_keys_rejected(self):
        with pytest.raises(BadRequest, match="unknown request key"):
            validate_request(ring_request(bogus=1))

    def test_unknown_op_rejected(self):
        with pytest.raises(BadRequest, match="unknown op"):
            validate_request(ring_request(op="predict"))

    @pytest.mark.parametrize("tenant", ["", 7, None])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(BadRequest, match="tenant"):
            validate_request(ring_request(tenant=tenant))

    @pytest.mark.parametrize("key", ["wait", "timeout", "iterations"])
    def test_numbers_must_be_nonnegative_numbers(self, key):
        with pytest.raises(BadRequest, match=key):
            validate_request(ring_request(**{key: -1}))
        with pytest.raises(BadRequest, match=key):
            validate_request(ring_request(**{key: "soon"}))
        with pytest.raises(BadRequest, match=key):
            validate_request(ring_request(**{key: True}))

    def test_model_required_for_selection_ops(self):
        with pytest.raises(BadRequest, match="model"):
            validate_request(ring_request(model="   "))

    def test_cluster_required_for_selection_ops(self):
        with pytest.raises(BadRequest, match="cluster"):
            validate_request(ring_request(cluster=None))

    def test_unknown_mapper_rejected_at_validation(self):
        with pytest.raises(BadRequest, match="unknown mapper"):
            validate_request(ring_request(mapper="magic"))

    def test_unknown_backend_rejected_at_validation(self):
        with pytest.raises(BadRequest, match="timeof backend"):
            validate_request(ring_request(timeof_backend="oracle"))

    @pytest.mark.parametrize("speeds", [[], [0.0], [-1.0], [True], "fast"])
    def test_bad_speeds_rejected(self, speeds):
        with pytest.raises(BadRequest, match="speeds"):
            validate_request(ring_request(speeds=speeds))

    def test_campaign_cell_needs_config_and_cell(self):
        with pytest.raises(BadRequest, match="campaign"):
            validate_request({"op": "campaign_cell"})
        with pytest.raises(BadRequest, match="cell"):
            validate_request({"op": "campaign_cell",
                              "campaign": {"name": "x"}, "cell": -1})


class TestBatchKeys:
    """Coalescing semantics: what shares an evaluation, what must not."""

    def test_tenant_and_wait_do_not_split_batches(self):
        a = validate_request(ring_request(tenant="team-a", wait=5))
        b = validate_request(ring_request(tenant="team-b", wait=0))
        assert a.batch_key == b.batch_key

    def test_iterations_do_not_split_batches(self):
        # timeof scales the cached selection by iterations post hoc.
        a = validate_request(ring_request(iterations=1))
        b = validate_request(ring_request(iterations=50))
        assert a.batch_key == b.batch_key

    @pytest.mark.parametrize("over", [
        {"params": {"p": 4, "v": [10, 20, 30, 41]}},
        {"mapper": "greedy"},
        {"timeof_backend": "net"},
        {"speeds": [1.0] * 9},
        {"cluster": "multiprotocol"},
    ])
    def test_shape_changes_split_batches(self, over):
        a = validate_request(ring_request())
        b = validate_request(ring_request(**over))
        assert a.batch_key != b.batch_key

    def test_whitespace_normalisation_shares_model_digest(self):
        a = validate_request(ring_request())
        b = validate_request(ring_request(model=RING.replace("\n", "\r\n")))
        assert a.model_digest == b.model_digest
        assert a.batch_key == b.batch_key

    def test_canonical_digest_is_key_order_independent(self):
        assert canonical_digest({"a": 1, "b": 2}) == \
            canonical_digest({"b": 2, "a": 1})
