"""HMPI_Recon under dynamic external load — the paper's multi-user challenge."""

import numpy as np
import pytest

from repro.cluster import ConstantLoad, StepLoad, uniform_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel


def loaded_cluster():
    """Nominally fast machine 3 is 90% consumed by an external user."""
    cluster = uniform_network([100.0, 100.0, 100.0, 400.0])
    cluster.machines[3].load = ConstantLoad(0.1)  # effective speed 40
    return cluster


def work_model(volumes=(120.0, 60.0)):
    n = len(volumes)
    return CallableModel(n, lambda i: volumes[i], lambda s, d: 1024.0)


class TestReconChangesSelection:
    def test_without_recon_the_loaded_machine_is_chosen(self):
        cluster = loaded_cluster()
        model = work_model()

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
            return gid.world_ranks

        res = run_hmpi(app, cluster)
        # Nominal speeds say machine 3 is 4x faster: it gets picked.
        assert 3 in res.results[0]

    def test_with_recon_the_loaded_machine_is_avoided(self):
        cluster = loaded_cluster()
        model = work_model()

        def app(hmpi):
            hmpi.recon()
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.group_free(gid)
            return (gid.world_ranks, hmpi.state.netmodel.speeds().tolist())

        res = run_hmpi(app, cluster)
        ranks, speeds = res.results[0]
        assert speeds[3] == pytest.approx(40.0)
        assert 3 not in ranks  # true speed 40 < 100 of the idle machines

    def test_recon_makes_execution_faster(self):
        """End to end: the recon'd selection finishes sooner."""
        model = work_model()

        def app(hmpi, use_recon):
            if use_recon:
                hmpi.recon()
            gid = hmpi.group_create(model)
            elapsed = None
            if gid.is_member:
                comm = gid.comm
                comm.barrier()
                t0 = comm.wtime()
                hmpi.compute((120.0, 60.0)[comm.rank])
                comm.barrier()
                elapsed = comm.wtime() - t0
                hmpi.group_free(gid)
            return elapsed

        blind = run_hmpi(app, loaded_cluster(), args=(False,))
        informed = run_hmpi(app, loaded_cluster(), args=(True,))
        t_blind = max(t for t in blind.results if t is not None)
        t_informed = max(t for t in informed.results if t is not None)
        assert t_informed < t_blind


class TestTimeVaryingLoad:
    def test_recon_observes_current_share(self):
        """Recon run while a square load is in its loaded phase reports the
        loaded speed, not the nominal one."""
        cluster = uniform_network([100.0, 100.0])
        # Machine 1 loaded (share 0.25) from the start for a long time.
        cluster.machines[1].load = StepLoad([(1000.0, 1.0)], initial=0.25)

        def app(hmpi):
            hmpi.recon()
            return hmpi.state.netmodel.speeds().tolist()

        res = run_hmpi(app, cluster)
        assert res.results[0][1] == pytest.approx(25.0)

    def test_repeated_recon_tracks_change(self):
        cluster = uniform_network([100.0, 100.0])
        # Machine 1: share 0.2 until t=100, then back to 1.0.
        cluster.machines[1].load = StepLoad([(100.0, 1.0)], initial=0.2)

        def app(hmpi):
            hmpi.recon()
            first = hmpi.state.netmodel.speed_of_machine(1)
            hmpi.compute(2_500.0)  # push virtual time past t=100 everywhere
            hmpi.comm_world.barrier()
            hmpi.recon()
            second = hmpi.state.netmodel.speed_of_machine(1)
            return (first, second)

        res = run_hmpi(app, cluster)
        first, second = res.results[0]
        assert first == pytest.approx(20.0, rel=0.05)
        assert second == pytest.approx(100.0, rel=0.05)
