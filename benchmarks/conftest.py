"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one figure (or ablation) of the paper: it runs
the sweep once inside pytest-benchmark (wall-time of the simulation is the
benchmarked quantity; the *virtual* times are the scientific output), then
reports the series through the ``report`` fixture, which prints it and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can quote it.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see tables live.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run the quick performance-regression smoke checks "
             "(compare against benchmarks/baselines/*.json)",
    )


@pytest.fixture
def smoke(request) -> bool:
    """Whether the smoke regression checks were requested."""
    return request.config.getoption("--smoke")


class Reporter:
    def __init__(self, name: str):
        self.name = name
        self.chunks: list[str] = []

    def emit(self, text: str) -> None:
        """Print a block and queue it for the results file."""
        print(f"\n{text}")
        self.chunks.append(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n\n".join(self.chunks) + "\n")


@pytest.fixture
def report(request):
    reporter = Reporter(request.node.name)
    yield reporter
    if reporter.chunks:
        reporter.flush()
