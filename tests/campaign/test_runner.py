"""The campaign runner and the three shipped drivers, end to end."""

import pathlib

import pytest

from repro.campaign import CampaignConfig, load_config, run_campaign

CAMPAIGNS = pathlib.Path(__file__).parent.parent.parent \
    / "examples" / "campaigns"


def run(raw):
    return run_campaign(CampaignConfig(raw))


class TestRunner:
    def test_every_cell_gets_a_row(self):
        w = run({
            "name": "t", "app": "timeof_em3d",
            "fixed": {"p": 3, "total_nodes": 600},
            "axes": {"mapper": ["greedy", "default"]},
        })
        assert len(w.rows) == 2
        assert all(r["status"] == "ok" for r in w.rows)
        assert all(r["metrics"]["predicted_time"] > 0 for r in w.rows)

    def test_library_error_becomes_typed_error_row(self):
        # p larger than the cluster is a scenario-level CampaignError
        # raised inside the driver: the sweep records it and continues.
        w = run({
            "name": "t", "app": "iterative",
            "fixed": {"cluster": {"kind": "uniform", "speeds": [100.0] * 3},
                      "n": 12, "niter": 4, "chunk": 4},
            "axes": {"p": [2, 99]},
        })
        by_p = {r["cell"]["p"]: r for r in w.rows}
        assert by_p[2]["status"] == "ok"
        assert by_p[99]["status"] == "error"
        assert "CampaignError" in by_p[99]["error"]

    def test_writes_jsonl_and_summary(self, tmp_path):
        cfg = CampaignConfig({
            "name": "t", "app": "timeof_em3d",
            "fixed": {"p": 3, "total_nodes": 600},
            "axes": {"mapper": ["greedy"]},
        })
        run_campaign(cfg, tmp_path / "out")
        assert (tmp_path / "out" / "results.jsonl").exists()
        assert (tmp_path / "out" / "summary.json").exists()


class TestJacobiFTDriver:
    def test_fault_free_and_death_cells(self):
        w = run({
            "name": "t", "app": "jacobi_ft",
            "fixed": {"cluster": {"kind": "uniform", "speeds": [100.0] * 4},
                      "n": 18, "niter": 12},
            "axes": {"deaths": [None, {"2": 0.04}]},
        })
        free, dead = w.rows
        assert free["metrics"]["repairs"] == 0
        assert free["metrics"]["bitwise_ok"] is True
        assert dead["metrics"]["repairs"] >= 1
        assert dead["metrics"]["bitwise_ok"] is True
        assert 2 in dead["metrics"]["dead_ranks"]

    def test_host_death_is_typed_not_a_crash(self):
        w = run({
            "name": "t", "app": "jacobi_ft",
            "fixed": {"cluster": {"kind": "uniform", "speeds": [100.0] * 4},
                      "n": 18, "niter": 12},
            "axes": {"deaths": [{"0": 0.03}]},
        })
        (row,) = w.rows
        assert row["status"] == "ok"          # run completed, outcome typed
        assert row["metrics"]["recovered"] is False
        assert row["metrics"]["error"]


class TestIterativeDriver:
    CHURN_FIXED = {
        "cluster": {"kind": "uniform", "speeds": [100, 40, 40, 40, 40, 400]},
        "n": 24, "niter": 24, "p": 4, "chunk": 4,
        "churn": [{"t": 0.0, "op": "leave", "machine": 5},
                  {"t": 0.02, "op": "join", "machine": 5}],
    }

    def test_churn_campaign_completes_typed_for_every_policy(self):
        w = run({
            "name": "t", "app": "iterative", "fixed": self.CHURN_FIXED,
            "axes": {"policy": ["never", "on-failure", "periodic"]},
        })
        assert len(w.rows) == 3
        for r in w.rows:
            assert r["status"] == "ok"
            assert r["metrics"]["outcome"] == "done"
            assert r["metrics"]["iterations"] == 24
            assert r["metrics"]["churn_applied"] == 2

    def test_periodic_reselection_beats_never_under_churn(self):
        # The dynamic-world acceptance scenario: a 4x-fast machine is
        # absent at the initial selection and joins early.  Periodic
        # re-selection drafts it; "never" is stuck with the slow group.
        w = run({
            "name": "t", "app": "iterative", "fixed": self.CHURN_FIXED,
            "axes": {"policy": ["never", "periodic"]},
        })
        by = {r["cell"]["policy"]: r["metrics"] for r in w.rows}
        assert by["periodic"]["reselections"] > 0
        assert by["never"]["reselections"] == 0
        assert by["periodic"]["makespan"] < by["never"]["makespan"]
        assert 5 in (by["periodic"]["final_group"] or [])
        assert 5 not in (by["never"]["final_group"] or [])

    def test_on_failure_policy_repairs_through_a_death(self):
        w = run({
            "name": "t", "app": "iterative",
            "fixed": {"cluster": {"kind": "uniform", "speeds": [100.0] * 5},
                      "n": 18, "niter": 12, "p": 4, "chunk": 4,
                      "deaths": {"2": 0.05}},
            "axes": {"policy": ["on-failure", "never"]},
        })
        by = {r["cell"]["policy"]: r["metrics"] for r in w.rows}
        assert by["on-failure"]["outcome"] == "done"
        assert by["on-failure"]["repairs"] >= 1
        # "never" hits the same death and ends with a typed failure.
        assert by["never"]["outcome"] == "failed"
        assert by["never"]["error"]

    def test_join_of_failed_machine_is_skipped_typed(self):
        # Machine 2 dies, then is scheduled to "join": impossible now —
        # the event must be skipped (counted), never crash the cell.
        w = run({
            "name": "t", "app": "iterative",
            "fixed": {"cluster": {"kind": "uniform", "speeds": [100.0] * 5},
                      "n": 18, "niter": 12, "p": 3, "chunk": 4,
                      "deaths": {"2": 0.02},
                      "churn": [{"t": 0.05, "op": "join", "machine": 2}]},
            "axes": {"policy": ["on-failure"]},
        })
        (row,) = w.rows
        assert row["status"] == "ok"
        assert row["metrics"]["outcome"] == "done"
        assert row["metrics"]["churn_skipped"] == 1

    def test_time_varying_load_slows_the_never_policy(self):
        # A heavy square-wave load on a selected machine: the world got
        # slower than the initial selection assumed.
        base = {"cluster": {"kind": "uniform", "speeds": [100.0] * 4},
                "n": 24, "niter": 16, "p": 4, "chunk": 4}
        quiet = run({"name": "t", "app": "iterative", "fixed": base,
                     "axes": {"policy": ["never"]}})
        loaded = run({"name": "t", "app": "iterative",
                      "fixed": {**base, "loads": {
                          "1": {"kind": "constant", "share": 0.25}}},
                      "axes": {"policy": ["never"]}})
        assert loaded.rows[0]["metrics"]["makespan"] \
            > quiet.rows[0]["metrics"]["makespan"]


class TestShippedCampaignFiles:
    @pytest.mark.parametrize("name", [
        "mapper_ablation", "ft_sweep", "churn_reselect", "ci_smoke"])
    def test_configs_load_and_expand(self, name):
        cfg = load_config(CAMPAIGNS / f"{name}.json")
        specs = cfg.expand()
        assert len(specs) == cfg.n_runs > 1

    def test_mapper_ablation_matches_the_bench_bitwise(self):
        # The campaign port of benchmarks/bench_ablation_mapper.py must
        # reproduce its predicted times exactly.
        cfg = load_config(CAMPAIGNS / "mapper_ablation.json")
        w = run_campaign(cfg)
        by = {r["cell"]["mapper"]: r["metrics"]["predicted_time"]
              for r in w.rows}
        from repro.apps.em3d import bind_em3d_model, generate_problem
        from repro.cluster import paper_network
        from repro.core import NetworkModel
        from repro.core.mapper import resolve_mapper
        problem = generate_problem(p=7, total_nodes=21_000, seed=5,
                                   boundary_fraction=0.3)
        model = bind_em3d_model(problem, 100)
        cluster = paper_network()
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        for name in ("greedy", "refine", "default", "exhaustive"):
            mapping = resolve_mapper(name).select(
                model, netmodel, list(range(cluster.size)),
                {model.parent_index(): 0})
            assert by[name] == mapping.time, name

    def test_ci_smoke_matches_committed_baseline(self):
        from repro.campaign import check_against_baseline, load_baseline
        cfg = load_config(CAMPAIGNS / "ci_smoke.json")
        w = run_campaign(cfg)
        baseline = load_baseline(
            CAMPAIGNS.parent.parent / "benchmarks" / "baselines"
            / "campaign_smoke.json")
        assert check_against_baseline(w.rows, baseline) == []


class TestEm3dReconDriver:
    RAW = {
        "name": "t", "app": "em3d_recon",
        "fixed": {"cluster": {"kind": "uniform",
                              "speeds": [100.0, 150.0, 80.0]},
                  "p": 3, "total_nodes": 900, "niter": 3, "k": 20,
                  "procs_per_machine": 1,
                  "loads": {"1": {"kind": "constant", "share": 0.5}}},
        "axes": {"recon": [False, True]},
    }

    def test_ablation_cells_complete_with_matching_checksums(self):
        w = run(self.RAW)
        assert len(w.rows) == 2
        assert all(r["status"] == "ok" for r in w.rows)
        for r in w.rows:
            m = r["metrics"]
            assert m["checksum_ok"] is True
            assert m["mpi_time"] > 0 and m["hmpi_time"] > 0
            assert m["predicted_time"] > 0
            assert len(m["group_machines"]) >= 1

    def test_same_seed_same_rows(self):
        assert run(self.RAW).jsonl() == run(self.RAW).jsonl()

    def test_stochastic_load_shared_by_both_variants(self):
        # A random-walk load is drawn from the per-cell scenario seed and
        # re-expanded for the MPI baseline and the HMPI run alike, so the
        # speedup compares like against like — and stays reproducible.
        raw = {
            "name": "t", "app": "em3d_recon",
            "fixed": {"cluster": {"kind": "uniform",
                                  "speeds": [100.0, 100.0, 100.0]},
                      "p": 3, "total_nodes": 900, "niter": 3, "k": 20,
                      "procs_per_machine": 1,
                      "loads": {"0": {"kind": "random_walk",
                                      "interval": 0.5}}},
            "axes": {"recon": [True]},
        }
        assert run(raw).jsonl() == run(raw).jsonl()

    def test_example_config_expands(self):
        config = load_config(CAMPAIGNS / "recon_ablation.json")
        specs = config.expand()
        assert [s.cell["recon"] for s in specs] == [False, True]


class TestGroupsizeAmdahlDriver:
    """The campaign port of benchmarks/bench_ablation_groupsize.py."""

    def test_serial_fraction_shrinks_the_tuned_group(self):
        w = run({
            "name": "t", "app": "groupsize_amdahl",
            "fixed": {"cluster": "paper", "max_p": 9},
            "axes": {"combine_cost": [0.0, 3.0, 10.0, 30.0]},
        })
        assert all(r["status"] == "ok" for r in w.rows)
        chosen = [r["metrics"]["tuned_p"] for r in w.rows]
        # Monotone trend from the bench: more serial work, fewer members.
        assert all(a >= b for a, b in zip(chosen, chosen[1:]))
        assert chosen[0] > chosen[-1]
        for r in w.rows:
            m = r["metrics"]
            assert m["predicted_time"] <= m["all_machines_time"] + 1e-9
            assert m["measured_time"] == pytest.approx(
                m["predicted_time"], rel=0.05)

    def test_matches_the_bench_prediction_bitwise(self):
        # Same family, same sweep, same mapper: the campaign cell must
        # reproduce tune_group_size exactly.
        w = run({
            "name": "t", "app": "groupsize_amdahl",
            "fixed": {"cluster": "paper", "max_p": 9},
            "axes": {"combine_cost": [10.0]},
        })
        from repro.campaign.drivers import _amdahl_family
        from repro.cluster import paper_network
        from repro.core import run_hmpi
        from repro.core.autotune import tune_group_size

        def app(hmpi):
            if hmpi.is_host():
                sweep = tune_group_size(
                    hmpi, _amdahl_family(900.0, 64 * 1024.0, 10.0),
                    range(1, 10))
                return sweep.best_p, sweep.best_time
            return None

        best_p, best_time = run_hmpi(app, paper_network()).results[0]
        m = w.rows[0]["metrics"]
        assert m["tuned_p"] == best_p
        assert m["predicted_time"] == best_time  # bitwise

    def test_bad_max_p_is_a_typed_error_row(self):
        w = run({
            "name": "t", "app": "groupsize_amdahl",
            "fixed": {"cluster": "paper", "max_p": 99},
            "axes": {"combine_cost": [0.0]},
        })
        assert w.rows[0]["status"] == "error"
        assert "max_p" in w.rows[0]["error"]

    def test_example_config_expands(self):
        config = load_config(CAMPAIGNS / "groupsize_ablation.json")
        specs = config.expand()
        assert [s.cell["combine_cost"] for s in specs] == \
            [0.0, 3.0, 10.0, 30.0]


class TestTopologyAxis:
    """Topology as a sweepable campaign axis (flat vs hierarchical)."""

    RAW = {
        "name": "t", "app": "timeof_em3d",
        "fixed": {"p": 7, "total_nodes": 2100, "problem_seed": 5,
                  "k": 100, "boundary_fraction": 0.3},
        "axes": {"cluster": [
            "paper",
            {"kind": "topology", "preset": "two_site",
             "machines_per_site": 4},
            {"kind": "topology", "preset": "clusters_of_clusters",
             "sites": 2, "subnets_per_site": 2, "machines_per_subnet": 2},
        ]},
    }

    def test_cells_sweep_flat_vs_hierarchical_worlds(self):
        w = run(self.RAW)
        assert [r["status"] for r in w.rows] == ["ok"] * 3
        flat, two_site, coc = (r["metrics"]["predicted_time"]
                               for r in w.rows)
        assert flat > 0 and two_site > 0 and coc > 0
        # The axis really swept different worlds: the heterogeneous flat
        # mesh and the homogeneous two-site hierarchy select differently.
        assert flat != two_site

    def test_topology_cells_are_reproducible(self):
        assert run(self.RAW).jsonl() == run(self.RAW).jsonl()
