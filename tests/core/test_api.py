"""The paper's flat C-style API."""

import pytest

from repro.core.api import (
    HMPI_COMM_WORLD_GROUP,
    HMPI_Get_comm,
    HMPI_Group_create,
    HMPI_Group_free,
    HMPI_Group_rank,
    HMPI_Group_size,
    HMPI_Is_free,
    HMPI_Is_host,
    HMPI_Is_member,
    HMPI_Recon,
    HMPI_Timeof,
    HMPI_Wtime,
)
from repro.core.runtime import run_hmpi
from repro.perfmodel import compile_model
from repro.util.errors import HMPIStateError

MODEL_SRC = """
algorithm Work(int p, int d[p]) {
  coord I=p;
  node {I>=0: bench*(d[I]);};
  parent[0];
}
"""


class TestPaperStyleProgram:
    def test_figure5_shape(self, paper_cluster):
        """A program written exactly in the paper's Figure 5 style."""
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            out = {}
            if HMPI_Is_member(hmpi, HMPI_COMM_WORLD_GROUP):
                HMPI_Recon(hmpi, volume=1.0)
            if HMPI_Is_host(hmpi) or HMPI_Is_free(hmpi):
                gid = HMPI_Group_create(hmpi, model, (3, [120, 60, 30]))
            if HMPI_Is_member(hmpi, gid):
                comm = HMPI_Get_comm(hmpi, gid)
                out["rank"] = HMPI_Group_rank(hmpi, gid)
                out["size"] = HMPI_Group_size(hmpi, gid)
                comm.barrier()
                HMPI_Group_free(hmpi, gid)
            out["t"] = HMPI_Wtime(hmpi)
            return out

        res = run_hmpi(main, paper_cluster)
        members = [r for r in res.results if "rank" in r]
        assert len(members) == 3
        assert {m["rank"] for m in members} == {0, 1, 2}
        assert all(m["size"] == 3 for m in members)

    def test_timeof_with_parameters(self, paper_cluster):
        model = compile_model(MODEL_SRC)

        def main(hmpi):
            if not HMPI_Is_host(hmpi):
                return None
            return HMPI_Timeof(hmpi, model, (3, [120, 60, 30]))

        res = run_hmpi(main, paper_cluster)
        assert res.results[0] > 0

    def test_bound_model_with_parameters_rejected(self, paper_cluster):
        model = compile_model(MODEL_SRC)
        bound = model.bind(2, [10, 20])

        def main(hmpi):
            if hmpi.is_host():
                with pytest.raises(HMPIStateError):
                    HMPI_Timeof(hmpi, bound, (2, [10, 20]))
            return True

        run_hmpi(main, paper_cluster)

    def test_world_group_membership_always_true(self, paper_cluster):
        def main(hmpi):
            return HMPI_Is_member(hmpi, HMPI_COMM_WORLD_GROUP)

        res = run_hmpi(main, paper_cluster)
        assert all(res.results)
