"""Benchmark factories for HMPI_Recon."""

import numpy as np
import pytest

from repro.cluster import uniform_network
from repro.core.recon import (
    kernel_benchmark,
    matmul_kernel,
    stencil_kernel,
    unit_benchmark,
)
from repro.mpi import run_mpi


class TestUnitBenchmark:
    def test_charges_declared_volume(self):
        cluster = uniform_network([100.0])
        bench = unit_benchmark(volume=5.0)

        def app(env):
            bench(env)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.results[0] == pytest.approx(0.05)


class TestKernelBenchmark:
    def test_runs_kernel_and_charges(self):
        calls = []
        cluster = uniform_network([50.0])
        bench = kernel_benchmark(lambda: calls.append(1), volume=2.0)

        def app(env):
            bench(env)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert calls == [1]
        assert res.results[0] == pytest.approx(0.04)


class TestKernels:
    def test_matmul_kernel_shape_and_determinism(self):
        k1 = matmul_kernel(r=5, seed=3)
        k2 = matmul_kernel(r=5, seed=3)
        out1, out2 = k1(), k2()
        assert out1.shape == (5, 5)
        assert (out1 == out2).all()

    def test_matmul_kernel_is_a_product(self):
        k = matmul_kernel(r=4, seed=0)
        out = k()
        assert np.isfinite(out).all()

    def test_stencil_kernel(self):
        k = stencil_kernel(k=32, seed=1)
        out = k()
        assert out.shape == (32,)
        assert np.isfinite(out).all()

    def test_stencil_deterministic(self):
        assert (stencil_kernel(16, seed=2)() == stencil_kernel(16, seed=2)()).all()
