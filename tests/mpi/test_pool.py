"""Master-worker task pool."""

import pytest

from repro.cluster import paper_network, uniform_network
from repro.mpi import run_mpi
from repro.mpi.pool import Task, WorkerPool, run_task_pool
from repro.util.errors import MPIError


def _double(x):
    return 2 * x


class TestTask:
    def test_negative_volume_rejected(self):
        with pytest.raises(MPIError):
            Task(volume=-1.0)


class TestPoolBasics:
    def test_results_in_task_order(self):
        def app(env):
            tasks = [Task(5.0, payload=i, fn=_double) for i in range(10)]
            return run_task_pool(env, tasks)

        res = run_mpi(app, uniform_network([100.0, 100.0, 100.0]))
        assert res.results[0] == [2 * i for i in range(10)]
        assert sum(res.results[1:]) == 10  # workers served everything

    def test_fewer_tasks_than_workers(self):
        def app(env):
            return run_task_pool(env, [Task(1.0, payload="only", fn=None)])

        res = run_mpi(app, uniform_network([10.0] * 5))
        assert res.results[0] == ["only"]
        assert sum(res.results[1:]) == 1

    def test_empty_bag(self):
        def app(env):
            return run_task_pool(env, [])

        res = run_mpi(app, uniform_network([10.0, 10.0]))
        assert res.results[0] == []
        assert res.results[1] == 0

    def test_needs_a_worker(self):
        def app(env):
            with pytest.raises(MPIError):
                WorkerPool(env.comm_world, env.compute)
            return True

        res = run_mpi(app, uniform_network([10.0]))
        assert res.results[0]

    def test_role_enforcement(self):
        def app(env):
            pool = WorkerPool(env.comm_world, env.compute)
            if env.rank == 0:
                with pytest.raises(MPIError):
                    pool.worker_loop()
                return pool.map([Task(1.0, payload=1, fn=None)])
            with pytest.raises(MPIError):
                pool.map([])
            return pool.worker_loop()

        res = run_mpi(app, uniform_network([10.0, 10.0]))
        assert res.results[0] == [1]


class TestDynamicBalancing:
    def test_fast_machines_serve_more(self):
        def app(env):
            tasks = [Task(20.0, payload=i, fn=None) for i in range(40)]
            return run_task_pool(env, tasks)

        res = run_mpi(app, paper_network())
        served = res.results[1:]  # workers are ranks 1..8
        # ws06 (speed 176) and ws07 (106) are ranks 6 and 7; ws08 (9) rank 8.
        assert served[5] > max(served[0:5])   # 176 beats every 46
        assert served[7] <= 2                 # speed-9 machine nearly idle
        assert sum(served) == 40

    def test_virtual_makespan_reflects_balancing(self):
        """Self-scheduling beats a uniform static split on the paper net."""

        def app(env):
            tasks = [Task(20.0, payload=i, fn=None) for i in range(40)]
            return run_task_pool(env, tasks)

        res = run_mpi(app, paper_network())
        # Uniform static split over workers 1..8: 5 tasks each; the speed-9
        # machine would need 5*20/9 = 11.1 s.  Self-scheduling must beat it
        # decisively.
        assert res.makespan < 6.0

    def test_payload_bytes_charged(self):
        def app(env):
            tasks = [Task(0.0, payload=b"", fn=None, nbytes=12_500_000)]
            out = run_task_pool(env, tasks)
            return out, env.wtime()

        res = run_mpi(app, uniform_network([100.0, 100.0]))
        _, t_master = res.results[0]
        assert t_master > 1.0  # the 1-second payload transfer is visible
