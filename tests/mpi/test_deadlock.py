"""Deterministic deadlock detection."""

import pytest

from repro.cluster import homogeneous_network
from repro.mpi import run_mpi
from repro.util.errors import DeadlockError


class TestDetection:
    def test_all_ranks_waiting_forever(self):
        def app(env):
            # everyone receives from the next rank; nobody sends
            return env.comm_world.recv((env.rank + 1) % env.size, 0)

        with pytest.raises(DeadlockError):
            run_mpi(app, homogeneous_network(3), timeout=10)

    def test_single_rank_self_wait(self):
        def app(env):
            return env.comm_world.recv(0, 0)

        with pytest.raises(DeadlockError):
            run_mpi(app, homogeneous_network(1), timeout=10)

    def test_partial_finish_then_stuck(self):
        def app(env):
            if env.rank == 0:
                return "done"  # finishes immediately, sends nothing
            return env.comm_world.recv(0, 0)

        with pytest.raises(DeadlockError):
            run_mpi(app, homogeneous_network(2), timeout=10)

    def test_wrong_tag_never_matches(self):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send("x", 1, tag=1)
                return None
            return c.recv(0, tag=2)

        with pytest.raises(DeadlockError):
            run_mpi(app, homogeneous_network(2), timeout=10)


class TestNoFalsePositives:
    def test_late_sender(self):
        """A rank that computes for a while before sending must not trip
        the detector while its peer waits."""

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                env.compute(500.0)
                c.send("eventually", 1)
                return None
            return c.recv(0)

        res = run_mpi(app, homogeneous_network(2), timeout=30)
        assert res.results[1] == "eventually"

    def test_chained_dependencies(self):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(0, 1)
                return c.recv(env.size - 1)
            v = c.recv(env.rank - 1)
            c.send(v + 1, (env.rank + 1) % env.size)
            return v

        res = run_mpi(app, homogeneous_network(5), timeout=30)
        # ranks 1..4 each increment: rank 0 receives 4 back.
        assert res.results[0] == 4

    def test_repeated_ping_pong(self):
        def app(env):
            c = env.comm_world
            other = 1 - env.rank
            v = env.rank
            for _ in range(50):
                if env.rank == 0:
                    c.send(v, other)
                    v = c.recv(other)
                else:
                    v = c.recv(other)
                    c.send(v + 1, other)
            return v

        res = run_mpi(app, homogeneous_network(2), timeout=30)
        assert res.results[0] == 50
