"""Parallel EM3D: MPI baseline vs HMPI — correctness and the paper's claim."""

import pytest

from repro.apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from repro.cluster import homogeneous_network, paper_network
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def problem():
    return generate_problem(p=6, total_nodes=6_000, seed=2)


@pytest.fixture(scope="module")
def paper9():
    return generate_problem(p=9, total_nodes=9_000, seed=1)


class TestCorrectness:
    def test_mpi_and_hmpi_identical_numerics(self, problem):
        """Placement must not affect the physics: bit-identical checksums."""
        mpi = run_em3d_mpi(paper_network(), problem, niter=3, k=100)
        hmpi = run_em3d_hmpi(paper_network(), problem, niter=3, k=100)
        assert mpi.checksum == hmpi.checksum

    def test_fewer_subbodies_than_machines(self, problem):
        res = run_em3d_mpi(paper_network(), problem, niter=2, k=100)
        assert len(res.group_world_ranks) == 6

    def test_too_many_subbodies_rejected(self):
        big = generate_problem(p=5, total_nodes=1_000, seed=0)
        with pytest.raises(ReproError):
            run_em3d_mpi(homogeneous_network(3), big, niter=1, k=10)
        with pytest.raises(ReproError):
            run_em3d_hmpi(homogeneous_network(3), big, niter=1, k=10)

    def test_checksum_independent_of_niter_split(self, problem):
        """Two runs of the same config agree (determinism)."""
        a = run_em3d_hmpi(paper_network(), problem, niter=3, k=100)
        b = run_em3d_hmpi(paper_network(), problem, niter=3, k=100)
        assert a.checksum == b.checksum
        assert a.algorithm_time == pytest.approx(b.algorithm_time)


class TestPaperClaim:
    def test_hmpi_faster_on_heterogeneous_network(self, paper9):
        mpi = run_em3d_mpi(paper_network(), paper9, niter=4, k=100)
        hmpi = run_em3d_hmpi(paper_network(), paper9, niter=4, k=100)
        speedup = mpi.algorithm_time / hmpi.algorithm_time
        # Paper Figure 9(b): ~1.5x.  Anything clearly above 1.2 passes.
        assert speedup > 1.2

    def test_group_keeps_parent_on_host(self, paper9):
        hmpi = run_em3d_hmpi(paper_network(), paper9, niter=2, k=100)
        assert hmpi.group_world_ranks[0] == 0

    def test_prediction_close_to_measurement(self, paper9):
        hmpi = run_em3d_hmpi(paper_network(), paper9, niter=4, k=100)
        assert hmpi.predicted_time == pytest.approx(
            hmpi.algorithm_time, rel=0.15
        )

    def test_no_gain_on_homogeneous_network(self, problem):
        """Control: with identical machines HMPI cannot beat MPI by much."""
        cluster_a = homogeneous_network(6, speed=50.0)
        cluster_b = homogeneous_network(6, speed=50.0)
        mpi = run_em3d_mpi(cluster_a, problem, niter=3, k=100)
        hmpi = run_em3d_hmpi(cluster_b, problem, niter=3, k=100)
        assert hmpi.algorithm_time == pytest.approx(mpi.algorithm_time, rel=0.05)


class TestProcsPerMachine:
    def test_two_slots_beat_one(self, paper9):
        one = run_em3d_hmpi(paper_network(), paper9, niter=3, k=100,
                            procs_per_machine=1)
        two = run_em3d_hmpi(paper_network(), paper9, niter=3, k=100,
                            procs_per_machine=2)
        assert two.algorithm_time <= one.algorithm_time + 1e-9
        assert two.checksum == one.checksum

    def test_slow_machine_skipped_with_slack(self, paper9):
        two = run_em3d_hmpi(paper_network(), paper9, niter=2, k=100,
                            procs_per_machine=2)
        # machine index 8 has speed 9; with 18 slots the mapper avoids it
        assert 8 not in two.group_machines

    def test_invalid_ppm(self, paper9):
        with pytest.raises(ReproError):
            run_em3d_hmpi(paper_network(), paper9, niter=1, k=100,
                          procs_per_machine=0)

    def test_prediction_holds_with_colocation(self, paper9):
        two = run_em3d_hmpi(paper_network(), paper9, niter=3, k=100,
                            procs_per_machine=2)
        assert two.predicted_time == pytest.approx(two.algorithm_time, rel=0.15)
