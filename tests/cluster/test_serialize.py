"""Cluster configuration serialization round trips."""

import pytest

from repro.cluster import (
    ConstantLoad,
    FAST_INTERCONNECT,
    Link,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
    TCP_100MBIT,
    multiprotocol_network,
    paper_network,
    uniform_network,
)
from repro.cluster.serialize import (
    cluster_from_dict,
    cluster_from_json,
    cluster_to_dict,
    cluster_to_json,
)
from repro.util.errors import ClusterError


class TestRoundTrip:
    def test_paper_network(self):
        original = paper_network()
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.speeds() == original.speeds()
        assert [m.name for m in restored.machines] == [m.name for m in original.machines]
        assert [m.os for m in restored.machines] == [m.os for m in original.machines]
        assert restored.transfer_time(0, 1, 10**6) == pytest.approx(
            original.transfer_time(0, 1, 10**6)
        )

    def test_json_round_trip(self):
        original = multiprotocol_network()
        restored = cluster_from_json(cluster_to_json(original))
        assert restored.transfer_time(0, 1, 10**7) == pytest.approx(
            original.transfer_time(0, 1, 10**7)
        )
        assert len(restored.link(0, 1).protocols) == 2

    def test_loopback_preserved(self):
        original = paper_network()
        restored = cluster_from_dict(cluster_to_dict(original))
        assert restored.link(2, 2).protocols[0].name == "shm"

    def test_fail_at_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.machines[1].fail_at = 3.5
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.machine(1).fail_at == 3.5
        assert restored.machine(0).fail_at is None

    def test_pinned_link_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.set_link(0, 1, Link([TCP_100MBIT, FAST_INTERCONNECT],
                              pinned="tcp-100mbit"))
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.link(0, 1).pinned == "tcp-100mbit"

    def test_asymmetric_links_preserved(self):
        c = uniform_network([10.0, 20.0])
        c.set_link(0, 1, Link.single(FAST_INTERCONNECT), symmetric=False)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.transfer_time(0, 1, 10**7) < restored.transfer_time(1, 0, 10**7)


class TestLoadModels:
    def test_constant(self):
        c = uniform_network([10.0])
        c.machines[0].load = ConstantLoad(0.25)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.machine(0).load.share_at(0.0) == 0.25

    def test_step(self):
        c = uniform_network([10.0])
        c.machines[0].load = StepLoad([(1.0, 0.5), (2.0, 0.75)], initial=0.9)
        restored = cluster_from_dict(cluster_to_dict(c))
        load = restored.machine(0).load
        assert load.share_at(0.5) == 0.9
        assert load.share_at(1.5) == 0.5
        assert load.share_at(2.5) == 0.75

    def test_square_wave(self):
        c = uniform_network([10.0])
        c.machines[0].load = SquareWaveLoad(period=4.0, high=1.0, low=0.3,
                                            phase=0.5)
        restored = cluster_from_dict(cluster_to_dict(c))
        for t in (0.0, 1.0, 2.0, 3.7):
            assert restored.machine(0).load.share_at(t) == \
                c.machines[0].load.share_at(t)

    def test_random_walk_refuses(self):
        c = uniform_network([10.0])
        c.machines[0].load = RandomWalkLoad(interval=1.0, seed=1)
        with pytest.raises(ClusterError, match="seed"):
            cluster_to_dict(c)


class TestErrors:
    def test_unknown_load_kind(self):
        with pytest.raises(ClusterError):
            cluster_from_dict({
                "machines": [{"name": "a", "speed": 1.0,
                              "load": {"kind": "martian"}}],
            })


class TestSinglePort:
    def test_single_port_round_trip(self):
        from repro.cluster import Cluster, Machine

        c = Cluster([Machine("a", 1.0), Machine("b", 2.0)], single_port=True)
        restored = cluster_from_dict(cluster_to_dict(c))
        assert restored.single_port is True

    def test_default_is_multi_port(self):
        restored = cluster_from_dict(cluster_to_dict(paper_network()))
        assert restored.single_port is False
