"""Heterogeneous Jacobi iteration (extension application)."""

import numpy as np
import pytest

from repro.apps.jacobi import (
    bind_jacobi_model,
    jacobi_model,
    jacobi_reference,
    partition_rows,
    run_jacobi_hmpi,
    run_jacobi_mpi,
)
from repro.cluster import paper_network, uniform_network
from repro.perfmodel import lint_model
from repro.util.errors import ReproError


class TestPartitionRows:
    def test_covers_interior(self):
        rows = partition_rows(100, [1.0, 2.0, 3.0])
        assert sum(rows) == 98
        assert all(r >= 1 for r in rows)

    def test_proportionality(self):
        rows = partition_rows(62, [1.0, 2.0, 3.0])
        assert rows == [10, 20, 30]

    def test_too_small(self):
        with pytest.raises(ReproError):
            partition_rows(2, [1.0])


class TestModel:
    def test_volumes(self):
        bm = bind_jacobi_model(3, 100, 100, [40, 30, 28])
        assert bm.node_volumes() == pytest.approx([40.0, 30.0, 28.0])
        links = bm.link_volumes()
        # chain: only neighbours communicate, N doubles each way
        assert links[0, 1] == links[1, 0] == 800.0
        assert links[1, 2] == links[2, 1] == 800.0
        assert links[0, 2] == 0.0

    def test_model_lints(self):
        bm = bind_jacobi_model(4, 100, 64, [20, 16, 14, 12])
        report = lint_model(bm)
        assert report.ok, report.issues

    def test_parent_is_first_panel(self):
        assert bind_jacobi_model(2, 10, 10, [4, 4]).parent_index() == 0


class TestReference:
    def test_boundaries_fixed(self):
        ref = jacobi_reference(20, 5, seed=1)
        # corners belong to the side walls (columns are assigned last)
        assert (ref[0, 1:-1] == 1.0).all()
        assert (ref[-1, 1:-1] == 1.0).all()
        assert (ref[:, 0] == -1.0).all()
        assert (ref[:, -1] == -1.0).all()

    def test_smoothing_reduces_variance(self):
        start = jacobi_reference(30, 0, seed=2)
        end = jacobi_reference(30, 50, seed=2)
        assert end[1:-1, 1:-1].var() != start[1:-1, 1:-1].var()
        assert np.isfinite(end).all()


class TestParallelCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_mpi_matches_reference(self, p):
        n, niter, seed = 40, 6, 4
        ref = jacobi_reference(n, niter, seed)
        res = run_jacobi_mpi(uniform_network([50.0] * 4), n=n, p=p,
                             niter=niter, seed=seed)
        assert np.array_equal(res.grid, ref)

    def test_hmpi_matches_reference(self):
        n, niter, seed = 60, 5, 7
        ref = jacobi_reference(n, niter, seed)
        res = run_jacobi_hmpi(paper_network(), n=n, p=5, niter=niter, seed=seed)
        assert np.array_equal(res.grid, ref)

    def test_uneven_panels_same_numerics(self):
        """HMPI's proportional decomposition must not change the result."""
        n, niter, seed = 50, 4, 9
        mpi = run_jacobi_mpi(paper_network(), n=n, p=4, niter=niter, seed=seed)
        hmpi = run_jacobi_hmpi(paper_network(), n=n, p=4, niter=niter, seed=seed)
        assert np.array_equal(mpi.grid, hmpi.grid)
        assert mpi.rows != hmpi.rows  # genuinely different decompositions


class TestPerformance:
    def test_hmpi_faster_on_paper_network(self):
        mpi = run_jacobi_mpi(paper_network(), n=120, p=6, niter=8, seed=3)
        hmpi = run_jacobi_hmpi(paper_network(), n=120, p=6, niter=8, seed=3)
        assert hmpi.algorithm_time < mpi.algorithm_time

    def test_prediction_close(self):
        hmpi = run_jacobi_hmpi(paper_network(), n=120, p=6, niter=8, seed=3)
        assert hmpi.predicted_time == pytest.approx(
            hmpi.algorithm_time, rel=0.1
        )

    def test_fast_machines_get_more_rows(self):
        hmpi = run_jacobi_hmpi(paper_network(), n=150, p=6, niter=4, seed=3)
        # panel 1 is placed on the fastest non-host machine (176): it must
        # hold more rows than the host's panel 0 (speed 46).
        assert hmpi.rows[1] > hmpi.rows[0]

    def test_too_many_panels(self):
        with pytest.raises(ReproError):
            run_jacobi_mpi(uniform_network([1.0, 2.0]), n=30, p=3, niter=1)
