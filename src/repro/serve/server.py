"""The asyncio job server: accept loop, dispatch, and degradation.

One event loop owns everything that isn't pure computation: HTTP
parsing, validation, quotas, the batch planner, job bookkeeping, and
the monitoring surface.  Computation happens in the
:class:`~repro.serve.workers.WorkerPool` lanes; results come back via
``call_soon_threadsafe`` so the loop is never blocked by an evaluation.

Request lifecycle::

    POST /v1/jobs ──validate──▶ JobStore.submit (429 on quota)
        └─▶ BatchPlanner ──(batch window)──▶ WorkerPool lane
                 └──────────── result ────▶ finish + wake waiters

A POST blocks up to ``wait`` seconds (default 30; ``wait: 0`` returns
202 immediately) and degrades to **504** when the result isn't ready —
the job keeps running and stays pollable at ``GET /v1/jobs/<id>``.  A
job-level ``timeout`` finishes the job as ``timeout`` (504) even if no
one is waiting; a worker result arriving after that is discarded.

The monitoring routes (``/metrics``, ``/snapshot``, ``/events``,
``/healthz``) are the exact :class:`~repro.obs.server.MonitorRoutes`
logic the standalone ``repro monitor`` endpoint uses, fed by this
server's own registry and event bus — the server is its own ops
dashboard.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from typing import Any

from ..obs import EventBus, MetricsRegistry, MonitorRoutes
from .batcher import BatchPlanner
from .jobs import Job, JobStore
from .protocol import (
    PROTOCOL_VERSION,
    BadRequest,
    NotFound,
    QuotaExceeded,
    ServeError,
    validate_request,
)
from .workers import WorkerPool

__all__ = ["ServeServer", "DEFAULT_WAIT", "BATCH_WINDOW"]

#: Seconds a POST waits for its result before degrading to 504.
DEFAULT_WAIT = 30.0

#: Seconds the planner lets concurrent submissions pile up before a
#: flush — long enough to coalesce a burst, invisible next to a
#: selection.
BATCH_WINDOW = 0.005

_MAX_BODY = 16 * 1024 * 1024
_MAX_HEADER_LINES = 100


class ServeServer:
    """Multi-tenant HMPI prediction/selection server.

    Use :meth:`start_background` for an in-process server (tests, the
    client facade) or :meth:`run` under ``asyncio.run`` (the CLI).
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0,
                 metrics: MetricsRegistry | None = None,
                 telemetry: EventBus | None = None,
                 max_inflight_per_tenant: int = 64,
                 max_inflight_total: int = 1024,
                 default_wait: float = DEFAULT_WAIT,
                 batch_window: float = BATCH_WINDOW):
        self._host = host
        self._port = port
        self.workers = workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.telemetry = telemetry if telemetry is not None else EventBus()
        self.store = JobStore(
            max_inflight_per_tenant=max_inflight_per_tenant,
            max_inflight_total=max_inflight_total)
        self.planner = BatchPlanner()
        self.default_wait = default_wait
        self.batch_window = batch_window
        self._routes = MonitorRoutes(
            snapshot_fn=self.metrics.snapshot,
            telemetry=self.telemetry,
            health_extra=self._health_extra)
        self._task_ids = itertools.count(1)
        self._dispatched: dict[str, list[Job]] = {}
        self._trace_futures: dict[str, asyncio.Future] = {}
        self._flush_armed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pool: WorkerPool | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = WorkerPool(self.workers, on_result=self._result_from_lane)
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port)
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]

    async def run(self, on_ready: Any = None) -> None:
        """Serve until cancelled (the CLI entry point).

        ``on_ready``, when given, is called once the socket is bound —
        after it the ``url``/``port`` properties report real values.
        """
        await self._start()
        if on_ready is not None:
            on_ready(self)
        assert self._server is not None
        try:
            async with self._server:
                await self._server.serve_forever()
        finally:
            if self._pool is not None:
                self._pool.stop()

    def start_background(self) -> "ServeServer":
        """Run the loop in a daemon thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        started = threading.Event()

        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self._start())
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("serve loop failed to start")
        return self

    def stop(self) -> None:
        if self._thread is None:
            if self._pool is not None:
                self._pool.stop()
            return
        loop = self._loop
        assert loop is not None

        def shutdown() -> None:
            if self._server is not None:
                self._server.close()
            loop.stop()

        loop.call_soon_threadsafe(shutdown)
        self._thread.join(timeout=10.0)
        if self._pool is not None:
            self._pool.stop()
        self._thread = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    def _health_extra(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "workers": self.workers,
            "jobs": self.store.counts(),
            "batcher": self.planner.stats_dict(),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await self._respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            except ConnectionError:
                return
            try:
                status, payload = await self._route(method, path, body)
            except ServeError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except Exception as exc:  # never kill the accept loop
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"}
            await self._respond(writer, status, payload)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ValueError("bad Content-Length") from None
        else:
            raise ValueError("too many headers")
        if length < 0 or length > _MAX_BODY:
            raise ValueError(f"body length {length} out of bounds")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: Any, ctype: str = "application/json") -> None:
        if isinstance(payload, _Raw):
            ctype = payload.ctype
            body = payload.text.encode("utf-8")
        elif isinstance(payload, (dict, list)):
            body = (json.dumps(payload) + "\n").encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  504: "Gateway Timeout"}.get(status, "Status")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, Any]:
        plain = path.split("?", 1)[0].rstrip("/") or "/"
        if plain == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "POST required"}
            return await self._submit(body)
        if plain.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "GET required"}
            rest = plain[len("/v1/jobs/"):]
            if rest.endswith("/trace"):
                return await self._trace(rest[:-len("/trace")])
            return self._job_status(rest)
        if method != "GET":
            return 405, {"error": "GET required"}
        handled = self._routes.handle(path)
        if handled is not None:
            status, ctype, text = handled
            return status, _Raw(text, ctype)
        return 404, {"error": f"no route {plain!r}"}

    # ------------------------------------------------------------------
    # job submission and completion
    # ------------------------------------------------------------------
    async def _submit(self, body: bytes) -> tuple[int, Any]:
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from exc
        request = validate_request(raw)
        tenant, op = request.tenant, request.op
        try:
            job = self.store.submit(request)
        except QuotaExceeded:
            self.metrics.counter("serve.jobs.rejected", tenant=tenant).inc()
            self.telemetry.emit("serve", "job.reject", tenant=tenant, op=op)
            raise
        job.done_event = asyncio.Event()
        self.metrics.counter("serve.jobs.submitted", tenant=tenant, op=op).inc()
        self.metrics.gauge("serve.jobs.inflight").set(self.store.inflight())
        self.telemetry.emit("serve", "job.submit",
                            job=job.id, tenant=tenant, op=op)
        self.planner.add(job)
        self._arm_flush()
        if request.timeout is not None:
            assert self._loop is not None
            self._loop.call_later(request.timeout, self._expire, job)

        wait = self.default_wait if request.wait is None else request.wait
        if wait <= 0:
            return 202, {"id": job.id, "status": job.status}
        try:
            await asyncio.wait_for(job.done_event.wait(), timeout=wait)
        except asyncio.TimeoutError:
            doc = job.to_dict()
            doc["error"] = f"result not ready within wait={wait}s; poll the id"
            return 504, doc
        return job.status_code, job.to_dict()

    def _expire(self, job: Job) -> None:
        if self.store.finish(
                job, status="timeout", status_code=504,
                error=f"job exceeded its {job.request.timeout}s budget"):
            self._finish_metrics(job)

    def _finish_metrics(self, job: Job) -> None:
        self.metrics.counter("serve.jobs.completed", tenant=job.tenant,
                             op=job.request.op, status=job.status).inc()
        self.metrics.gauge("serve.jobs.inflight").set(self.store.inflight())
        if job.finished_at is not None:
            self.metrics.histogram("serve.latency.seconds",
                                   op=job.request.op).observe(
                job.finished_at - job.submitted)
        if isinstance(job.result, dict) and "cache" in job.result:
            which = ("serve.cache.hits" if job.result["cache"] == "hit"
                     else "serve.cache.misses")
            self.metrics.counter(which, tenant=job.tenant).inc()
        self.telemetry.emit("serve", "job.finish", job=job.id,
                            tenant=job.tenant, op=job.request.op,
                            status=job.status)

    # ------------------------------------------------------------------
    # batching and dispatch
    # ------------------------------------------------------------------
    def _arm_flush(self) -> None:
        if self._flush_armed:
            return
        self._flush_armed = True
        assert self._loop is not None
        self._loop.create_task(self._flush_soon())

    async def _flush_soon(self) -> None:
        await asyncio.sleep(self.batch_window)
        self._flush_armed = False
        assert self._pool is not None
        for batch in self.planner.drain():
            jobs = [job for job in batch.jobs if not job.terminal]
            if not jobs:
                continue
            for job in jobs:
                self.store.mark_running(job)
            task_id = f"t{next(self._task_ids):08d}"
            self._dispatched[task_id] = jobs
            rep = jobs[0].request
            shard = rep.world_digest or rep.model_digest or "0"
            if len(jobs) > 1:
                self.metrics.counter("serve.jobs.coalesced").inc(len(jobs) - 1)
            self.metrics.counter("serve.batches.dispatched").inc()
            self.telemetry.emit("serve", "batch.dispatch", task=task_id,
                                jobs=len(jobs), key=batch.key[0])
            self._pool.submit(task_id, shard, {
                "kind": "batch",
                "requests": [job.request.to_dict() for job in jobs],
            })

    # Called from the collector thread — bounce into the loop.
    def _result_from_lane(self, task_id: str, outcomes: list[dict]) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._apply_outcomes, task_id, outcomes)

    def _apply_outcomes(self, task_id: str, outcomes: list[dict]) -> None:
        future = self._trace_futures.pop(task_id, None)
        if future is not None:
            if not future.done():
                future.set_result(outcomes[0])
            return
        jobs = self._dispatched.pop(task_id, None)
        if jobs is None:
            return
        for job, outcome in zip(jobs, outcomes):
            if "ok" in outcome:
                finished = self.store.finish(job, status="done",
                                             result=outcome["ok"])
            else:
                finished = self.store.finish(
                    job, status="error", error=outcome["error"],
                    status_code=int(outcome.get("status", 500)))
            if finished:
                self._finish_metrics(job)

    # ------------------------------------------------------------------
    # status and trace
    # ------------------------------------------------------------------
    def _job_status(self, job_id: str) -> tuple[int, Any]:
        job = self.store.get(job_id)
        return 200, job.to_dict()

    async def _trace(self, job_id: str) -> tuple[int, Any]:
        job = self.store.get(job_id)
        if job.request.op not in ("timeof", "group_create"):
            raise BadRequest(
                f"job {job_id} is a {job.request.op!r} job; traces exist "
                "for timeof and group_create jobs")
        if job.status != "done":
            raise NotFound(
                f"job {job_id} is {job.status}; trace exists once done")
        if job.trace is not None:
            return 200, job.trace
        assert self._pool is not None and self._loop is not None
        task_id = f"t{next(self._task_ids):08d}"
        future: asyncio.Future = self._loop.create_future()
        self._trace_futures[task_id] = future
        rep = job.request
        shard = rep.world_digest or rep.model_digest or "0"
        self._pool.submit(task_id, shard, {
            "kind": "trace", "requests": [rep.to_dict()]})
        try:
            outcome = await asyncio.wait_for(future, timeout=self.default_wait)
        except asyncio.TimeoutError as exc:
            self._trace_futures.pop(task_id, None)
            raise ServeError("trace export timed out") from exc
        if "error" in outcome:
            raise BadRequest(outcome["error"])
        job.trace = outcome["ok"]
        return 200, job.trace


class _Raw:
    """Marker for pre-rendered (non-JSON) response bodies."""

    def __init__(self, text: str, ctype: str):
        self.text = text
        self.ctype = ctype
