"""Engine-level failure semantics regressions.

Pins down the typed-error contract the repair runtime is built on:
survivors blocked on a dead peer get :class:`RankFailedError` (naming the
dead ranks), timed waits get :class:`OperationTimeoutError` with correct
clock semantics, a pure deadlock is still a :class:`DeadlockError`, and
transient link faults are seed-deterministic and surface as
:class:`LinkFaultError` past the retransmission budget.
"""

import pytest

from repro.cluster import (
    FaultSchedule,
    TransientFaultConfig,
    TransientLinkFaults,
    attach_transient_faults,
    inject_faults,
    uniform_network,
)
from repro.mpi import ANY_SOURCE, FTConfig, run_mpi
from repro.util.errors import (
    DeadlockError,
    LinkFaultError,
    MachineFailure,
    MPIError,
    OperationTimeoutError,
    RankFailedError,
)


def failing_cluster(n=3, fail=("m01",), at=0.5):
    cluster = uniform_network([100.0] * n)
    inject_faults(cluster, FaultSchedule({m: at for m in fail}))
    return cluster


class TestTypedFailureWakes:
    def test_recv_from_dead_rank_is_typed(self):
        """A survivor's pending recv on a dead source resolves to
        RankFailedError naming the dead rank — not a global deadlock."""
        cluster = failing_cluster()

        def app(env):
            if env.rank == 1:
                env.compute(200.0)  # dies at 0.5
                return None
            if env.rank == 0:
                try:
                    env.comm_world.recv(1)
                except RankFailedError as exc:
                    return ("typed", exc.ranks)
                return ("untyped",)
            return ("bystander",)

        res = run_mpi(app, cluster, timeout=20)
        kind, ranks = res.results[0]
        assert kind == "typed"
        assert 1 in ranks
        assert isinstance(res.exception_of(1), MachineFailure)

    def test_fail_fast_send_to_dead_machine(self):
        """With fail_fast_sends, a send whose arrival postdates the
        destination's death raises at the sender deterministically."""
        cluster = failing_cluster(at=0.1)

        def app(env):
            if env.rank == 0:
                env.compute(50.0)  # t = 0.5 > the death at 0.1
                try:
                    env.comm_world.send(list(range(1000)), 1)
                except RankFailedError as exc:
                    return ("typed", exc.ranks)
                return ("sent",)
            if env.rank == 1:
                env.compute(200.0)
                return None
            return "bystander"

        res = run_mpi(app, cluster, timeout=20,
                      ft=FTConfig(fail_fast_sends=True))
        assert res.results[0] == ("typed", (1,))

    def test_collective_with_dead_rank_is_typed(self):
        cluster = failing_cluster(at=0.2)

        def app(env):
            from repro.mpi.ops import SUM
            if env.rank == 1:
                env.compute(100.0)  # dies before joining
            try:
                return ("ok", env.comm_world.allreduce(1, SUM))
            except RankFailedError as exc:
                return ("typed", exc.ranks)

        res = run_mpi(app, cluster, timeout=20)
        assert res.results[0][0] == "typed"
        assert res.results[2][0] == "typed"
        assert 1 in res.results[0][1]


class TestOperationTimeouts:
    def test_recv_timeout_clock_semantics(self):
        """A timed-out recv raises at exactly post_time + timeout on the
        virtual clock, and only the timed waiter is woken."""
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            if env.rank == 0:
                t0 = env.wtime()
                with pytest.raises(OperationTimeoutError) as ei:
                    env.comm_world.recv(1, timeout=0.25)
                return (env.wtime() - t0, ei.value.timeout)
            env.compute(100.0)  # busy for 1 vs; never sends
            return "quiet"

        res = run_mpi(app, cluster, timeout=20)
        waited, reported = res.results[0]
        assert waited == pytest.approx(0.25)
        assert reported == pytest.approx(0.25)
        assert res.results[1] == "quiet"

    def test_default_recv_timeout_from_ftconfig(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            if env.rank == 0:
                with pytest.raises(OperationTimeoutError):
                    env.comm_world.recv(1)
                return env.wtime()
            env.compute(100.0)
            return None

        res = run_mpi(app, cluster, timeout=20,
                      ft=FTConfig(default_recv_timeout=0.125))
        assert res.results[0] == pytest.approx(0.125)

    def test_timeout_is_recoverable(self):
        """After a timeout the rank keeps running; a later matching recv
        still succeeds (the wake is not a poisoned state)."""
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            if env.rank == 0:
                with pytest.raises(OperationTimeoutError):
                    env.comm_world.recv(1, tag=1, timeout=0.1)
                return env.comm_world.recv(1, tag=2)
            env.compute(50.0)
            env.comm_world.send("late", 0, tag=2)
            return None

        res = run_mpi(app, cluster, timeout=20)
        assert res.results[0] == "late"


class TestDeadlockAccounting:
    def test_pure_deadlock_still_deadlocks(self):
        """No faults injected -> a genuine cycle is still a program bug
        and raises DeadlockError (the FT layer must not swallow it)."""
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            # both ranks recv first: classic head-to-head deadlock
            peer = 1 - env.rank
            return env.comm_world.recv(peer)

        with pytest.raises(DeadlockError):
            run_mpi(app, cluster, timeout=20)

    def test_deadlock_not_misattributed_to_faults(self):
        """A cycle among ranks whose machines are all healthy is a
        DeadlockError even when fault tolerance is configured."""
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            peer = 1 - env.rank
            return env.comm_world.recv(peer)

        with pytest.raises(DeadlockError):
            run_mpi(app, cluster, timeout=20, ft=FTConfig())

    def test_fault_fallout_not_reraised_as_bug(self):
        """Secondary RankFailedErrors are recorded per rank, not
        re-raised by run(): the campaign relies on this accounting."""
        cluster = failing_cluster(at=0.2)

        def app(env):
            if env.rank == 1:
                env.compute(100.0)
                return None
            env.comm_world.recv(1)  # typed wake propagates out of app
            return "unreachable"

        res = run_mpi(app, cluster, timeout=20)
        assert isinstance(res.exception_of(0), RankFailedError)
        assert isinstance(res.exception_of(1), MachineFailure)
        assert isinstance(res.exception_of(2), RankFailedError)
        assert res.failures and res.failures[0].machine == "m01"


class TestAnySourceUnderFaults:
    def test_any_source_prefers_delivered_messages(self):
        """ANY_SOURCE keeps matching deterministically (lowest-rank
        arrival order) while a machine dies: messages already delivered
        are drained before the dead peer poisons the wildcard."""
        cluster = failing_cluster(n=4, fail=("m03",), at=0.3)

        def app(env):
            from repro.mpi import Status
            if env.rank == 0:
                got, srcs = [], []
                try:
                    for _ in range(3):
                        st = Status()
                        got.append(env.comm_world.recv(ANY_SOURCE, status=st))
                        srcs.append(st.source)
                except RankFailedError as exc:
                    return ("partial", got, srcs, exc.ranks)
                return ("all", got, srcs)
            if env.rank == 3:
                env.compute(100.0)  # dies before sending
                env.comm_world.send("from-3", 0)
                return None
            env.compute(float(env.rank))  # ranks 1, 2 send early
            env.comm_world.send(f"from-{env.rank}", 0)
            return "sent"

        res = run_mpi(app, cluster, timeout=20)
        kind, got, srcs, dead = res.results[0]
        assert kind == "partial"
        # both live senders were drained, in deterministic arrival order
        assert got == ["from-1", "from-2"]
        assert srcs == [1, 2]
        assert 3 in dead

    def test_any_source_determinism_repeated(self):
        """Same schedule, same wildcard matching — run to run."""
        def once():
            cluster = failing_cluster(n=4, fail=("m02",), at=0.25)

            def app(env):
                from repro.mpi import Status
                if env.rank == 0:
                    out = []
                    try:
                        while len(out) < 3:
                            st = Status()
                            data = env.comm_world.recv(ANY_SOURCE, status=st)
                            out.append((st.source, data))
                    except RankFailedError:
                        out.append(("failed", None))
                    return out
                if env.rank != 2:
                    env.compute(float(env.rank) * 2.0)
                    env.comm_world.send(env.rank * 10, 0)
                else:
                    env.compute(100.0)
                return None

            return run_mpi(app, cluster, timeout=20).results[0]

        assert once() == once()


class TestTransientFaults:
    def _lossy_cluster(self, drop, seed, stop=None):
        cluster = uniform_network([100.0, 100.0])
        cfg = TransientFaultConfig(
            drop_prob=drop, **({"stop": stop} if stop is not None else {}))
        attach_transient_faults(cluster, TransientLinkFaults(cfg, seed=seed))
        return cluster

    def _pingpong(self, env, rounds=20):
        peer = 1 - env.rank
        for i in range(rounds):
            if env.rank == 0:
                env.comm_world.send(i, peer, tag=i)
                assert env.comm_world.recv(peer, tag=i) == i
            else:
                env.comm_world.send(env.comm_world.recv(peer, tag=i),
                                    peer, tag=i)
        return env.wtime()

    def test_masked_drops_charge_retry_time(self):
        clean = run_mpi(self._pingpong, self._lossy_cluster(0.0, 1),
                        timeout=20)
        lossy = run_mpi(self._pingpong, self._lossy_cluster(0.4, 1),
                        timeout=20,
                        ft=FTConfig(max_retries=16, retry_timeout=1e-3))
        assert lossy.results[0] > clean.results[0]

    def test_drop_schedule_is_seed_deterministic(self):
        ft = FTConfig(max_retries=16, retry_timeout=1e-3)
        a = run_mpi(self._pingpong, self._lossy_cluster(0.4, 7),
                    timeout=20, ft=ft)
        b = run_mpi(self._pingpong, self._lossy_cluster(0.4, 7),
                    timeout=20, ft=ft)
        c = run_mpi(self._pingpong, self._lossy_cluster(0.4, 8),
                    timeout=20, ft=ft)
        assert a.results[0] == b.results[0]
        assert a.makespan == b.makespan
        # a different seed draws a different drop pattern
        assert c.results[0] != a.results[0]

    def test_budget_exhaustion_is_typed(self):
        """drop_prob=1.0: every retransmission fails, so the sender gets
        LinkFaultError after exactly max_retries+1 attempts."""
        cluster = self._lossy_cluster(1.0, 0)

        def app(env):
            if env.rank == 0:
                try:
                    env.comm_world.send("doomed", 1)
                except LinkFaultError as exc:
                    return ("typed", exc.src, exc.dst, exc.attempts)
                return ("sent",)
            try:
                return ("got", env.comm_world.recv(0, timeout=5.0))
            except (RankFailedError, OperationTimeoutError) as exc:
                return ("peer-typed", type(exc).__name__)

        res = run_mpi(app, cluster, timeout=20,
                      ft=FTConfig(max_retries=3, retry_timeout=1e-3))
        assert res.results[0] == ("typed", 0, 1, 4)
        assert res.results[1][0] in ("peer-typed", "got")

    def test_fault_window_respected(self):
        """Messages sent after the window's stop time never fault."""
        cluster = self._lossy_cluster(1.0, 0, stop=0.05)

        def app(env):
            env.compute(10.0)  # move past the window (t = 0.1)
            if env.rank == 0:
                env.comm_world.send("clean", 1)
                return "sent"
            return env.comm_world.recv(0)

        res = run_mpi(app, cluster, timeout=20,
                      ft=FTConfig(max_retries=1))
        assert res.results[1] == "clean"


class TestFTConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(MPIError):
            FTConfig(max_retries=-1)
        with pytest.raises(MPIError):
            FTConfig(retry_timeout=-0.5)
        with pytest.raises(MPIError):
            FTConfig(backoff=0.5)

    def test_defaults_are_usable(self):
        cfg = FTConfig()
        assert cfg.max_retries >= 1
        assert cfg.fail_fast_sends
