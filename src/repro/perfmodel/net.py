"""Lowering PMDL schemes to place/transition communication nets.

A bound model's ``scheme`` is an imperative program, but (as the MP-net
line of work observes) everything it *does* is communication structure:
computations, transfers, and ``par``/``seq`` composition.  This module
unrolls one concrete binding of a scheme into an explicit net:

- **transitions** — one per compute action (``e%%[i]``), one per transfer
  action (``e%%[i]->[j]``), plus a fork/join pair per dynamic ``par``
  instance;
- **places** — the per-process sequencing states between consecutive
  transitions of the same process, one *message place* per material
  transfer (its token moves from sender to receiver), and the initial
  marking place of each participating process.

The unroll happens through the structural visitor hooks the interpreter
reports (:class:`~repro.perfmodel.interp.ActionVisitor.enter_par` and
friends), so every ``AbstractBoundModel`` lowers — DSL models, builder
models, and the scheme-less default walk alike.

Concurrency is series-parallel: each event carries the dynamic ``par``
path it was emitted under, and two events are concurrent exactly when
the first point where their paths diverge is two different branches of
the same ``par`` instance.  Everything else follows emission order.
From that order the net derives its **wait graph** — per-process chain
edges plus message edges from each material transfer to the receive
(compute) that consumes it — which is what the PM08x checks in
:mod:`repro.perfmodel.netcheck` analyze and what :meth:`CommNet.to_dot`
renders.

The same kept-event sequence, in the same order, is what
:class:`repro.core.seleng.CompiledTrace` compiles, which is why the
``NetTimeof`` evaluator can price candidates by longest path over this
structure and agree bitwise with the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from io import StringIO

from .model import AbstractBoundModel, LinearActionVisitor

__all__ = ["NetEvent", "ParInstance", "CommNet", "lower_model"]

#: Beyond this many unrolled events the checks in ``netcheck`` skip with
#: PM084 instead of risking a quadratic blow-up on a pathological binding.
MAX_NET_EVENTS = 20_000


@dataclass(frozen=True)
class NetEvent:
    """One unrolled transition of the net.

    ``kind`` is ``"compute"`` or ``"transfer"``; ``a`` is the acting
    (compute/source) processor and ``b`` the destination (transfers only,
    else ``-1``).  ``volume`` is benchmark units for computes and bytes
    for transfers.  ``kept`` mirrors the selection engine's drop rule:
    zero-byte and self transfers move no clock and take part in no wait.
    ``path`` is the dynamic ``par`` nesting — a tuple of
    ``(par_instance_id, branch_index)`` pairs, outermost first.
    """

    idx: int
    kind: str
    line: int
    percent: float
    a: int
    b: int
    volume: float
    kept: bool
    path: tuple[tuple[int, int], ...]

    @property
    def is_transfer(self) -> bool:
        return self.kind == "transfer"

    def label(self) -> str:
        where = f"{self.a}->{self.b}" if self.is_transfer else f"{self.a}"
        at = f" (line {self.line})" if self.line else ""
        return f"{self.percent:g}%%[{where}]{at}"


@dataclass(frozen=True)
class ParInstance:
    """One dynamic ``par`` loop instance (a fork/join transition pair)."""

    pid: int
    line: int
    depth: int
    branches: int


class _NetRecorder(LinearActionVisitor):
    """Records actions with their source line and dynamic ``par`` path."""

    def __init__(self, model: AbstractBoundModel):
        self._nv = model.node_volumes()
        self._lv = model.link_volumes()
        self.events: list[NetEvent] = []
        self.pars: dict[int, ParInstance] = {}
        self._stack: list[list[int]] = []  # [pid, branch, line] per open par
        self._line = 0
        self._next_pid = 0

    # -- structure hooks ------------------------------------------------
    def enter_par(self, line: int) -> None:
        pid = self._next_pid
        self._next_pid += 1
        self._stack.append([pid, -1, line])

    def next_par_branch(self, line: int) -> None:
        self._stack[-1][1] += 1

    def exit_par(self, line: int) -> None:
        pid, branch, at = self._stack.pop()
        self.pars[pid] = ParInstance(
            pid=pid, line=at, depth=len(self._stack), branches=branch + 1
        )

    def at_line(self, line: int) -> None:
        self._line = line

    def _path(self) -> tuple[tuple[int, int], ...]:
        return tuple((pid, branch) for pid, branch, _ in self._stack)

    # -- actions ---------------------------------------------------------
    def compute(self, percent: float, proc: int) -> None:
        volume = (percent / 100.0) * float(self._nv[proc])
        self.events.append(NetEvent(
            idx=len(self.events), kind="compute", line=self._line,
            percent=percent, a=proc, b=-1, volume=volume, kept=True,
            path=self._path(),
        ))
        self._line = 0

    def transfer(self, percent: float, src: int, dst: int) -> None:
        nbytes = (percent / 100.0) * float(self._lv[src, dst])
        kept = nbytes != 0.0 and src != dst
        self.events.append(NetEvent(
            idx=len(self.events), kind="transfer", line=self._line,
            percent=percent, a=src, b=dst, volume=nbytes, kept=kept,
            path=self._path(),
        ))
        self._line = 0


class CommNet:
    """The unrolled place/transition net of one bound model.

    Built by :func:`lower_model`.  Exposes the series-parallel
    concurrency order (:meth:`concurrent`, :meth:`ordered_before`), the
    wait graph (:meth:`chain_edges`, :meth:`match_receives`,
    :meth:`wait_edges`), cycle detection (:meth:`find_cycle`), and DOT
    export (:meth:`to_dot`).
    """

    def __init__(self, nproc: int, events: list[NetEvent],
                 pars: dict[int, ParInstance]):
        self.nproc = nproc
        self.events = events
        self.pars = pars
        self.kept = [e for e in events if e.kept]
        #: kept events per owning processor chain (transfers block their
        #: sender; the receiver's wait is a message edge, not a chain slot)
        self.proc_chain: dict[int, list[NetEvent]] = {}
        for e in self.kept:
            self.proc_chain.setdefault(e.a, []).append(e)
        self._chain_edges: list[tuple[int, int]] | None = None
        self._receives: dict[int, int | None] | None = None

    # ------------------------------------------------------------------
    # series-parallel concurrency order
    # ------------------------------------------------------------------
    def concurrent(self, x: NetEvent, y: NetEvent) -> bool:
        """True when the net orders neither event before the other."""
        for (pa, ba), (pb, bb) in zip(x.path, y.path):
            if pa != pb:
                return False  # different par instances compose in sequence
            if ba != bb:
                return True   # sibling branches of the same par
        return False

    def ordered_before(self, x: NetEvent, y: NetEvent) -> bool:
        """True when the net sequences ``x`` strictly before ``y``."""
        return x.idx < y.idx and not self.concurrent(x, y)

    # ------------------------------------------------------------------
    # wait graph
    # ------------------------------------------------------------------
    def chain_edges(self) -> list[tuple[int, int]]:
        """Per-process sequencing places as (pred idx, succ idx) edges.

        The covering relation of the SP order restricted to one
        processor's kept events: an edge means a place holding the
        processor's control token between the two transitions.
        """
        if self._chain_edges is None:
            edges: list[tuple[int, int]] = []
            for chain in self.proc_chain.values():
                for j, y in enumerate(chain):
                    for i in range(j - 1, -1, -1):
                        x = chain[i]
                        if not self.ordered_before(x, y):
                            continue
                        covered = any(
                            self.ordered_before(x, z) and self.ordered_before(z, y)
                            for z in chain[i + 1:j]
                        )
                        if not covered:
                            edges.append((x.idx, y.idx))
            self._chain_edges = edges
        return self._chain_edges

    def match_receives(self) -> dict[int, int | None]:
        """Map each kept transfer to the compute that receives it.

        The receive point of a message is the destination processor's
        first compute the net does *not* order strictly before the send —
        the compute whose start merges the arrival into the data-ready
        clock.  ``None`` marks an orphan: the message's token is never
        consumed.
        """
        if self._receives is None:
            computes: dict[int, list[NetEvent]] = {}
            for e in self.kept:
                if not e.is_transfer:
                    computes.setdefault(e.a, []).append(e)
            matches: dict[int, int | None] = {}
            for e in self.kept:
                if not e.is_transfer:
                    continue
                matches[e.idx] = next(
                    (c.idx for c in computes.get(e.b, ())
                     if not self.ordered_before(c, e)),
                    None,
                )
            self._receives = matches
        return self._receives

    def wait_edges(self) -> list[tuple[int, int]]:
        """The full wait graph: chain edges plus message edges.

        A chain edge (x, y) means transition y needs x's token on the
        shared processor; a message edge (send, compute) means the compute
        waits for the message place to be marked.  Sends are buffered
        (they never wait on the receiver), matching the execution engine.
        """
        edges = list(self.chain_edges())
        for send, recv in self.match_receives().items():
            if recv is not None:
                edges.append((send, recv))
        return edges

    def find_cycle(self) -> list[NetEvent] | None:
        """A cyclic wait in the net, or ``None`` when none exists.

        A cycle means no firing sequence can consume all tokens: every
        transition on it waits for another's output place.  Returns the
        cycle's events in wait order (each waits on the next).
        """
        succs: dict[int, list[int]] = {}
        for a, b in self.wait_edges():
            succs.setdefault(b, []).append(a)  # b waits on a
        color: dict[int, int] = {}  # 1 = on stack, 2 = done
        parent: dict[int, int] = {}
        by_idx = {e.idx: e for e in self.kept}

        for start in by_idx:
            if color.get(start):
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            color[start] = 1
            while stack:
                node, pos = stack[-1]
                nexts = succs.get(node, ())
                if pos < len(nexts):
                    stack[-1] = (node, pos + 1)
                    child = nexts[pos]
                    state = color.get(child)
                    if state == 1:
                        cycle = [child]
                        cur = node
                        while cur != child:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.reverse()
                        return [by_idx[i] for i in cycle]
                    if state is None:
                        color[child] = 1
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    color[node] = 2
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # net accounting
    # ------------------------------------------------------------------
    @property
    def ntransitions(self) -> int:
        """Kept action transitions plus a fork and join per ``par``."""
        return len(self.kept) + 2 * len(self.pars)

    @property
    def nplaces(self) -> int:
        """Chain places, initial places, and one message place per send."""
        nmsg = sum(1 for e in self.kept if e.is_transfer)
        return len(self.chain_edges()) + len(self.proc_chain) + nmsg

    def summary(self) -> str:
        orphans = sum(1 for r in self.match_receives().values() if r is None)
        return (f"net: {self.nproc} processors, {len(self.events)} actions "
                f"({len(self.kept)} kept), {len(self.pars)} par instance(s), "
                f"{self.ntransitions} transitions, {self.nplaces} places, "
                f"{orphans} orphan message(s)")

    # ------------------------------------------------------------------
    # DOT export
    # ------------------------------------------------------------------
    def to_dot(self, title: str = "commnet") -> str:
        """GraphViz DOT: boxes for transitions, circles for message
        places, diamonds for fork/join, solid edges for processor chains
        and dashed edges through message places."""
        out = StringIO()
        out.write(f'digraph "{title}" {{\n')
        out.write("  rankdir=LR;\n")
        out.write('  node [fontsize=10, fontname="Helvetica"];\n')
        for e in self.kept:
            if e.is_transfer:
                shape, text = "box", f"send {e.label()}"
            else:
                shape, text = "box", f"compute {e.label()}"
            out.write(f'  t{e.idx} [shape={shape}, label="{text}"];\n')
        for a, b in self.chain_edges():
            out.write(f"  t{a} -> t{b};\n")
        receives = self.match_receives()
        for e in self.kept:
            if not e.is_transfer:
                continue
            out.write(
                f'  m{e.idx} [shape=circle, width=0.15, '
                f'label="", xlabel="msg {e.a}->{e.b}"];\n'
            )
            out.write(f"  t{e.idx} -> m{e.idx} [style=dashed];\n")
            recv = receives.get(e.idx)
            if recv is not None:
                out.write(f"  m{e.idx} -> t{recv} [style=dashed];\n")
        for par in self.pars.values():
            fork, join = f"f{par.pid}", f"j{par.pid}"
            at = f" L{par.line}" if par.line else ""
            out.write(f'  {fork} [shape=diamond, label="fork{at}"];\n')
            out.write(f'  {join} [shape=diamond, label="join{at}"];\n')
            for branch in range(par.branches):
                members = [e for e in self.kept
                           if (par.pid, branch) in e.path]
                if not members:
                    continue
                out.write(f"  {fork} -> t{members[0].idx} [style=dotted];\n")
                out.write(f"  t{members[-1].idx} -> {join} [style=dotted];\n")
        out.write("}\n")
        return out.getvalue()


def lower_model(model: AbstractBoundModel) -> CommNet:
    """Unroll a bound model's scheme into its communication net."""
    recorder = _NetRecorder(model)
    model.walk_scheme(recorder)
    return CommNet(model.nproc, recorder.events, recorder.pars)
