"""EM3D problem instances: sub-bodies, nodes, and boundary dependencies.

The application (paper Section 3, after [11, 12]) simulates interacting
electric and magnetic fields on a three-dimensional object decomposed into
``p`` sub-bodies.  Each sub-body holds E nodes and H nodes; dependencies
form a bipartite graph, and the decomposition keeps most dependencies
local so that only *boundary* values cross sub-bodies.

An :class:`EM3DProblem` carries both the model-level quantities the HMPI
performance model needs (``d`` — nodes per sub-body; ``dep`` — boundary
values needed between each pair) and the concrete field data the parallel
algorithm updates (so MPI and HMPI runs can be checked for numerical
equality).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...util.errors import ReproError
from ...util.rng import make_rng

__all__ = ["SubBody", "EM3DProblem", "generate_problem"]


@dataclass
class SubBody:
    """Field data of one sub-body.

    ``e_values``/``h_values`` are the nodal field values; the weight arrays
    define each node's linear update from three neighbouring values (two
    local, one drawn from the boundary pool), which is the shape of the
    real EM3D inner loop at a scale the simulation can execute for real.
    """

    index: int
    e_values: np.ndarray
    h_values: np.ndarray
    e_weights: np.ndarray  # (n_e, 3)
    h_weights: np.ndarray  # (n_h, 3)

    @property
    def n_e(self) -> int:
        return len(self.e_values)

    @property
    def n_h(self) -> int:
        return len(self.h_values)

    @property
    def n_nodes(self) -> int:
        return self.n_e + self.n_h


@dataclass
class EM3DProblem:
    """A complete EM3D instance.

    Attributes
    ----------
    d:
        nodes per sub-body (the model's ``d`` parameter).
    dep_e:
        ``dep_e[i][j]`` — H nodal values of sub-body j that sub-body i needs
        to compute its E nodes.
    dep_h:
        ``dep_h[i][j]`` — E nodal values of sub-body j needed for H nodes.
    dep:
        total boundary values, ``dep_e + dep_h`` (the model's ``dep``).
    bodies:
        concrete field data per sub-body.
    """

    p: int
    d: np.ndarray
    dep_e: np.ndarray
    dep_h: np.ndarray
    bodies: list[SubBody] = field(default_factory=list)

    @property
    def dep(self) -> np.ndarray:
        return self.dep_e + self.dep_h

    @property
    def total_nodes(self) -> int:
        return int(self.d.sum())

    def validate(self) -> None:
        """Internal-consistency checks; raises on violation."""
        if self.d.shape != (self.p,):
            raise ReproError("d must have one entry per sub-body")
        for name, mat in (("dep_e", self.dep_e), ("dep_h", self.dep_h)):
            if mat.shape != (self.p, self.p):
                raise ReproError(f"{name} must be {self.p}x{self.p}")
            if np.diag(mat).any():
                raise ReproError(f"{name} must have a zero diagonal")
            if (mat < 0).any():
                raise ReproError(f"{name} must be non-negative")
        for i, body in enumerate(self.bodies):
            if body.n_nodes != self.d[i]:
                raise ReproError(
                    f"sub-body {i} has {body.n_nodes} nodes, d says {self.d[i]}"
                )
            # A sub-body cannot export more H values than it has H nodes.
            if self.dep_e[:, i].max(initial=0) > body.n_h:
                raise ReproError(f"sub-body {i} exports more H values than it has")
            if self.dep_h[:, i].max(initial=0) > body.n_e:
                raise ReproError(f"sub-body {i} exports more E values than it has")


def generate_problem(
    p: int,
    total_nodes: int,
    seed: int = 0,
    imbalance: float = 3.0,
    boundary_fraction: float = 0.05,
    extra_edges: int = 2,
) -> EM3DProblem:
    """Generate an irregular EM3D instance.

    Sub-body sizes are drawn with a geometric spread of about
    ``imbalance`` between the largest and smallest (the "inherent
    coarse-grained structure" of an irregular problem).  The dependency
    graph is a ring over sub-bodies plus ``extra_edges`` random chords;
    each edge carries boundary traffic of roughly ``boundary_fraction``
    times the geometric mean of the endpoint sizes — surface-to-volume
    scaling of a spatial decomposition.

    Deterministic given ``seed``.
    """
    if p < 1:
        raise ReproError("need at least one sub-body")
    if total_nodes < 4 * p:
        raise ReproError(f"total_nodes too small for {p} sub-bodies")
    rng = make_rng(seed)

    # Sub-body sizes: log-uniform spread, normalised to total_nodes.
    raw = np.exp(rng.uniform(0.0, np.log(max(imbalance, 1.0 + 1e-9)), size=p))
    sizes = np.maximum(4, np.floor(raw / raw.sum() * total_nodes).astype(int))
    # Largest-remainder style fixup to hit the exact total.
    deficit = total_nodes - int(sizes.sum())
    order = np.argsort(-raw)
    i = 0
    while deficit != 0:
        step = 1 if deficit > 0 else -1
        idx = order[i % p]
        if sizes[idx] + step >= 4:
            sizes[idx] += step
            deficit -= step
        i += 1

    # Dependency edges: ring + chords.
    edges: set[tuple[int, int]] = set()
    if p > 1:
        for i in range(p):
            edges.add(tuple(sorted((i, (i + 1) % p))))
        attempts = 0
        while len(edges) < min(p + extra_edges, p * (p - 1) // 2) and attempts < 100:
            a, b = rng.integers(0, p, size=2)
            if a != b:
                edges.add(tuple(sorted((int(a), int(b)))))
            attempts += 1

    dep_e = np.zeros((p, p), dtype=int)
    dep_h = np.zeros((p, p), dtype=int)
    for a, b in sorted(edges):
        base = boundary_fraction * float(np.sqrt(sizes[a] * sizes[b]))
        for i, j in ((a, b), (b, a)):
            dep_e[i, j] = max(1, int(base * rng.uniform(0.7, 1.3)))
            dep_h[i, j] = max(1, int(base * rng.uniform(0.7, 1.3)))

    bodies: list[SubBody] = []
    for i in range(p):
        n = int(sizes[i])
        n_e = n // 2
        n_h = n - n_e
        # Exports are capped by what the sub-body actually has.
        dep_e[:, i] = np.minimum(dep_e[:, i], n_h)
        dep_h[:, i] = np.minimum(dep_h[:, i], n_e)
        bodies.append(
            SubBody(
                index=i,
                e_values=rng.standard_normal(n_e),
                h_values=rng.standard_normal(n_h),
                e_weights=rng.uniform(0.1, 0.3, size=(n_e, 3)),
                h_weights=rng.uniform(0.1, 0.3, size=(n_h, 3)),
            )
        )
    np.fill_diagonal(dep_e, 0)
    np.fill_diagonal(dep_h, 0)

    problem = EM3DProblem(p=p, d=sizes, dep_e=dep_e, dep_h=dep_h, bodies=bodies)
    problem.validate()
    return problem
