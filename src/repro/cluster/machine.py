"""A heterogeneous workstation: base speed, external load, failure time.

Speed is expressed in **benchmark units per second** — the same relative
unit the paper uses ("the speeds of the workstations demonstrated on the
core computation of this algorithm are 46, 46, ... 176, 106, and 9").  The
absolute scale is arbitrary; only ratios matter for HMPI's decisions.

Compute-time integration handles piecewise-constant external load exactly:
a machine executing ``volume`` benchmark units starting at virtual time
``t0`` finishes at the time where the integral of
``base_speed * share(t) / nprocs`` reaches ``volume``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..util.errors import ClusterError, MachineFailure
from ..util.validate import check_positive
from .load import NO_LOAD, LoadModel

__all__ = ["Machine"]


@dataclass
class Machine:
    """One computer of the heterogeneous network.

    Parameters
    ----------
    name:
        Unique machine identifier (host name).
    speed:
        Base speed in benchmark units per second, with the machine idle.
    load:
        External-load model; defaults to a dedicated machine (share 1.0).
    fail_at:
        Optional virtual time at which the machine dies (fault injection).
    os:
        Cosmetic tag matching the paper's mixed Solaris/Linux network.
    """

    name: str
    speed: float
    load: LoadModel = field(default=NO_LOAD)
    fail_at: float | None = None
    os: str = "linux"

    def __post_init__(self) -> None:
        check_positive(self.speed, f"speed of machine {self.name!r}", ClusterError)
        if self.fail_at is not None and self.fail_at < 0:
            raise ClusterError(f"fail_at of machine {self.name!r} must be >= 0")

    # ------------------------------------------------------------------
    # speed queries
    # ------------------------------------------------------------------
    def effective_speed(self, t: float, nprocs: int = 1) -> float:
        """Instantaneous speed available to one of ``nprocs`` co-located ranks."""
        if nprocs < 1:
            raise ClusterError("nprocs must be >= 1")
        return self.speed * self.load.share_at(t) / nprocs

    def alive_at(self, t: float) -> bool:
        """Whether the machine has not yet failed at virtual time ``t``."""
        return self.fail_at is None or t < self.fail_at

    def check_alive(self, t: float) -> None:
        """Raise :class:`MachineFailure` if the machine is dead at ``t``."""
        if not self.alive_at(t):
            raise MachineFailure(self.name, t)

    # ------------------------------------------------------------------
    # compute-time integration
    # ------------------------------------------------------------------
    def compute_finish_time(self, start: float, volume: float, nprocs: int = 1) -> float:
        """Virtual time at which ``volume`` benchmark units complete.

        Integrates the piecewise-constant effective speed from ``start``
        until the accumulated work reaches ``volume``.  Raises
        :class:`MachineFailure` if the machine dies before completion.
        """
        if volume < 0:
            raise ClusterError(f"compute volume must be >= 0, got {volume}")
        if volume == 0:
            self.check_alive(start)
            return start
        self.check_alive(start)
        t = start
        remaining = volume
        while True:
            rate = self.effective_speed(t, nprocs)
            seg_end = self.load.next_change_after(t)
            if self.fail_at is not None:
                seg_end = min(seg_end, self.fail_at)
            if rate <= 0:
                raise ClusterError(
                    f"machine {self.name!r} has non-positive effective speed at t={t}"
                )
            needed = remaining / rate
            if math.isinf(seg_end) or t + needed <= seg_end:
                finish = t + needed
                if self.fail_at is not None and finish > self.fail_at:
                    raise MachineFailure(self.name, self.fail_at)
                return finish
            remaining -= rate * (seg_end - t)
            t = seg_end
            if self.fail_at is not None and t >= self.fail_at:
                raise MachineFailure(self.name, self.fail_at)

    def compute_duration(self, start: float, volume: float, nprocs: int = 1) -> float:
        """Convenience: ``compute_finish_time(start, volume) - start``."""
        return self.compute_finish_time(start, volume, nprocs) - start

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, speed={self.speed}, os={self.os!r})"
