"""MPI-baseline and HMPI drivers for parallel matrix multiplication.

The baseline (paper: "the standard MPI application using homogeneous 2D
block-cyclic data distribution") runs the identical algorithm with the
ScaLAPACK distribution on the first m² world processes in rank order.

The HMPI version follows Figure 8: Recon with the serial r×r
multiplication benchmark, a Timeof sweep to choose the optimal generalized
block size, Group_create with the Figure 7 model, then the algorithm on
the created group with the heterogeneous distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster.network import Cluster
from ...core.mapper import Mapper
from ...core.recon import kernel_benchmark, matmul_kernel
from ...core.runtime import HMPI, run_hmpi
from ...mpi.launcher import MPIEnv, run_mpi
from ...mpi.ops import SUM
from ...util.errors import ReproError
from .algorithm import matmul_algorithm
from .distribution import (
    BlockDistribution,
    heterogeneous_distribution,
    homogeneous_distribution,
)
from .model import bind_matmul_model

__all__ = [
    "MatmulRunResult",
    "speed_grid",
    "candidate_block_sizes",
    "run_matmul_mpi",
    "run_matmul_hmpi",
]


@dataclass
class MatmulRunResult:
    """Outcome of one parallel matrix-multiplication run."""

    algorithm_time: float
    makespan: float
    checksum: float                    # sum of all C entries
    group_world_ranks: tuple[int, ...]
    block_size_l: int                  # generalized block size used
    predicted_time: float | None = None
    distribution: BlockDistribution | None = None


def speed_grid(speeds: list[float], m: int, host_machine: int = 0) -> np.ndarray:
    """Arrange machine speeds into the m×m grid the distribution assumes.

    The host's machine takes grid position (0, 0) — the model pins
    ``parent[0,0]`` to the host — and the remaining machines fill the grid
    in descending speed order, which gives the mapper a consistent target:
    abstract processor volumes are proportional to exactly these speeds.
    """
    if len(speeds) < m * m:
        raise ReproError(f"need {m * m} machines for an {m}x{m} grid")
    rest = sorted(
        (s for i, s in enumerate(speeds) if i != host_machine), reverse=True
    )
    ordered = [speeds[host_machine]] + rest[: m * m - 1]
    return np.array(ordered, dtype=float).reshape(m, m)


def candidate_block_sizes(n: int, m: int) -> list[int]:
    """Generalized block sizes to sweep: divisors of n in [m, n]."""
    return [l for l in range(m, n + 1) if n % l == 0]


def _timed_region(comm, compute, dist, r, seed):
    comm.barrier()
    t0 = comm.wtime()
    c_blocks = matmul_algorithm(compute, comm, dist, r, seed)
    comm.barrier()
    elapsed = comm.wtime() - t0
    local_sum = float(sum(b.sum() for b in c_blocks.values()))
    total = comm.allreduce(local_sum, SUM)
    return total, elapsed


def run_matmul_mpi(
    cluster: Cluster,
    n: int,
    r: int,
    m: int = 3,
    seed: int = 0,
    timeout: float | None = 300.0,
    *,
    engine: str | None = None,
) -> MatmulRunResult:
    """Homogeneous 2D block-cyclic baseline on the first m² processes."""
    if m * m > cluster.size:
        raise ReproError(f"grid {m}x{m} needs {m * m} machines, "
                         f"cluster has {cluster.size}")
    dist = homogeneous_distribution(n, m)

    def app(env: MPIEnv):
        me = env.rank
        executing = 1 if me < m * m else 0
        grid_comm = env.comm_world.split(executing, key=me)
        if not executing:
            return None
        total, elapsed = _timed_region(grid_comm, env.compute, dist, r, seed)
        ranks = grid_comm.group.world_ranks
        grid_comm.free()
        return (total, elapsed, ranks)

    result = run_mpi(app, cluster, timeout=timeout, engine=engine)
    total, elapsed, ranks = result.results[0]
    return MatmulRunResult(
        algorithm_time=elapsed,
        makespan=result.makespan,
        checksum=total,
        group_world_ranks=tuple(ranks),
        block_size_l=m,
        distribution=dist,
    )


def run_matmul_hmpi(
    cluster: Cluster,
    n: int,
    r: int,
    m: int = 3,
    l: int | None = None,
    seed: int = 0,
    mapper: Mapper | None = None,
    recon: bool = True,
    timeout: float | None = 300.0,
    obs=None,
    *,
    engine: str | None = None,
) -> MatmulRunResult:
    """The HMPI version of Figure 8.

    With ``l=None`` the host sweeps candidate generalized block sizes with
    ``HMPI_Timeof`` and uses the predicted-fastest one, exactly like the
    paper's ``optimal_generalised_block_size`` loop.  An
    :class:`repro.obs.Observability` passed as ``obs`` collects metrics,
    runtime spans, and the predicted-vs-measured accuracy pair for the
    timed region.
    """
    if m * m > cluster.size:
        raise ReproError(f"grid {m}x{m} needs {m * m} machines, "
                         f"cluster has {cluster.size}")

    def app(hmpi: HMPI):
        if recon:
            hmpi.recon(kernel_benchmark(matmul_kernel(r)))

        # Host decides distribution + block size; everyone needs the same
        # model to participate in group_create, so broadcast the choice.
        if hmpi.is_host():
            speeds = hmpi.state.netmodel.speeds().tolist()
            grid = speed_grid(speeds, m, host_machine=hmpi.env.machine_index)
            if l is None:
                best_l, best_t = None, None
                for bsize in candidate_block_sizes(n, m):
                    dist_c = heterogeneous_distribution(n, bsize, grid)
                    t = hmpi.timeof(bind_matmul_model(dist_c, r), mapper=mapper)
                    if best_t is None or t < best_t:
                        best_l, best_t = bsize, t
                chosen_l = best_l
            else:
                chosen_l = l
            dist = heterogeneous_distribution(n, chosen_l, grid)
            predicted = hmpi.timeof(bind_matmul_model(dist, r), mapper=mapper)
            choice = (chosen_l, dist, predicted)
        else:
            choice = None
        chosen_l, dist, predicted = hmpi.comm_world.bcast(choice, root=0)

        gid = hmpi.group_create(bind_matmul_model(dist, r), mapper=mapper)
        out = None
        if gid.is_member:
            comm = gid.comm
            conc = gid.my_concurrency

            def member_compute(volume, _conc=conc):
                return hmpi.compute(volume, _conc)

            total, elapsed = _timed_region(comm, member_compute, dist, r, seed)
            if hmpi.is_host():
                hmpi.record_measured(bind_matmul_model(dist, r), elapsed)
            out = (total, elapsed, gid.world_ranks, chosen_l, predicted, dist)
            hmpi.group_free(gid)
        return out

    result = run_hmpi(app, cluster, mapper=mapper, timeout=timeout, obs=obs,
                      engine=engine)
    total, elapsed, ranks, chosen_l, predicted, dist = result.results[0]
    return MatmulRunResult(
        algorithm_time=elapsed,
        makespan=result.makespan,
        checksum=total,
        group_world_ranks=tuple(ranks),
        block_size_l=chosen_l,
        predicted_time=predicted,
        distribution=dist,
    )
