"""Virtual-time SPMD execution engine.

Each MPI rank runs as a real Python thread carrying a **logical clock** in
seconds of virtual time.  The engine charges:

- ``compute(volume)`` — the machine's load-integrated time for ``volume``
  benchmark units (speed shared between co-located ranks);
- a send — CPU overhead of one protocol latency to the sender; the message
  is stamped with ``arrival = departure + latency + nbytes/bandwidth`` on
  the fastest (or pinned) protocol of the machine-pair link;
- a receive — the receiver's clock becomes ``max(clock, arrival)``.

Messages between the same ordered rank pair never overtake each other in
virtual time (per-pair arrival monotonisation), matching MPI's
non-overtaking guarantee.  Links are contention-free across distinct pairs,
matching the paper's switched Ethernet "enabling parallel communications".

Blocking receives block the rank's *task*, so algorithm-level blocking
structure is mirrored exactly and no global clock synchronisation is
needed.  *When* rank tasks run is delegated to a pluggable
:class:`~repro.mpi.scheduler.Scheduler` (``engine="events"`` runs one
cooperatively scheduled task at a time off a virtual-time event heap —
the default; ``engine="threads"`` is the original preemptive
one-OS-thread-per-rank backend).  A deterministic stall detector fires
when every live rank is blocked: with eager sends nothing can ever
unblock them.  See ``docs/ENGINE.md`` for the event model.

**Failure semantics.**  Machine failures (fault injection) surface as
:class:`MachineFailure` in the affected ranks.  Survivors do not share that
fate: a send whose message would arrive after the destination's death
raises a local, typed :class:`RankFailedError` at the sender, and a stalled
receive whose source can never send again resolves to
:class:`RankFailedError` at the receiver.  Receives may carry a
*virtual-time* deadline (:class:`OperationTimeoutError` past it), and
transient link faults (``cluster.transient_faults``) are masked by seeded
retransmission with exponential backoff — :class:`LinkFaultError` once the
budget is exhausted.  Only a stall with no failure anywhere is a true
:class:`DeadlockError`, and that one stays terminal.  Knobs live in
:class:`FTConfig`.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from ..cluster.network import Cluster
from ..util.errors import (
    DeadlockError,
    LinkFaultError,
    MachineFailure,
    MPIError,
    OperationTimeoutError,
    RankFailedError,
)
from .datatypes import decode_payload, encode_payload
from .scheduler import make_scheduler, resolve_engine, resolve_ft
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Message", "PostedRecv", "ProcessState", "Engine", "FTConfig",
           "WORLD_CONTEXT", "ACK_CONTEXT"]

#: Context id of the world communicator.
WORLD_CONTEXT = 0
#: Internal context carrying synchronous-send acknowledgements; never used
#: by communicators, so ack traffic cannot match user receives.
ACK_CONTEXT = -1


@dataclass(frozen=True)
class FTConfig:
    """Fault-tolerance behaviour of the engine.

    ``max_retries``/``retry_timeout``/``backoff`` govern retransmission of
    messages dropped by transient link faults: attempt ``k`` (1-based)
    charges ``retry_timeout * backoff**(k-1)`` virtual seconds of timer
    wait to the sender before the copy goes out again.
    ``default_recv_timeout``, when set, bounds every blocking receive that
    does not pass its own ``timeout`` (virtual seconds).
    ``fail_fast_sends`` makes a send whose arrival would postdate the
    destination machine's death raise :class:`RankFailedError` at the
    sender instead of silently vanishing.
    """

    max_retries: int = 8
    retry_timeout: float = 1e-3
    backoff: float = 2.0
    default_recv_timeout: float | None = None
    fail_fast_sends: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise MPIError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_timeout < 0:
            raise MPIError(f"retry_timeout must be >= 0, got {self.retry_timeout}")
        if self.backoff < 1.0:
            raise MPIError(f"backoff must be >= 1, got {self.backoff}")


#: Exceptions that are expected fallout of injected faults; ``Engine.run``
#: records them per rank but does not re-raise them as program bugs.
_FAULT_FALLOUT = (MachineFailure, RankFailedError, LinkFaultError,
                  OperationTimeoutError)


class Message:
    """An in-flight or queued point-to-point message (world-rank addressed)."""

    __slots__ = ("context", "src", "dst", "tag", "payload", "nbytes",
                 "arrival", "ack_seq")

    def __init__(self, context: int, src: int, dst: int, tag: int,
                 payload: Any, nbytes: int, arrival: float,
                 ack_seq: int | None = None):
        self.context = context
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival = arrival
        self.ack_seq = ack_seq

    def matches(self, context: int, src: int, tag: int) -> bool:
        return (
            self.context == context
            and (src == ANY_SOURCE or self.src == src)
            and (tag == ANY_TAG or self.tag == tag)
        )

    def __repr__(self) -> str:
        return (f"Message(ctx={self.context}, {self.src}->{self.dst}, "
                f"tag={self.tag}, {self.nbytes}B, arrival={self.arrival:.6f})")


class PostedRecv:
    """A posted receive awaiting (or holding) its matched message."""

    __slots__ = ("context", "src", "tag", "message", "done")

    def __init__(self, context: int, src: int, tag: int):
        self.context = context
        self.src = src
        self.tag = tag
        self.message: Message | None = None
        self.done = False

    def accepts(self, msg: Message) -> bool:
        return msg.matches(self.context, self.src, self.tag)


class ProcessState:
    """Bookkeeping for one rank: clock, queues, thread, outcome."""

    __slots__ = (
        "rank", "machine_index", "clock", "cond", "unexpected", "posted",
        "last_arrival", "send_seq", "finished", "failed", "result",
        "exception", "thread", "waiting", "wake_exc",
    )

    def __init__(self, rank: int, machine_index: int, lock: threading.RLock):
        self.rank = rank
        self.machine_index = machine_index
        self.clock = 0.0
        self.cond = threading.Condition(lock)
        self.unexpected: deque[Message] = deque()
        self.posted: deque[PostedRecv] = deque()
        self.last_arrival: dict[int, float] = {}
        self.send_seq: dict[int, int] = {}
        self.finished = False
        self.failed = False
        self.result: Any = None
        self.exception: BaseException | None = None
        self.thread: threading.Thread | None = None
        # ("recv", PostedRecv, deadline), ("probe", (context, src, tag),
        # deadline) or ("ext", predicate, None) while the rank's thread is
        # inside a blocking wait; None otherwise.  ``deadline`` is an
        # absolute virtual time or None.
        self.waiting: tuple | None = None
        # Exception planted by the stall resolver for this rank to raise
        # from inside its blocking wait (cleared by the waiter).
        self.wake_exc: BaseException | None = None


class Engine:
    """Shared state of one SPMD run: processes, routing, contexts, clocks.

    Parameters
    ----------
    cluster:
        The HNOC the ranks execute on.
    placement:
        ``placement[world_rank]`` is the machine index the rank runs on.
        Several ranks may share a machine; they then share its speed.
    engine:
        scheduling backend name (``"events"`` or ``"threads"``); None
        resolves through :func:`repro.mpi.scheduler.resolve_engine`
        (``REPRO_ENGINE`` environment override, then the default).
    """

    def __init__(self, cluster: Cluster, placement: Sequence[int],
                 tracer: "object | None" = None,
                 ft: "FTConfig | dict | None" = None,
                 metrics: "object | None" = None,
                 engine: str | None = None,
                 telemetry: "object | None" = None):
        if not placement:
            raise MPIError("placement must map at least one rank")
        for m in placement:
            if not 0 <= m < cluster.size:
                raise MPIError(f"placement references unknown machine index {m}")
        self.cluster = cluster
        self.tracer = tracer
        # Optional obs.MetricsRegistry; collectives count fired algorithms
        # here when present.
        self.metrics = metrics
        # Optional obs.telemetry.EventBus; run() streams lifecycle events
        # (engine.run.start/finish with the scheduler self-profile) into
        # it when present.
        self.telemetry = telemetry
        ft = resolve_ft(ft)
        self.ft = ft if ft is not None else FTConfig()
        self.placement = list(placement)
        self.nprocs = len(placement)
        self.lock = threading.RLock()
        self.procs = [ProcessState(r, placement[r], self.lock) for r in range(self.nprocs)]
        self.machine_counts = [0] * cluster.size
        for m in placement:
            self.machine_counts[m] += 1
        self._started = False
        self.deadlocked = False
        self.failures: list[MachineFailure] = []
        #: World ranks currently blocked in :meth:`wait_until`.  External
        #: predicates are the one wait class that out-of-band state (a
        #: rank finishing, runtime bookkeeping) can satisfy without a
        #: message delivery, so schedulers re-check exactly these — and
        #: only these — at each rank finish.
        self.ext_waiters: set[int] = set()
        self._context_registry: dict[tuple, int] = {}
        self._next_context = WORLD_CONTEXT + 1
        self._sync_seq = 0
        self.backend = resolve_engine(engine)
        self.scheduler = make_scheduler(self.backend, self)

    @property
    def deterministic(self) -> bool:
        """Whether rank interleaving is virtual-time ordered (no OS races)."""
        return self.scheduler.deterministic

    # ------------------------------------------------------------------
    # context allocation (deterministic across ranks)
    # ------------------------------------------------------------------
    def allocate_context(self, key: tuple) -> int:
        """Context id for a communicator-creation event.

        All ranks participating in the same logical creation present the
        same ``key`` (derived from parent context, a per-comm creation
        counter, and color/group); the first caller allocates a fresh id
        and the rest look it up, so every rank agrees without extra
        messages.
        """
        with self.lock:
            ctx = self._context_registry.get(key)
            if ctx is None:
                ctx = self._next_context
                self._next_context += 1
                self._context_registry[key] = ctx
            return ctx

    # ------------------------------------------------------------------
    # virtual-time primitives
    # ------------------------------------------------------------------
    def compute(self, world_rank: int, volume: float,
                concurrency: int | None = None) -> float:
        """Advance the rank's clock by ``volume`` benchmark units of work.

        Returns the new clock.  Speed is the machine's base speed times its
        current load share, divided by ``concurrency`` — the number of
        ranks actively computing on the machine.  The default assumes every
        placed rank is active (true for SPMD phases like Recon); callers
        that know better (a group whose non-members are idle, waiting for
        the next group creation) pass the co-located member count, which is
        what HMPI's estimator assumes too.
        """
        proc = self.procs[world_rank]
        machine = self.cluster.machine(proc.machine_index)
        nshare = self.machine_counts[proc.machine_index] if concurrency is None else concurrency
        if nshare < 1:
            raise MPIError(f"concurrency must be >= 1, got {nshare}")
        start = proc.clock
        proc.clock = machine.compute_finish_time(start, volume, nshare)
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=world_rank, kind="compute", t0=start, t1=proc.clock,
                volume=volume,
            ))
        return proc.clock

    def vtime(self, world_rank: int) -> float:
        """Current virtual time of the rank (MPI_Wtime analogue)."""
        return self.procs[world_rank].clock

    def advance_clock(self, world_rank: int, seconds: float) -> float:
        """Advance the rank's clock by raw seconds (fixed-cost activities)."""
        if seconds < 0:
            raise MPIError(f"cannot advance clock by {seconds}")
        proc = self.procs[world_rank]
        proc.clock += seconds
        return proc.clock

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def post_send(self, src: int, dst: int, context: int, tag: int,
                  obj: Any, nbytes: int | None = None,
                  sync: bool = False) -> None:
        """Eager send: snapshot the payload, stamp arrival, deliver.

        With ``sync=True`` (MPI_Ssend semantics) the call additionally
        blocks until the receiver has matched and charged the message: the
        receiver returns a zero-byte acknowledgement whose arrival
        lower-bounds the sender's clock, so the rendezvous shows up in
        virtual time.

        Failure semantics: transient link faults (if the cluster carries a
        schedule) are masked by retransmission with backoff, charging the
        timer waits to the sender; exhausting the budget raises
        :class:`LinkFaultError`.  If the message would arrive after the
        destination machine's death, the sender gets a local
        :class:`RankFailedError` (``ft.fail_fast_sends``).
        """
        if not 0 <= dst < self.nprocs:
            raise MPIError(f"destination rank {dst} out of range")
        sproc = self.procs[src]
        smach = self.cluster.machine(sproc.machine_index)
        smach.check_alive(sproc.clock)
        payload, size = encode_payload(obj, nbytes)
        dmach_idx = self.placement[dst]
        dmach = self.cluster.machine(dmach_idx)
        link = self.cluster.link(sproc.machine_index, dmach_idx)
        proto = link.protocol_for(size)
        extra_delay = self._transient_delay(sproc, smach, dmach, src, dst)
        smach.check_alive(sproc.clock)  # retransmission timers take time too
        # Messages between one ordered rank pair serialise on their link:
        # a transfer starts when both the sender has issued it and the
        # previous transfer to the same destination has fully arrived.
        # This also gives MPI's non-overtaking guarantee for free, and it
        # is exactly the estimator's per-pair link-busy rule.
        depart = sproc.clock
        start = max(depart, sproc.last_arrival.get(dst, 0.0))
        arrival = start + proto.transfer_time(size) + extra_delay
        if self.ft.fail_fast_sends and not dmach.alive_at(arrival):
            raise RankFailedError(
                [dst], machine=dmach.name, vtime=dmach.fail_at,
                op=f"send from rank {src} to rank {dst}",
            )
        sproc.last_arrival[dst] = arrival
        if self.cluster.single_port:
            # The sender's interface is occupied until the transfer ends.
            sproc.clock = arrival
        else:
            # CPU-side cost of the send call only.
            sproc.clock = depart + proto.latency
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=src, kind="send", t0=depart, t1=sproc.clock,
                peer=dst, nbytes=size, tag=tag,
            ))
        ack_seq = None
        ack_pr = None
        if sync:
            with self.lock:
                ack_seq = self._sync_seq
                self._sync_seq += 1
            # Post the ack receive before delivering the payload so the
            # acknowledgement can never be lost to a race.
            ack_pr = self.post_recv(src, ACK_CONTEXT, dst, ack_seq)
        msg = Message(context, src, dst, tag, payload, size, arrival,
                      ack_seq=ack_seq)
        with self.lock:
            self._deliver(msg)
        if ack_pr is not None:
            # Rendezvous: the sender's clock advances to the ack's arrival.
            self.wait_recv(src, ack_pr)

    def _transient_delay(self, sproc: ProcessState, smach, dmach,
                         src: int, dst: int) -> float:
        """Resolve transient link faults for one logical message.

        Returns the extra arrival delay (jitter faults); charges
        retransmission timer waits for dropped copies to the sender's
        clock; raises :class:`LinkFaultError` past ``ft.max_retries``.
        Deterministic regardless of thread interleaving: the fault schedule
        is keyed on the per-pair message sequence number and the attempt
        counter, both interleaving-invariant.
        """
        tf = self.cluster.transient_faults
        if tf is None or smach is dmach:
            return 0.0
        seq = sproc.send_seq.get(dst, 0)
        sproc.send_seq[dst] = seq + 1
        attempt = 0
        while True:
            kind, extra = tf.outcome(src, dst, smach.name, dmach.name,
                                     seq, attempt, sproc.clock)
            if kind == "ok":
                return 0.0
            if kind == "delay":
                return extra
            attempt += 1
            if attempt > self.ft.max_retries:
                raise LinkFaultError(src, dst, attempt)
            wait_from = sproc.clock
            sproc.clock += self.ft.retry_timeout * (self.ft.backoff ** (attempt - 1))
            if self.tracer is not None:
                from .tracing import TraceEvent

                self.tracer.record(TraceEvent(
                    rank=src, kind="retransmit", t0=wait_from,
                    t1=sproc.clock, peer=dst,
                    label=f"attempt {attempt}",
                ))

    def _deliver(self, msg: Message) -> None:
        """Match against posted receives or queue as unexpected (lock held)."""
        dproc = self.procs[msg.dst]
        for pr in dproc.posted:
            if pr.accepts(msg):
                dproc.posted.remove(pr)
                pr.message = msg
                pr.done = True
                self.scheduler.wake(dproc, at=msg.arrival)
                return
        dproc.unexpected.append(msg)
        # Wake iprobe/probe (and wildcard recv) waiters.
        self.scheduler.wake(dproc, at=msg.arrival)

    def post_recv(self, dst: int, context: int, src: int, tag: int) -> PostedRecv:
        """Post a receive; matches an unexpected message immediately if any.

        Among queued matches the one with the smallest virtual arrival is
        taken.  For a fixed source this equals queue order (per-sender
        arrivals are monotone), and for wildcard receives it makes the
        match follow *virtual* time rather than the accident of real-time
        thread scheduling — a master self-scheduling over ANY_SOURCE then
        services the worker that (virtually) finished first.
        """
        pr = PostedRecv(context, src, tag)
        with self.lock:
            best = None
            for msg in self.procs[dst].unexpected:
                if pr.accepts(msg) and (best is None or msg.arrival < best.arrival):
                    best = msg
            if best is not None:
                self.procs[dst].unexpected.remove(best)
                pr.message = best
                pr.done = True
                return pr
            self.procs[dst].posted.append(pr)
        return pr

    def wait_recv(self, dst: int, pr: PostedRecv,
                  timeout: float | None = None) -> tuple[Any, Status]:
        """Block until ``pr`` completes; charge arrival time; decode payload.

        ``timeout`` is a *virtual-time* budget: if the receive can never
        complete and a deadline was set, the wait resolves to
        :class:`OperationTimeoutError` (clock advanced to the deadline)
        instead of participating in failure/deadlock resolution.  Falls
        back to ``ft.default_recv_timeout`` when None.
        """
        proc = self.procs[dst]
        if timeout is None:
            timeout = self.ft.default_recv_timeout
        deadline = None if timeout is None else proc.clock + timeout
        with self.lock:
            proc.waiting = ("recv", pr, deadline)
            try:
                while not pr.done:
                    self._wait_step(proc)
                # The receive was satisfied: a collateral wake planted
                # concurrently (stall resolution racing with the message
                # that saved us) is moot and must not leak into the next
                # operation.
                proc.wake_exc = None
            except BaseException:
                # A stale posted receive would steal the next matching
                # message; retract it before propagating.
                if pr in proc.posted:
                    proc.posted.remove(pr)
                raise
            finally:
                proc.waiting = None
            if pr.src == ANY_SOURCE and self.scheduler.deterministic:
                self._settle_wildcard(proc, pr)
            msg = pr.message
        assert msg is not None
        wait_from = proc.clock
        if msg.arrival > proc.clock:
            proc.clock = msg.arrival
        machine = self.cluster.machine(proc.machine_index)
        machine.check_alive(proc.clock)
        if msg.ack_seq is not None:
            # Synchronous send: acknowledge so the sender's rendezvous
            # completes; the ack costs one link latency back.
            back = self.cluster.link(proc.machine_index,
                                     self.placement[msg.src])
            ack = Message(ACK_CONTEXT, dst, msg.src, msg.ack_seq,
                          payload=encode_payload(None)[0], nbytes=0,
                          arrival=proc.clock + back.effective_latency())
            with self.lock:
                self._deliver(ack)
        if self.tracer is not None:
            from .tracing import TraceEvent

            self.tracer.record(TraceEvent(
                rank=dst, kind="recv", t0=wait_from, t1=proc.clock,
                peer=msg.src, nbytes=msg.nbytes, tag=msg.tag,
            ))
        status = Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes,
                        arrival_vtime=msg.arrival)
        return decode_payload(msg.payload), status

    def probe(self, dst: int, context: int, src: int, tag: int, block: bool,
              timeout: float | None = None) -> Status | None:
        """MPI_(I)probe: peek at the first matching unexpected message.

        ``timeout`` (blocking probes only) mirrors :meth:`wait_recv`.
        """
        proc = self.procs[dst]
        if timeout is None:
            timeout = self.ft.default_recv_timeout
        deadline = None if timeout is None else proc.clock + timeout
        if not block:
            # Cooperative backends: let ready peers run so a polling loop
            # observes progress between probes (no-op under "threads").
            self.scheduler.yield_now(proc)
        with self.lock:
            try:
                while True:
                    for msg in proc.unexpected:
                        if msg.matches(context, src, tag):
                            if msg.arrival > proc.clock:
                                proc.clock = msg.arrival
                            # Satisfied: drop any concurrently planted
                            # collateral wake (see wait_recv).
                            proc.wake_exc = None
                            return Status(source=msg.src, tag=msg.tag,
                                          nbytes=msg.nbytes, arrival_vtime=msg.arrival)
                    if not block:
                        return None
                    proc.waiting = ("probe", (context, src, tag), deadline)
                    self._wait_step(proc)
            finally:
                proc.waiting = None

    # ------------------------------------------------------------------
    # external waits (runtime-level blocking, e.g. group repair drains)
    # ------------------------------------------------------------------
    def wait_until(self, world_rank: int, predicate: Callable[[], bool],
                   label: str = "external condition") -> None:
        """Block ``world_rank`` until ``predicate()`` holds.

        For runtime-level rendezvous that are not message receives (the
        repair drain waits for every survivor of a broken group to report
        in).  The predicate is evaluated under the engine lock on every
        wake-up, so it must be fast and must not acquire other locks.
        The waiter participates in stall accounting: if nothing can ever
        satisfy the predicate, the run still terminates (typed error or
        deadlock), never hangs.  Callers that change predicate-relevant
        state outside engine messaging must call :meth:`poke`.
        """
        proc = self.procs[world_rank]
        with self.lock:
            proc.waiting = ("ext", predicate, None)
            self.ext_waiters.add(world_rank)
            try:
                while not predicate():
                    self._wait_step(proc)
            finally:
                proc.waiting = None
                self.ext_waiters.discard(world_rank)

    def poke(self) -> None:
        """Wake every blocked rank to re-evaluate its wait condition.

        Required after out-of-band state changes (e.g. the HMPI runtime
        marking ranks free/dead) that external-wait predicates observe.
        """
        with self.lock:
            self.scheduler.wake_all()

    def progress(self, world_rank: int) -> None:
        """Give other ready ranks a chance to run, without charging time.

        Nonblocking polls (``iprobe``, ``Request.test``) call this so a
        poll loop observes peer progress under cooperative backends; a
        no-op under the preemptive thread backend.
        """
        self.scheduler.yield_now(self.procs[world_rank])

    # ------------------------------------------------------------------
    # stall / failure accounting
    # ------------------------------------------------------------------
    def _wait_step(self, proc: ProcessState) -> None:
        """One blocking step of a wait loop (lock held, ``waiting`` set).

        Raises any planted wake exception (or the terminal deadlock) and
        parks the rank via the scheduler.  Backends that rely on eager
        stall detection (``threads``: every blocked rank must re-check
        global progress, since blocking order is an OS accident) run
        :meth:`_check_stall` before parking; the event backend detects
        stalls centrally when its ready heap runs dry.
        """
        self._raise_if_woken(proc)
        if self.scheduler.eager_stall:
            self._check_stall()
            self._raise_if_woken(proc)
        if self.deadlocked:
            raise self._deadlock_error()
        self.scheduler.block(proc)

    def _settle_wildcard(self, proc: ProcessState, pr: PostedRecv) -> None:
        """Commit a wildcard receive at its true virtual completion time.

        Deterministic backend only (lock held).  The receive completes at
        ``T = max(clock, arrival)`` — but a rank that is *ready to run
        before T* may still deliver a virtually earlier match.  (The
        classic case is a self-scheduling pool: the master drains a wave
        of queued slow-worker results while the fastest worker, whose
        next result would arrive far earlier, sits ready in the heap.)
        Let every such rank run first, then take the earliest-arriving
        match among everything delivered.  The loop terminates because
        the candidate arrival never increases while the heap minimum
        only advances.
        """
        while True:
            if proc.unexpected:
                self._prefer_earliest(proc, pr)
            assert pr.message is not None
            t = pr.message.arrival
            if t < proc.clock:
                t = proc.clock
            if not self.scheduler.ready_before(proc, t):
                return
            self.scheduler.wait_upto(proc, t)

    def _prefer_earliest(self, proc: ProcessState, pr: PostedRecv) -> None:
        """Swap a completed wildcard receive to the earliest-arriving match.

        Deterministic backend only (lock held).  A wildcard receive is
        matched at *delivery* time, but the receiver dispatches at the
        virtual time of that arrival — by which every sender with an
        earlier clock has already run.  If one of them delivered a
        virtually earlier match meanwhile, take that one instead, exactly
        as the min-arrival rule in :meth:`post_recv` would have.  The
        displaced message returns to the head of the unexpected queue:
        any message of its (context, src, tag) class still queued was
        delivered after it, so per-pair order is preserved.
        """
        best = pr.message
        assert best is not None
        for m in proc.unexpected:
            if pr.accepts(m) and m.arrival < best.arrival:
                best = m
        if best is not pr.message:
            proc.unexpected.remove(best)
            proc.unexpected.appendleft(pr.message)
            pr.message = best
    def _raise_if_woken(self, proc: ProcessState) -> None:
        """Raise and clear the exception planted by the stall resolver."""
        exc = proc.wake_exc
        if exc is not None:
            proc.wake_exc = None
            if isinstance(exc, OperationTimeoutError):
                # The timer ran out: virtual time passes to the deadline.
                proc.clock = max(proc.clock, exc.deadline)
            raise exc

    def _condition_satisfied(self, proc: ProcessState) -> bool:
        """Whether a waiting rank's wake-up condition already holds (lock held)."""
        assert proc.waiting is not None
        kind, spec, _deadline = proc.waiting
        if kind == "recv":
            return spec.done
        if kind == "ext":
            return bool(spec())
        context, src, tag = spec
        return any(m.matches(context, src, tag) for m in proc.unexpected)

    def failed_ranks(self, at_vtime: float | None = None) -> set[int]:
        """World ranks that are (or will be) victims of machine failure.

        A rank counts as failed when its thread already died of
        :class:`MachineFailure`, or its machine has a scheduled death no
        later than ``at_vtime`` (static detection — deterministic, no race
        with the victim's own discovery).  ``at_vtime=None`` counts every
        scheduled death.
        """
        with self.lock:
            out = set()
            for p in self.procs:
                if p.failed:
                    out.add(p.rank)
                    continue
                fail_at = self.cluster.machine(p.machine_index).fail_at
                if fail_at is not None and (at_vtime is None or fail_at <= at_vtime):
                    out.add(p.rank)
            return out

    def _unreachable_ranks(self) -> set[int]:
        """Ranks that can never send another message (lock held).

        Only meaningful during stall resolution, when no message is in
        flight: a machine-failed rank, a rank whose thread ended with an
        exception, or a rank whose machine has a *scheduled* death will not
        produce further traffic — the last because, with nothing able to
        arrive, virtual time at that rank runs out at ``fail_at`` before
        anything else happens.
        """
        out = set()
        for p in self.procs:
            if p.failed or (p.finished and p.exception is not None):
                out.add(p.rank)
                continue
            if not p.finished and \
                    self.cluster.machine(p.machine_index).fail_at is not None:
                out.add(p.rank)
        return out

    def _check_stall(self) -> None:
        """Resolve the stall iff no unfinished rank can ever progress.

        Called (with the lock held) whenever a rank is about to block and
        whenever a rank finishes.  Sends are eager, so if every unfinished
        rank is waiting on an unsatisfied condition, no future delivery can
        occur and the run is stuck — some waiter must be woken with a typed
        error (or, with no failure in sight, the run is a true deadlock).
        """
        if not self._started or self.deadlocked:
            return
        any_unfinished = False
        for p in self.procs:
            if p.finished:
                continue
            any_unfinished = True
            if p.waiting is None or p.wake_exc is not None \
                    or self._condition_satisfied(p):
                return
        if any_unfinished:
            self._resolve_stall()

    def _resolve_stall(self) -> None:
        """Pick stall victims and wake them with typed errors (lock held).

        Priority: (1) waiters whose virtual-time deadline can no longer be
        met time out; (2) waiters on sources that can never send again get
        :class:`RankFailedError`; (3) with a failure somewhere, every
        remaining engine waiter is collateral damage of it — typed, not a
        deadlock; (4) no failure anywhere means a genuine program deadlock,
        which stays terminal.  Only the victims wake: survivors keep
        waiting and may be satisfied by messages the woken ranks (e.g. a
        repairing host) send afterwards — this is what makes the stall
        *recoverable*.
        """
        unreachable = self._unreachable_ranks()
        timed: list[tuple[ProcessState, BaseException]] = []
        victims: list[tuple[ProcessState, BaseException]] = []
        engine_waiters: list[ProcessState] = []
        for p in self.procs:
            if p.finished or p.waiting is None:
                continue
            kind, spec, deadline = p.waiting
            if kind == "ext":
                continue
            engine_waiters.append(p)
            op = "recv" if kind == "recv" else "probe"
            if deadline is not None:
                timed.append((p, OperationTimeoutError(
                    f"{op} at rank {p.rank}", deadline - p.clock, deadline)))
                continue
            src = spec.src if kind == "recv" else spec[1]
            if src == ANY_SOURCE:
                if unreachable:
                    victims.append((p, self._rank_failed(unreachable, p, op)))
            elif src in unreachable:
                victims.append((p, self._rank_failed({src}, p, op)))
        if timed:
            # Timed waiters resolve first, alone: once awake they may send
            # (e.g. trigger a repair), which can still satisfy the others.
            victims = timed
        if not victims and engine_waiters and (unreachable or self.failures):
            # No waiter points directly at a dead rank, but a failure
            # exists: the stall is its transitive damage.
            victims = [
                (p, self._rank_failed(unreachable, p, "wait"))
                for p in engine_waiters
            ]
        if victims:
            for p, exc in victims:
                p.wake_exc = exc
                self.scheduler.wake(p)
            return
        # Nothing typed to report: either a pure deadlock among engine
        # waiters, or only external waiters are left with no rank able to
        # satisfy them.  Both are terminal.
        self._declare_deadlock()

    def _rank_failed(self, ranks: set[int], waiter: ProcessState,
                     op: str) -> RankFailedError:
        machine = vtime = None
        if len(ranks) == 1:
            mach = self.cluster.machine(
                self.procs[next(iter(ranks))].machine_index)
            if mach.fail_at is not None:
                machine, vtime = mach.name, mach.fail_at
        return RankFailedError(
            ranks, machine=machine, vtime=vtime,
            op=f"{op} at rank {waiter.rank}")

    def _declare_deadlock(self) -> None:
        self.deadlocked = True
        self.scheduler.wake_all()

    def _deadlock_error(self) -> DeadlockError:
        if self.failures:
            dead = ", ".join(f"{f.machine}@{f.vtime:.4f}" for f in self.failures)
            return DeadlockError(
                f"no rank can make progress; failed machines: {dead}"
            )
        return DeadlockError("all live ranks are blocked in receive: deadlock")

    # ------------------------------------------------------------------
    # SPMD run driver
    # ------------------------------------------------------------------
    def run(self, target: Callable[[int], Any], timeout: float | None = 120.0) -> None:
        """Run ``target(world_rank)`` on every rank to completion.

        Task lifecycle (thread-per-rank or cooperative handoff) belongs to
        the scheduler.  Exceptions are captured per rank;
        :class:`MachineFailure` is recorded in :attr:`failures` and fault
        fallout at survivors (:class:`RankFailedError`,
        :class:`LinkFaultError`, :class:`OperationTimeoutError`) stays in
        the per-rank ``exception`` slots (fault injection is an expected
        outcome); any other exception re-raises after the run from the
        lowest failing rank.
        """

        def runner(rank: int) -> None:
            proc = self.procs[rank]
            try:
                proc.result = target(rank)
            except MachineFailure as mf:
                proc.failed = True
                proc.exception = mf
                with self.lock:
                    self.failures.append(mf)
                if self.tracer is not None:
                    from .tracing import TraceEvent

                    self.tracer.record(TraceEvent(
                        rank=rank, kind="death", t0=mf.vtime, t1=mf.vtime,
                        label=mf.machine,
                    ))
            except BaseException as exc:  # noqa: BLE001 — reported after join
                proc.failed = True
                proc.exception = exc
            finally:
                with self.lock:
                    proc.finished = True
                    self.scheduler.on_finish(proc)

        with self.lock:
            self._started = True
        if self.telemetry is not None:
            self.telemetry.emit("engine", "run.start",
                                backend=self.backend, nprocs=self.nprocs)
        try:
            self.scheduler.run_all(runner, timeout)
        finally:
            profile = self.scheduler.profile
            if self.metrics is not None:
                profile.publish(self.metrics)
            if self.telemetry is not None:
                self.telemetry.emit(
                    "engine", "run.finish", nprocs=self.nprocs,
                    failures=len(self.failures), **profile.as_dict())
        # Re-raise the first program bug.  Fault fallout (MachineFailure at
        # the victim; RankFailedError / LinkFaultError /
        # OperationTimeoutError at survivors) is an expected outcome of
        # injection, recorded per rank, not a bug; a DeadlockError is
        # secondary damage when a failure exists anywhere.
        any_dead = bool(self.failures) or any(
            isinstance(p.exception, MachineFailure)
            or self.cluster.machine(p.machine_index).fail_at is not None
            for p in self.procs
        )
        for proc in self.procs:
            exc = proc.exception
            if exc is None or isinstance(exc, _FAULT_FALLOUT):
                continue
            if isinstance(exc, DeadlockError) and any_dead:
                continue
            raise exc
